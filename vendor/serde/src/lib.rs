//! Offline stand-in for the `serde` crate.
//!
//! This build environment has no crates.io access, and nothing in the
//! workspace actually serializes through serde — the derives are only
//! attached so types stay source-compatible with the real crate.  The two
//! derive macros below therefore expand to nothing; persistent state that
//! must really round-trip (the runtime's `ProfileStore`) uses an explicit
//! text format instead.
//!
//! Swapping the real `serde` back in is a one-line change in each
//! dependent `Cargo.toml`.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
