//! Offline stand-in for an epoll crate: a minimal, std-only binding to
//! Linux readiness notification — `epoll_create1` / `epoll_ctl` /
//! `epoll_wait` plus an `eventfd`-backed [`Waker`] — with no crates.io
//! dependency.  The syscalls are reached through the libc symbols the
//! Rust standard library already links; no `libc` crate is involved.
//!
//! The API is deliberately tiny and **level-triggered** (the epoll
//! default): register a file descriptor with a `u64` token and the
//! interest set, block in [`Epoll::wait`], and get back `(token,
//! readable, writable, hangup)` events.  Level-triggering means a
//! short read that leaves bytes behind re-arms by itself — the simplest
//! semantics for reactors doing nonblocking drain loops.
//!
//! Off Linux the same API degrades to a timed poll: `wait` sleeps
//! briefly and reports every registered descriptor as ready, so callers
//! doing nonblocking I/O still make progress (at sleep-poll cost).  The
//! real binding is what ships; the fallback only keeps non-Linux
//! development builds compiling.

#![warn(missing_docs)]

use std::io;
use std::time::Duration;

/// A raw file descriptor (`std::os::fd::RawFd` on unix; plain `i32`
/// keeps the fallback portable).
pub type RawFd = i32;

/// One readiness event returned by [`Epoll::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the descriptor was registered under.
    pub token: u64,
    /// The descriptor has bytes to read (or a pending accept).
    pub readable: bool,
    /// The descriptor's send buffer has space.
    pub writable: bool,
    /// The peer hung up or the descriptor errored; a subsequent
    /// nonblocking read will observe the EOF/error.
    pub hangup: bool,
}

/// Which readiness transitions a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Subscribe to readable (and hangup) events.
    pub readable: bool,
    /// Subscribe to writable events.
    pub writable: bool,
}

impl Interest {
    /// Readable only — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Readable and writable — a connection with stalled output.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest, RawFd};
    use std::io;
    use std::time::Duration;

    // Raw syscall surface.  These are libc symbols; std already links
    // libc on Linux, so declaring them costs nothing and adds no crate.
    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    const EPOLL_CLOEXEC: i32 = 0x80000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_CLOEXEC: i32 = 0x80000;
    const EFD_NONBLOCK: i32 = 0x800;
    const EINTR: i32 = 4;

    /// The kernel ABI's `struct epoll_event`.  Packed on x86-64 (the
    /// kernel declares it `__attribute__((packed))` there); naturally
    /// aligned elsewhere.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub(super) struct EpollEvent {
        events: u32,
        data: u64,
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interest.readable {
            bits |= EPOLLIN;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    /// Linux epoll instance.
    #[derive(Debug)]
    pub(super) struct Imp {
        epfd: i32,
    }

    impl Imp {
        pub(super) fn new() -> io::Result<Imp> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Imp { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(super) fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest_bits(interest), token)
        }

        pub(super) fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest_bits(interest), token)
        }

        pub(super) fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub(super) fn wait(
            &self,
            events: &mut Vec<Event>,
            max_events: usize,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let max = max_events.clamp(1, 1024) as i32;
            let mut raw = [EpollEvent { events: 0, data: 0 }; 1024];
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
            };
            let n = loop {
                let n = unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), max, timeout_ms) };
                if n >= 0 {
                    break n as usize;
                }
                let err = io::Error::last_os_error();
                if err.raw_os_error() != Some(EINTR) {
                    return Err(err);
                }
            };
            for ev in &raw[..n] {
                let bits = ev.events;
                events.push(Event {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Imp {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }

    /// Linux eventfd waker.
    #[derive(Debug)]
    pub(super) struct WakerImp {
        efd: i32,
    }

    impl WakerImp {
        pub(super) fn new() -> io::Result<WakerImp> {
            let efd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if efd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(WakerImp { efd })
        }

        pub(super) fn fd(&self) -> RawFd {
            self.efd
        }

        pub(super) fn wake(&self) {
            let one: u64 = 1;
            // A full counter (EAGAIN) already means "will wake"; any
            // other failure has no caller-visible recovery.
            unsafe { write(self.efd, (&one as *const u64).cast(), 8) };
        }

        pub(super) fn drain(&self) {
            let mut buf = 0u64;
            unsafe { read(self.efd, (&mut buf as *mut u64).cast(), 8) };
        }
    }

    impl Drop for WakerImp {
        fn drop(&mut self) {
            unsafe { close(self.efd) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::{Event, Interest, RawFd};
    use std::io;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;
    use std::time::Duration;

    /// Portable fallback: a registration table polled with a short
    /// sleep.  Every registered descriptor reports ready on every wait,
    /// so nonblocking callers degrade to sleep-polling instead of
    /// breaking.
    #[derive(Debug, Default)]
    pub(super) struct Imp {
        regs: Mutex<Vec<(RawFd, u64, Interest)>>,
    }

    impl Imp {
        pub(super) fn new() -> io::Result<Imp> {
            Ok(Imp::default())
        }

        pub(super) fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.regs.lock().unwrap().push((fd, token, interest));
            Ok(())
        }

        pub(super) fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut regs = self.regs.lock().unwrap();
            regs.retain(|(f, _, _)| *f != fd);
            regs.push((fd, token, interest));
            Ok(())
        }

        pub(super) fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.regs.lock().unwrap().retain(|(f, _, _)| *f != fd);
            Ok(())
        }

        pub(super) fn wait(
            &self,
            events: &mut Vec<Event>,
            max_events: usize,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let nap = timeout
                .unwrap_or(Duration::from_millis(5))
                .min(Duration::from_millis(5));
            std::thread::sleep(nap);
            for &(_, token, interest) in self.regs.lock().unwrap().iter().take(max_events) {
                events.push(Event {
                    token,
                    readable: interest.readable,
                    writable: interest.writable,
                    hangup: false,
                });
            }
            Ok(events.len())
        }
    }

    /// Fallback waker: a flag the fallback `wait` ignores (its short
    /// sleep already bounds wake latency).
    #[derive(Debug, Default)]
    pub(super) struct WakerImp {
        _armed: AtomicBool,
    }

    impl WakerImp {
        pub(super) fn new() -> io::Result<WakerImp> {
            Ok(WakerImp::default())
        }

        pub(super) fn fd(&self) -> RawFd {
            -1
        }

        pub(super) fn wake(&self) {
            self._armed.store(true, Ordering::Release);
        }

        pub(super) fn drain(&self) {
            self._armed.store(false, Ordering::Release);
        }
    }
}

/// A readiness-notification instance: register descriptors with tokens,
/// block in [`wait`](Epoll::wait) until one transitions.
#[derive(Debug)]
pub struct Epoll {
    imp: sys::Imp,
}

impl Epoll {
    /// Create an epoll instance (`epoll_create1(EPOLL_CLOEXEC)`).
    pub fn new() -> io::Result<Epoll> {
        Ok(Epoll {
            imp: sys::Imp::new()?,
        })
    }

    /// Register `fd` under `token` with the given interest set
    /// (level-triggered).
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.imp.add(fd, token, interest)
    }

    /// Change the interest set (or token) of a registered descriptor.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.imp.modify(fd, token, interest)
    }

    /// Deregister a descriptor.  Closing an fd deregisters it in the
    /// kernel anyway; calling this first keeps the table tidy when the
    /// fd lives on (e.g. handed to another owner).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.imp.delete(fd)
    }

    /// Block until at least one registered descriptor is ready, the
    /// timeout lapses (`Ok` with `events` empty), or a [`Waker`] fires.
    /// `None` blocks indefinitely.  At most `max_events` events are
    /// returned per call (clamped to 1024); level-triggering re-reports
    /// anything left unconsumed on the next call.
    pub fn wait(
        &self,
        events: &mut Vec<Event>,
        max_events: usize,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        self.imp.wait(events, max_events, timeout)
    }
}

/// A cross-thread wakeup source (`eventfd`): register
/// [`fd`](Waker::fd) in an [`Epoll`] under a reserved token, and any
/// thread's [`wake`](Waker::wake) makes the epoll's `wait` return with
/// that token readable.  [`drain`](Waker::drain) resets it (the
/// eventfd counter is read off) so a level-triggered epoll stops
/// reporting it.
#[derive(Debug)]
pub struct Waker {
    imp: sys::WakerImp,
}

impl Waker {
    /// Create a waker (`eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)`).
    pub fn new() -> io::Result<Waker> {
        Ok(Waker {
            imp: sys::WakerImp::new()?,
        })
    }

    /// The descriptor to register for readable interest.
    pub fn fd(&self) -> RawFd {
        self.imp.fd()
    }

    /// Make the owning epoll's `wait` return.  Cheap, nonblocking,
    /// callable from any thread; coalesces (N wakes before a drain
    /// deliver one readable event).
    pub fn wake(&self) {
        self.imp.wake()
    }

    /// Consume pending wakeups so the (level-triggered) readable state
    /// clears.  Call from the epoll thread when the waker token fires.
    pub fn drain(&self) {
        self.imp.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[cfg(unix)]
    fn raw_fd<T: std::os::fd::AsRawFd>(s: &T) -> RawFd {
        s.as_raw_fd()
    }

    #[test]
    #[cfg(unix)]
    fn listener_accept_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(raw_fd(&listener), 7, Interest::READ).unwrap();
        let mut events = Vec::new();
        // Nothing pending: a short wait times out empty.
        ep.wait(&mut events, 16, Some(Duration::from_millis(20)))
            .unwrap();
        #[cfg(target_os = "linux")]
        assert!(events.is_empty(), "no connection yet: {events:?}");
        // A connection arrives: the listener token reports readable.
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        ep.wait(&mut events, 16, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "{events:?}"
        );
        let (stream, _) = listener.accept().unwrap();
        ep.delete(raw_fd(&listener)).unwrap();
        drop(stream);
    }

    #[test]
    #[cfg(unix)]
    fn stream_read_and_write_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(raw_fd(&server), 1, Interest::READ).unwrap();
        client.write_all(b"hi").unwrap();
        let mut events = Vec::new();
        ep.wait(&mut events, 16, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        let mut buf = [0u8; 8];
        let n = (&server).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hi");

        // Writable interest on an empty send buffer fires immediately.
        ep.modify(raw_fd(&server), 1, Interest::READ_WRITE).unwrap();
        ep.wait(&mut events, 16, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));

        // Peer close surfaces as readable (EOF) — the reactor's read
        // path is the one place connection death is noticed.
        drop(client);
        ep.wait(&mut events, 16, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
    }

    #[test]
    fn waker_wakes_a_blocked_wait() {
        let ep = Epoll::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        if waker.fd() >= 0 {
            ep.add(waker.fd(), u64::MAX, Interest::READ).unwrap();
        }
        let w = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            w.wake();
        });
        let t0 = Instant::now();
        let mut events = Vec::new();
        ep.wait(&mut events, 16, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(4),
            "wake must interrupt the wait"
        );
        waker.drain();
        t.join().unwrap();
        // Drained: the next wait no longer reports the waker.
        ep.wait(&mut events, 16, Some(Duration::from_millis(10)))
            .unwrap();
        #[cfg(target_os = "linux")]
        assert!(events.is_empty(), "{events:?}");
    }
}
