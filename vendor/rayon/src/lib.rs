//! Offline stand-in for the `rayon` crate.
//!
//! Provides the `rayon::scope(|s| s.spawn(..))` fork-join surface on top of
//! [`std::thread::scope`].  Unlike real rayon there is **no warm worker
//! pool** — every `spawn` creates an OS thread — which is exactly the
//! "per-call thread-spawn path" the `smartapps-runtime` worker pool is
//! benchmarked against.  `smartapps-reductions` routes its hot paths
//! through `SpmdExecutor` instead of this shim; only `smartapps-specpar`
//! still forks through here.

/// A fork-join scope; spawned closures may borrow from the enclosing stack
/// frame and are all joined before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task into the scope.  The closure receives the scope again
    /// so it can spawn nested tasks, mirroring rayon's signature.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || {
            let s = Scope { inner };
            f(&s);
        });
    }
}

/// Run `f` with a fork-join scope, joining all spawned tasks before
/// returning.  Panics from tasks propagate.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| {
        let wrapped = Scope { inner: s };
        f(&wrapped)
    })
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_spawns() {
        let hits = AtomicUsize::new(0);
        let data = vec![1usize; 64];
        super::scope(|s| {
            for chunk in data.chunks(16) {
                let hits = &hits;
                s.spawn(move |_| {
                    hits.fetch_add(chunk.iter().sum::<usize>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn nested_spawn_works() {
        let hits = AtomicUsize::new(0);
        super::scope(|s| {
            let hits = &hits;
            s.spawn(move |s| {
                hits.fetch_add(1, Ordering::Relaxed);
                s.spawn(move |_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }
}
