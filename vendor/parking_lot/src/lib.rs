//! Offline stand-in for the `parking_lot` crate: a [`Mutex`] whose
//! `lock()` returns the guard directly (no `Result`), matching the
//! parking_lot API the workspace uses.  Poisoning is deliberately ignored —
//! parking_lot mutexes do not poison.

/// A mutual-exclusion lock with parking_lot's panic-transparent `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 2;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
