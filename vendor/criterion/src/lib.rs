//! Offline stand-in for the `criterion` crate.
//!
//! A deliberately small wall-clock harness exposing the API surface the
//! workspace's benches use: `Criterion::benchmark_group`, `sample_size`,
//! `throughput`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! [`BenchmarkId`], [`Throughput`], [`black_box`] and the
//! `criterion_group!`/`criterion_main!` macros.  Each benchmark runs a
//! short warmup, then `sample_size` timed samples of an adaptively chosen
//! batch, and prints min/mean per-iteration time (plus element throughput
//! when configured).  No statistics beyond that — swap the real criterion
//! back in for rigorous numbers.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] for optimizer barriers.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `<function_name>/<parameter>`.
    pub fn new(function_name: impl ToString, parameter: impl ToString) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.to_string(), parameter.to_string()),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl ToString) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Per-benchmark measurement driver handed to the closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `f`: warm up briefly, then record `sample_size` samples of
    /// an adaptively sized batch of calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + batch sizing: aim for >=1ms per sample so timer
        // granularity is irrelevant, cap the batch to keep totals bounded.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t.elapsed() / batch);
        }
    }
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl ToString, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&self.name, &id.to_string(), &b.samples, self.throughput);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&self.name, &id.to_string(), &b.samples, self.throughput);
        self
    }

    /// Finish the group (prints a separator).
    pub fn finish(&mut self) {
        println!();
    }
}

fn report(group: &str, id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    let min = samples.iter().min().copied().unwrap_or_default();
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let mut line = format!("{group}/{id}: min {min:>12.3?}  mean {mean:>12.3?}");
    if let Some(Throughput::Elements(n)) = throughput {
        let per_s = n as f64 / mean.as_secs_f64();
        line.push_str(&format!("  ({per_s:.3e} elem/s)"));
    }
    if let Some(Throughput::Bytes(n)) = throughput {
        let per_s = n as f64 / mean.as_secs_f64();
        line.push_str(&format!("  ({per_s:.3e} B/s)"));
    }
    println!("{line}");
}

/// Top-level benchmark driver (stand-in for criterion's).
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            20
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl ToString, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 20,
        };
        f(&mut b);
        report("bench", &id.to_string(), &b.samples, None);
        self
    }
}

/// Declare a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3).throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("rep").to_string(), "rep");
    }
}
