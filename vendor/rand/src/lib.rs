//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the surface the workspace's generators use —
//! `rngs::StdRng`, [`SeedableRng::seed_from_u64`], [`Rng::gen`] and
//! [`Rng::gen_range`] over integer ranges and `f64` — on top of a
//! SplitMix64 stream.  The stream differs from the real `rand::StdRng`
//! (ChaCha12), but every consumer in this workspace only relies on
//! determinism-given-seed and distribution shape, never on exact values.

/// Seedable random generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (fully deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG's raw 64-bit output.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// Element type produced.
    type Output;
    /// Draw one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_int_range!(usize, u64, u32, isize, i64, i32);

/// The random-generator interface.
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of type `T` uniformly.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`.
    #[inline]
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Concrete generators.
pub mod rngs {
    /// Deterministic SplitMix64 generator (stand-in for `rand::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl crate::Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }
}
