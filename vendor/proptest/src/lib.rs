//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use — the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], [`Just`], `any::<T>()`, the
//! `proptest!`/`prop_oneof!`/`prop_assert!`/`prop_assert_eq!` macros and
//! [`ProptestConfig::with_cases`] — as plain deterministic random
//! sampling.  There is **no shrinking**: a failing case panics with its
//! case number and the per-test RNG is seeded from the test name, so runs
//! are reproducible but minimal counterexamples are the developer's job.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 RNG driving all sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor (the `proptest!` macro seeds from the test name).
    pub fn deterministic(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// Error type produced by `prop_assert!` failures.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Construct from a rendered message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Test-run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases sampled per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` sampled cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The type generated.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a dependent strategy from each value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe sampling, used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample_dyn(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always produce a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct OneOf<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one variant");
        let k = rng.below(self.0.len() as u64) as usize;
        self.0[k].sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.below(span.saturating_add(1).max(1)) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

/// Whole-domain strategies for primitives (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Sample an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}
impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}
impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

/// Strategy wrapper for [`Arbitrary`] types.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Acceptable size specifications for [`vec()`].
    pub trait SizeRange {
        /// Lower and upper bound (inclusive) of the generated length.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }
    impl SizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }
    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for vectors whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min) as u64;
            let len = self.min + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fail the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), format!($($fmt)+), a, b
            )));
        }
    }};
}

/// Uniform choice across strategy alternatives producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($variant:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($variant)),+])
    };
}

/// Define sampled property tests.  Accepts the real proptest surface the
/// workspace uses: an optional `#![proptest_config(..)]` header and
/// `#[test]` functions whose arguments are `name in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs $cfg; $($rest)*);
    };
    (@funcs $cfg:expr; ) => {};
    (@funcs $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            // Deterministic per-test seed from the test name.
            let seed = stringify!($name)
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
                });
            let mut rng = $crate::TestRng::deterministic(seed);
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!("[{} case {}] {}", stringify!($name), case, e);
                }
            }
        }
        $crate::proptest!(@funcs $cfg; $($rest)*);
    };
    // An @funcs input reaching this point failed to parse as a test fn;
    // surface that instead of looping through the entry arm forever.
    (@funcs $($bad:tt)*) => {
        compile_error!("proptest! stand-in could not parse a test function body");
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        A(usize),
        B(i32, i32),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_and_tuples(
            x in 3usize..10,
            (a, b) in (0i32..5, -4i32..0),
            v in crate::collection::vec(0u32..7, 2..=6),
            flag in any::<bool>(),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0..5).contains(&a) && (-4..0).contains(&b), "{a} {b}");
            prop_assert!((2..=6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 7));
            let _ = flag;
        }

        #[test]
        fn oneof_map_flatmap(
            s in prop_oneof![
                (1usize..4).prop_map(Shape::A),
                ((0i32..3), (0i32..3)).prop_map(|(a, b)| Shape::B(a, b)),
                Just(Shape::A(99)),
            ],
            nested in (1usize..5).prop_flat_map(|n| crate::collection::vec(0usize..n, n)),
        ) {
            match s {
                Shape::A(k) => prop_assert!((1..4).contains(&k) || k == 99),
                Shape::B(a, b) => prop_assert_eq!(a.min(b) >= 0, true, "a={} b={}", a, b),
            }
            prop_assert!(!nested.is_empty());
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        use crate::{Strategy, TestRng};
        let strat = crate::collection::vec(0u64..1000, 5usize);
        let a = strat.sample(&mut TestRng::deterministic(9));
        let b = strat.sample(&mut TestRng::deterministic(9));
        assert_eq!(a, b);
    }
}
