//! A Moldyn-style molecular dynamics force loop with a *dynamic*
//! interaction list: every few timesteps the neighbor list rebuilds as
//! atoms move, and the reference pattern drifts.  The SmartApp runtime
//! re-characterizes on sustained drift and re-selects the reduction
//! scheme — the "adaptive algorithm selection" the paper motivates with
//! exactly this kind of code.
//!
//! Run with: `cargo run --release --example molecular_dynamics`

use smartapps::prelude::*;

/// Build an interaction list for a given "temperature": hot systems mix
/// atoms widely (long-range disorder), cold systems interact locally.
fn interaction_list(atoms: usize, pairs: usize, temperature: f64, seed: u64) -> AccessPattern {
    let window = (atoms as f64 * temperature.clamp(0.001, 1.0)) as u32;
    PatternSpec {
        num_elements: atoms,
        iterations: pairs,
        refs_per_iter: 2,
        coverage: 1.0,
        dist: Distribution::Clustered {
            window: window.max(8),
        },
        seed,
    }
    .generate()
}

fn main() {
    let threads = 4;
    let atoms = 65_536;
    let pairs = 300_000;
    // ComputeForces cannot be owner-computed (the loop also updates shared
    // neighbor bookkeeping), matching the paper's Moldyn row.
    let mut smart = AdaptiveReduction::new(1, threads, false);

    println!("Moldyn ComputeForces: {atoms} atoms, {pairs} pairs, {threads} threads\n");
    println!("step  temp   drift   characterized  scheme  time");
    let mut temperature = 0.01; // cold start: highly local interactions
    for step in 0..12 {
        // The system heats up at step 6: the neighbor list delocalizes.
        if step == 6 {
            temperature = 0.9;
        }
        let pattern = interaction_list(atoms, pairs, temperature, step as u64);
        let (forces, log) = smart.execute(&pattern, &|_i, r| contribution(r));
        println!(
            "{step:4}  {temperature:4.2}  {:6.3}  {:13}  {:6}  {:.2?}",
            log.drift,
            if log.characterized { "yes" } else { "no" },
            log.scheme.abbrev(),
            log.elapsed
        );
        // Use the forces so the work is real.
        let total: f64 = forces.iter().sum();
        assert!(total.is_finite());
    }
    println!(
        "\nThe phase change at step 6 shows up as sustained drift; the runtime\n\
         re-characterizes and may switch schemes as locality collapses."
    );
    println!(
        "performance db now holds {} samples across functioning domains",
        smart.db.len()
    );
}
