//! The full SmartApp feedback loop end to end, starting from "compiler"
//! IR: recognize the reduction, package multi-version code, execute with
//! run-time inputs, and watch the ToolBox escalate adaptations when the
//! functioning domain changes.
//!
//! Run with: `cargo run --release --example adaptive_feedback`

use smartapps::core::recognize::build::{histogram_update, indirect_load};
use smartapps::core::recognize::LoopNest;
use smartapps::prelude::*;

const W: u32 = 0; // reduction array
const X: u32 = 1; // index array (input data)
const F: u32 = 2; // field values (input data)

fn main() {
    // --- Static compilation stage. --------------------------------------
    // Source loop:  for i { w[x[i]] += f[x[i]] }
    let loop_ir = LoopNest {
        stmts: vec![histogram_update(W, X, indirect_load(F, X))],
    };
    let mut compiled = CompiledReduction::compile(&loop_ir, 7, 4, false)
        .expect("the histogram update is a textbook reduction");
    println!(
        "compiler recognized a `{:?}` reduction over array {} (statement {})",
        compiled.info.op, compiled.info.array, compiled.info.stmt
    );

    // --- Run-time stage: inputs arrive, optimization completes. ---------
    let n = 8_192;
    let f: Vec<f64> = (0..n).map(|e| (e as f64 * 0.37).sin().abs()).collect();

    println!("\ninvocation  domain      scheme  characterized  adaptation");
    for epoch in 0..8 {
        // The input index stream changes character at epoch 4: from dense
        // reuse (every element hit ~24x) to scattering over a tiny subset.
        let iters = if epoch < 4 { 200_000 } else { 3_000 };
        let spread = if epoch < 4 { n } else { 64 };
        let x: Vec<f64> = (0..iters)
            .map(|i| ((i * 2_654_435_761usize) % spread) as f64)
            .collect();
        let inputs = Inputs::default().bind(X, &x).bind(F, &f);
        let (w, log) = compiled.run(n, iters, &inputs);
        println!(
            "{epoch:10}  {:10}  {:6}  {:13}  {:?}",
            if epoch < 4 { "dense" } else { "sparse" },
            log.scheme.abbrev(),
            if log.characterized { "yes" } else { "no" },
            log.adaptation
        );
        assert!(w.iter().all(|v| v.is_finite()));
    }

    let db = &compiled.adaptive.db;
    println!(
        "\nToolBox performance database: {} samples; monitor saw {} invocations",
        db.len(),
        compiled.adaptive.monitor.invocations()
    );
    println!(
        "predictor corrections learned: rep {:.2}, sel {:.2}, ll {:.2}, hash {:.2}",
        compiled.adaptive.predictor.correction(Scheme::Rep),
        compiled.adaptive.predictor.correction(Scheme::Sel),
        compiled.adaptive.predictor.correction(Scheme::Ll),
        compiled.adaptive.predictor.correction(Scheme::Hash),
    );
}
