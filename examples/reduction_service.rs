//! The persistent reduction service, end to end: start a runtime, feed it
//! concurrent jobs from several client threads, restart it, and show the
//! profile store carrying the learned scheme decisions across the restart.
//!
//! ```text
//! cargo run --release --example reduction_service
//! ```

use smartapps::prelude::*;
use std::sync::Arc;

fn main() {
    let profile_path = std::env::temp_dir().join("smartapps-example-profiles.txt");
    let _ = std::fs::remove_file(&profile_path);
    let config = RuntimeConfig {
        workers: 4,
        profile_path: Some(profile_path.clone()),
        ..RuntimeConfig::default()
    };

    // Two workload classes: a dense mesh and a sparse scatter.
    let mesh = Arc::new(smartapps::workloads::apps::irreg_mesh(20_000, 80_000, 7));
    let sparse = Arc::new(
        PatternSpec {
            num_elements: 400_000,
            iterations: 3_000,
            refs_per_iter: 2,
            coverage: 0.004,
            dist: Distribution::Uniform,
            seed: 11,
        }
        .generate(),
    );

    println!("== first service lifetime (cold store) ==");
    {
        let rt = Arc::new(Runtime::new(config.clone()));
        std::thread::scope(|s| {
            for c in 0..3 {
                let rt = rt.clone();
                let mesh = mesh.clone();
                let sparse = sparse.clone();
                s.spawn(move || {
                    for j in 0..10 {
                        let pat = if (c + j) % 2 == 0 {
                            mesh.clone()
                        } else {
                            sparse.clone()
                        };
                        let r = rt.run(JobSpec::f64(pat, |_i, rf| contribution(rf)));
                        if j == 0 {
                            println!(
                                "  client {c}: scheme {} in {:?} (profile hit: {})",
                                r.scheme, r.elapsed, r.profile_hit
                            );
                        }
                    }
                });
            }
        });
        let stats = rt.stats();
        println!(
            "  30 jobs -> {} batches, {} coalesced, {} inspections, {} profile hits",
            stats.batches, stats.coalesced, stats.inspections, stats.profile_hits
        );
        // Runtime::drop persists the store to profile_path.
    }

    println!(
        "== restarted service (warm store from {}) ==",
        profile_path.display()
    );
    {
        let rt = Runtime::new(config);
        for (name, pat) in [("mesh", mesh.clone()), ("sparse", sparse.clone())] {
            let r = rt.run(JobSpec::f64(pat, |_i, rf| contribution(rf)));
            println!(
                "  {name}: scheme {} in {:?} (profile hit: {}, inspections so far: {})",
                r.scheme,
                r.elapsed,
                r.profile_hit,
                rt.stats().inspections
            );
        }
    }
    let _ = std::fs::remove_file(&profile_path);
}
