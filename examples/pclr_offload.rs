//! Route runtime jobs through the PCLR hardware backend: the service
//! decides per class — software library on the worker pool, or the
//! paper's simulated reduction hardware — and both compete in one
//! profile store.
//!
//! Run with: `cargo run --release --example pclr_offload`

use smartapps::reductions::Scheme;
use smartapps::runtime::{JobSpec, PclrConfig, Runtime, RuntimeConfig};
use smartapps::workloads::pattern::sequential_reduce_i64;
use smartapps::workloads::{contribution_i64, Distribution, PatternSpec};
use std::sync::Arc;

fn main() {
    // A service with the hardware backend enabled: jobs the decision
    // model (or a profile entry) assigns to Scheme::Pclr are lowered to
    // PCLR instruction traces and executed on the simulated CC-NUMA
    // machine; everything else runs on the software worker pool.
    let rt = Runtime::new(RuntimeConfig {
        workers: 4,
        dispatchers: 1,
        pclr: Some(PclrConfig {
            nodes: 4,
            max_sim_refs: 20_000,
            ..PclrConfig::default()
        }),
        ..RuntimeConfig::default()
    });

    // A small irregular class, admitted by the backend.
    let pat = Arc::new(
        PatternSpec {
            num_elements: 1024,
            iterations: 2_000,
            refs_per_iter: 3,
            coverage: 0.9,
            dist: Distribution::Uniform,
            seed: 11,
        }
        .generate(),
    );

    // Let the service decide naturally first...
    let handle = rt.submit(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
    let sig = handle.signature();
    let decided = handle.wait();
    println!(
        "model decision for the class: {} ({} refs)",
        decided.scheme,
        pat.num_references()
    );

    // ...then pin the class onto the hardware backend the way a
    // previous offload-enabled process would have: through the profile
    // store. (Production services inherit this from disk via
    // `RuntimeConfig::profile_path`.)
    let mut learned = smartapps::runtime::ProfileStore::new();
    learned.record(
        sig,
        Scheme::Pclr,
        rt.width(),
        pat.num_references(),
        std::time::Duration::from_micros(50),
    );
    rt.seed_profile(&learned);

    let offloaded = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
    assert_eq!(offloaded.scheme, Scheme::Pclr);
    let cycles = offloaded.sim_cycles.expect("offloaded job reports cycles");
    assert_eq!(
        offloaded.output.as_i64().unwrap(),
        sequential_reduce_i64(&pat),
        "hardware result must match the software oracle"
    );
    println!(
        "offloaded run: scheme {}, {} simulated cycles, profile hit: {}",
        offloaded.scheme, cycles, offloaded.profile_hit
    );

    let stats = rt.stats();
    println!(
        "service stats: {} completed, {} pclr offloads, {} simulated cycles total",
        stats.completed, stats.pclr_offloads, stats.sim_cycles
    );
    assert!(stats.pclr_offloads >= 1);
    rt.shutdown();
    println!("ok: hardware and software schemes competed in one service");
}
