//! The reduction service over TCP: start a `smartapps-server` in-process,
//! connect a wire-protocol `Client`, submit a batch, and read the stats.
//!
//! ```sh
//! cargo run --release --example network_service
//! ```
//!
//! This is the out-of-process shape of `examples/reduction_service.rs`:
//! the same runtime, but driven through the line protocol an external
//! client would speak, served by a fixed thread set (acceptor + reactors)
//! demultiplexing one shared completion queue — no thread per client, no
//! thread per job.

use smartapps::runtime::{Runtime, RuntimeConfig};
use smartapps::server::{
    Client, DoneOutcome, Payload, ReplyMode, Server, ServerConfig, SubmitArgs, WireBody, WireDist,
    WireSource, WireSpec,
};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // The service: a runtime with the poisoned-class quarantine armed,
    // fronted by a TCP server on an ephemeral loopback port.
    let rt = Arc::new(Runtime::new(RuntimeConfig {
        workers: 2,
        quarantine_after: 2,
        quarantine_ttl: Duration::from_secs(30),
        ..RuntimeConfig::default()
    }));
    let server = Server::start(rt.clone(), ServerConfig::default()).expect("start server");
    println!("serving on {}", server.local_addr());

    let mut client = Client::connect(server.local_addr()).expect("connect");
    let spec = WireSpec {
        elements: 1024,
        iterations: 2000,
        refs_per_iter: 2,
        coverage: 0.8,
        dist: WireDist::Uniform,
        seed: 17,
    };

    // A batch of 8 jobs over one pattern: same class, so they coalesce
    // into shared dispatch batches server-side; the `mul:k` bodies give
    // each member a distinct (still verifiable) output.
    let jobs: Vec<SubmitArgs> = (0..8)
        .map(|k| SubmitArgs {
            token: k,
            reply: ReplyMode::Ack,
            body: if k == 0 {
                WireBody::Sum
            } else {
                WireBody::Mul(k as i64 + 1)
            },
            source: WireSource::Gen(spec),
        })
        .collect();
    client.submit_batch(jobs).expect("submit batch");

    // The flush barrier: returns once all 8 `done` lines are in.
    let completed = client.drain().expect("drain");
    println!("connection drained after {completed} jobs");
    for _ in 0..8 {
        let done = client.next_done().expect("next_done");
        match done.outcome {
            DoneOutcome::Ok {
                scheme,
                elapsed_ns,
                batched_with,
                payload: Payload::Checksum { len, sum },
                ..
            } => println!(
                "  token {:>2}: ok scheme={scheme} elapsed={:>9}ns batched_with={batched_with} \
                 len={len} checksum={sum}",
                done.token, elapsed_ns
            ),
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    // The service counters, over the wire.
    let stats = client.stats().expect("stats");
    let get = |k: &str| stats.iter().find(|(n, _)| n == k).map_or(0, |(_, v)| *v);
    println!(
        "stats: submitted={} completed={} batches={} coalesced={} fused_jobs={}",
        get("submitted"),
        get("completed"),
        get("batches"),
        get("coalesced"),
        get("fused_jobs"),
    );
    assert_eq!(get("submitted"), 8);
    assert_eq!(get("completed"), 8);

    // The richer `stats v2`: latency-histogram digests (count / p50 /
    // p95 / p99 / max) plus any quarantined classes with remaining
    // TTLs — see docs/OBSERVABILITY.md for the catalog.
    let v2 = client.stats_v2().expect("stats v2");
    for h in v2
        .hists
        .iter()
        .filter(|h| h.name == "smartapps_exec_ns" || h.label_value == "all")
    {
        println!(
            "  {}{{{}=\"{}\"}}: count={} p50={}ns p99={}ns max={}ns",
            h.name, h.label_key, h.label_value, h.count, h.p50, h.p99, h.max
        );
    }
    match v2.quarantined.as_slice() {
        [] => println!("stats v2: no quarantined classes"),
        q => {
            for (sig, ttl) in q {
                println!("stats v2: quarantined class {sig:016x} ({ttl}s of TTL left)");
            }
        }
    }

    server.shutdown();
    println!("server drained and stopped; runtime still serves in-process callers");
    let stats = rt.stats();
    assert_eq!(stats.completed, 8);
}
