//! Drive the CC-NUMA simulator directly: run one reduction loop under the
//! software scheme and under PCLR (hardwired and programmable), print the
//! Figure 6-style breakdown, and verify the hardware combines values
//! exactly.
//!
//! Run with: `cargo run --release --example pclr_simulation`

use smartapps::sim::addr::{regions, to_shadow};
use smartapps::sim::{
    harmonic_mean, Machine, MachineConfig, Phase, RedOp, TraceBuilder, TraceSource,
};
use smartapps::workloads::tracegen::{traces_for, SimScheme, TraceParams};
use smartapps::workloads::{Distribution, PatternSpec};
use std::sync::Arc;

fn main() {
    // --- Value-exact PCLR demo: 4 processors add into shared counters. --
    let nodes = 4;
    let mut cfg = MachineConfig::table1(nodes);
    cfg.track_values = true;
    let traces: Vec<Box<dyn TraceSource>> = (0..nodes)
        .map(|p| {
            let mut b = TraceBuilder::new()
                .config_pclr(RedOp::AddI64)
                .phase(Phase::Loop);
            for k in 0..100u64 {
                let elem = (p as u64 * 37 + k) % 64;
                b = b.red_update(to_shadow(regions::shared_elem(elem)), 1);
            }
            Box::new(b.phase(Phase::Merge).flush().barrier().build()) as Box<dyn TraceSource>
        })
        .collect();
    let mut m = Machine::new(cfg, traces);
    let stats = m.run();
    let total: u64 = (0..64u64)
        .map(|e| m.peek_memory(regions::shared_elem(e)))
        .sum();
    println!(
        "PCLR value check: {} updates combined -> sum {} (expected 400)",
        400, total
    );
    assert_eq!(total, 400);
    println!(
        "  reduction fills: {}, lines flushed: {}, combines: {}\n",
        stats.counters.red_fills, stats.counters.red_flushed, stats.counters.combines
    );

    // --- Timing comparison on a synthetic irregular loop. ---------------
    let procs = 8;
    let pat = Arc::new(
        PatternSpec {
            num_elements: 131_072, // 1 MB reduction array
            iterations: 40_000,
            refs_per_iter: 8,
            coverage: 1.0,
            dist: Distribution::Clustered { window: 4096 },
            seed: 3,
        }
        .generate(),
    );
    let params = TraceParams::default();
    let run = |scheme: SimScheme, cfg: MachineConfig| {
        let n = cfg.nodes;
        let mut m = Machine::new(cfg, traces_for(scheme, &pat, n, params));
        m.run()
    };
    println!(
        "synthetic loop: {} refs over 1 MB array, {procs} processors",
        pat.num_references()
    );
    let seq = run(SimScheme::Seq, MachineConfig::table1(1));
    let sw = run(SimScheme::Sw, MachineConfig::table1(procs));
    let hw = run(SimScheme::Pclr, MachineConfig::table1(procs));
    let flex = run(SimScheme::Pclr, MachineConfig::flex(procs));
    println!(
        "  {:5} {:>12} {:>10} {:>10} {:>10} {:>8}",
        "sys", "cycles", "init", "loop", "merge", "speedup"
    );
    for (name, s) in [("Seq", &seq), ("Sw", &sw), ("Hw", &hw), ("Flex", &flex)] {
        let b = s.breakdown();
        println!(
            "  {:5} {:>12} {:>10} {:>10} {:>10} {:>8.2}",
            name,
            s.total_cycles,
            b.init,
            b.looptime,
            b.merge,
            seq.total_cycles as f64 / s.total_cycles as f64
        );
    }
    let speedups = [
        seq.total_cycles as f64 / sw.total_cycles as f64,
        seq.total_cycles as f64 / hw.total_cycles as f64,
        seq.total_cycles as f64 / flex.total_cycles as f64,
    ];
    println!(
        "\n  PCLR removes the Init phase entirely and replaces the Merge phase\n\
         with a cache flush; harmonic mean across systems here: {:.2}",
        harmonic_mean(&speedups)
    );
}
