//! Quickstart: let the SmartApp runtime pick a reduction scheme for an
//! irregular loop, and compare it with every fixed choice.
//!
//! Run with: `cargo run --release --example quickstart`

use smartapps::prelude::*;
use std::time::Instant;

fn main() {
    let threads = 4;
    // An irregular mesh: 50,000 nodes, 400,000 edges, each edge
    // contributing force to both endpoints (the Irreg/Moldyn shape).
    let pattern = smartapps::workloads::apps::irreg_mesh(50_000, 400_000, 42);
    let chars = PatternChars::measure(&pattern);
    println!(
        "workload: {} elements, {} iterations, {} references",
        chars.num_elements, chars.iterations, chars.references
    );
    println!(
        "characteristics: MO = {:.2}, CON = {:.1}, SP = {:.1}%, array = {:.0} KB\n",
        chars.mo,
        chars.con,
        chars.sp * 100.0,
        chars.array_kb()
    );

    // 1. The adaptive runtime: characterize, decide, execute.
    let mut smart = AdaptiveReduction::new(0, threads, true);
    let t0 = Instant::now();
    let (w_adaptive, log) = smart.execute(&pattern, &|_i, r| contribution(r));
    println!(
        "adaptive runtime chose `{}` in {:.2?} (inspector included: {})",
        log.scheme,
        t0.elapsed(),
        log.characterized
    );

    // 2. Every fixed scheme, for comparison.
    println!("\nfixed schemes on {threads} threads:");
    let (ranking, seq_time) = rank_schemes(&pattern, &|_i, r| contribution(r), threads, true, 3);
    println!("  sequential: {seq_time:.2?}");
    for t in &ranking {
        println!(
            "  {:4}: {:9.2?}  (speedup {:.2}x)",
            t.scheme.abbrev(),
            t.elapsed,
            seq_time.as_secs_f64() / t.elapsed.as_secs_f64()
        );
    }
    let best = ranking[0].scheme;
    println!(
        "\nmeasured best = `{best}`; adaptive runtime chose `{}` -> {}",
        log.scheme,
        if log.scheme == best {
            "optimal"
        } else {
            "within the top choices"
        }
    );

    // Results are identical whichever scheme ran.
    let w_fixed = run_scheme(best, &pattern, &|_i, r| contribution(r), threads, None);
    let max_err = w_adaptive
        .iter()
        .zip(w_fixed.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |adaptive - fixed| = {max_err:.2e} (floating-point reassociation only)");
}
