//! Binary wire v2 + CSR pattern upload: negotiate the framed protocol,
//! upload an application's *real* access pattern once, then submit jobs
//! that reference it by handle — no generator spec, no re-serializing
//! the structure per job.
//!
//! ```sh
//! cargo run --release --example csr_upload
//! ```
//!
//! This is the upload-path shape of `examples/network_service.rs`.  The
//! flow an external application would follow:
//!
//! 1. connect and send `upgrade bin` (text) → `upgraded bin` ack; the
//!    connection switches to `[u32 LE len][u8 kind][body]` frames;
//! 2. `upload` the CSR (iter_ptr + indices) → the server interns it
//!    (deduplicating by content hash) and replies with a stable handle;
//! 3. submit jobs with `source: WireSource::Handle(h)` — same scheme
//!    selection, coalescing and fusion as generator-spec jobs, because
//!    the handle resolves to the same shared pattern allocation.
//!
//! Two clients upload the same structure to show interning: the second
//! upload is a dedup hit and returns the *same* handle, so jobs from
//! both connections land in one workload class.

use smartapps::runtime::{Runtime, RuntimeConfig};
use smartapps::server::{
    checksum, Client, DoneOutcome, Payload, ReplyMode, Server, ServerConfig, SubmitArgs,
    UploadArgs, WireBody, WireSource,
};
use smartapps::workloads::sequential_reduce_i64;
use std::sync::Arc;

fn main() {
    let rt = Arc::new(Runtime::new(RuntimeConfig {
        workers: 2,
        ..RuntimeConfig::default()
    }));
    let server = Server::start(rt, ServerConfig::default()).expect("start server");
    let addr = server.local_addr();
    println!("serving on {addr}");

    // The application's own irregular structure — a mesh edge list, not
    // a synthetic generator spec.  This is the CSR the upload carries.
    let pattern = smartapps::workloads::apps::irreg_mesh(2_000, 12_000, 42);
    let oracle = sequential_reduce_i64(&pattern);
    let expected = (oracle.len(), checksum(&oracle));

    // Client A: negotiate binary framing, then upload the CSR.
    let mut a = Client::connect(addr).expect("connect a");
    a.upgrade_binary().expect("upgrade a");
    assert!(a.is_binary());
    let handle = a
        .upload(UploadArgs {
            token: 1,
            num_elements: pattern.num_elements,
            iter_ptr: pattern.iter_ptr.clone(),
            indices: pattern.indices.clone(),
        })
        .expect("upload a");
    println!("client a uploaded the mesh: handle {handle:#018x}");

    // Client B uploads the identical structure: the server interns by
    // content hash, so this is a dedup hit — same handle, no new copy.
    let mut b = Client::connect(addr).expect("connect b");
    b.upgrade_binary().expect("upgrade b");
    let handle_b = b
        .upload(UploadArgs {
            token: 1,
            num_elements: pattern.num_elements,
            iter_ptr: pattern.iter_ptr.clone(),
            indices: pattern.indices.clone(),
        })
        .expect("upload b");
    assert_eq!(handle, handle_b, "identical CSR must intern to one handle");
    println!("client b uploaded the same mesh: deduplicated to {handle_b:#018x}");

    // Both clients submit by handle.  Same handle → same workload class
    // → the jobs coalesce into shared dispatch batches server-side.
    for (name, client) in [("a", &mut a), ("b", &mut b)] {
        let jobs: Vec<SubmitArgs> = (0..4)
            .map(|k| SubmitArgs {
                token: 100 + k,
                reply: ReplyMode::Ack,
                body: if k == 0 {
                    WireBody::Sum
                } else {
                    WireBody::Mul(k as i64 + 1)
                },
                source: WireSource::Handle(handle),
            })
            .collect();
        client.submit_batch(jobs).expect("submit batch");
        let drained = client.drain().expect("drain");
        println!("client {name}: drained after {drained} jobs");
        for _ in 0..4 {
            let done = client.next_done().expect("next_done");
            match done.outcome {
                DoneOutcome::Ok {
                    scheme,
                    batched_with,
                    payload: Payload::Checksum { len, sum },
                    ..
                } => {
                    if done.token == 100 {
                        assert_eq!((len, sum), expected, "handle job diverged from oracle");
                    }
                    println!(
                        "  {name}/token {:>3}: ok scheme={scheme} batched_with={batched_with} \
                         len={len} checksum={sum}",
                        done.token
                    );
                }
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
    }

    // The interning story, from the server's own counters.
    let text = a.metrics().expect("metrics");
    let count = |outcome: &str| -> u64 {
        text.lines()
            .find_map(|l| {
                l.strip_prefix(&format!("smartapps_uploads{{outcome=\"{outcome}\"}} "))
                    .and_then(|v| v.trim().parse().ok())
            })
            .unwrap_or(0)
    };
    println!(
        "uploads: fresh={} dedup={} rejected={}",
        count("fresh"),
        count("dedup"),
        count("rejected")
    );
    assert_eq!(count("fresh"), 1);
    assert_eq!(count("dedup"), 1);

    let stats = a.stats().expect("stats");
    let get = |k: &str| stats.iter().find(|(n, _)| n == k).map_or(0, |(_, v)| *v);
    println!(
        "stats: submitted={} completed={} batches={} coalesced={}",
        get("submitted"),
        get("completed"),
        get("batches"),
        get("coalesced"),
    );
    assert_eq!(get("completed"), 8);

    server.shutdown();
}
