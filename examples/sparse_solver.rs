//! An Equake/Spark98-style sparse symmetric matrix-vector product where
//! the destination vector is updated through a reduction, plus the SPICE
//! shape (device stamps scattering into a huge, almost untouched matrix)
//! that makes hash-table reductions win.
//!
//! Run with: `cargo run --release --example sparse_solver`

use smartapps::prelude::*;
use smartapps::workloads::mesh::smvp_pattern;

fn main() {
    let threads = 4;

    // --- SMVP: banded symmetric matrix, y[r] and y[c] accumulated. -----
    let rows = 30_169; // Spark98's smvp row count
    let pattern = smvp_pattern(rows, 6, 900, 11);
    let chars = PatternChars::measure(&pattern);
    println!(
        "smvp: {} rows, {} updates, SP {:.1}%, CON {:.2}",
        rows,
        chars.references,
        chars.sp * 100.0,
        chars.con
    );
    let insp = Inspector::analyze(&pattern, threads);
    let model = DecisionModel::default();
    let pred = model.decide(&ModelInput::from_inspection(&insp, false));
    println!("model ranking:");
    for (s, cost) in &pred.ranking {
        println!("  {:4}  predicted cost {:.3e}", s.abbrev(), cost);
    }
    let y = run_scheme(
        pred.best(),
        &pattern,
        &|_i, r| contribution(r),
        threads,
        Some(&insp),
    );
    println!("chose {} -> y[0..4] = {:?}\n", pred.best(), &y[..4]);

    // --- SPICE: circuit stamps into a sparse device matrix. ------------
    let spice = PatternSpec {
        num_elements: 186_943, // bjt100's matrix dimension
        iterations: 100,       // device evaluations
        refs_per_iter: 28,     // stamps per device (the paper's MO)
        coverage: 0.0015,      // touches 0.14% of the matrix
        dist: Distribution::Uniform,
        seed: 5,
    }
    .generate();
    let chars = PatternChars::measure(&spice);
    println!(
        "spice: dimension {}, {} stamps over {} distinct entries (SP {:.2}%)",
        chars.num_elements,
        chars.references,
        chars.distinct,
        chars.sp * 100.0
    );
    let threads = 8; // the paper's Figure 3 machine size
    let insp = Inspector::analyze(&spice, threads);
    let pred = model.decide(&ModelInput::from_inspection(&insp, false));
    println!(
        "model recommends `{}` at {threads} threads (paper: hash wins only here,\n\
         \"because of the very sparse nature of the references\")",
        pred.best()
    );
    // Demonstrate why: time hash vs rep on this pattern.
    let (ranking, _seq) = rank_schemes(&spice, &|_i, r| contribution(r), threads, false, 5);
    let hash_t = ranking
        .iter()
        .find(|t| t.scheme == Scheme::Hash)
        .unwrap()
        .elapsed;
    let rep_t = ranking
        .iter()
        .find(|t| t.scheme == Scheme::Rep)
        .unwrap()
        .elapsed;
    println!(
        "measured: hash {:.2?} vs rep {:.2?} ({:.0}x) — rep pays O(N) sweeps of a\n\
         1.5 MB replica per thread for only {} updates",
        hash_t,
        rep_t,
        rep_t.as_secs_f64() / hash_t.as_secs_f64(),
        chars.references
    );
}
