//! Speculative parallelization of loops the compiler cannot analyze:
//! the LRPD test on a fully parallel loop, and the Recursive LRPD test
//! extracting partial parallelism from a TRACK-like loop with scattered
//! dependences ("prior to this technique, TRACK was considered
//! sequential").
//!
//! Run with: `cargo run --release --example speculative_loop`

use smartapps::prelude::*;
use smartapps::specpar::lrpd::run_sequential;

fn main() {
    let threads = 4;
    let n_elems = 100_000;
    let n_iters = 80_000;

    // --- A loop that is parallel, but only at run time. -----------------
    // w[perm[i]] = f(i): the permutation comes from input data, so static
    // analysis cannot prove independence.
    let perm: Vec<usize> = (0..n_iters).map(|i| (i * 48_271) % n_elems).collect();
    let body = {
        let perm = perm.clone();
        move |i: usize, ctx: &mut dyn SpecAccess| {
            ctx.write(perm[i], (i as f64).sqrt());
        }
    };
    let mut data = vec![0.0f64; n_elems];
    let t0 = std::time::Instant::now();
    let report = lrpd_execute(&mut data, n_iters, threads, &body);
    println!(
        "LRPD on a run-time-parallel loop: committed in {:.2?}, succeeded = {}",
        t0.elapsed(),
        report.succeeded
    );
    assert!(report.succeeded);

    // --- TRACK-like partially parallel loop. -----------------------------
    // Mostly independent iterations, but every ~25,000th iteration reads a
    // value produced 15,000 iterations earlier — far enough back to cross
    // processor block boundaries (target-track crossings create sparse
    // flow dependences).
    let body = |i: usize, ctx: &mut dyn SpecAccess| {
        if i % 25_000 == 24_999 {
            let v = ctx.read(i - 15_000);
            ctx.write(i % 50_000, v * 0.5 + 1.0);
        } else {
            ctx.write(i % 50_000, i as f64 * 0.25);
            ctx.reduce(99_999, 1.0); // a residual-norm reduction
        }
    };
    let mut expect = vec![0.0f64; n_elems];
    run_sequential(&mut expect, 0..n_iters, &body);

    let mut data = vec![0.0f64; n_elems];
    let t0 = std::time::Instant::now();
    let report = rlrpd_execute(&mut data, n_iters, threads, &body);
    println!(
        "\nR-LRPD on the TRACK-like loop: {:.2?}, {} rounds, efficiency {:.0}%",
        t0.elapsed(),
        report.rounds,
        report.efficiency() * 100.0
    );
    println!(
        "  speculative iterations {} (re-executed {}), dependences/round {:?}",
        report.speculative_iterations, report.reexecuted_iterations, report.dependences_per_round
    );
    assert_eq!(
        data, expect,
        "R-LRPD must produce the exact sequential result"
    );
    println!("  result matches the sequential execution exactly");

    // --- Feedback-guided block scheduling on a triangular loop. ----------
    println!("\nfeedback-guided blocked scheduling (triangular work):");
    let mut sched = FgbsScheduler::new(30_000, threads);
    for invocation in 0..5 {
        let imbalance = sched.run_invocation(|i| {
            // Work grows linearly with i.
            let mut acc = 0u64;
            for k in 0..(i / 8) {
                acc = acc.wrapping_add(k as u64);
            }
            std::hint::black_box(acc);
        });
        println!("  invocation {invocation}: measured imbalance {imbalance:.3} (1.0 = perfect)");
    }
    println!("  block boundaries converged to {:?}", sched.schedule());
}
