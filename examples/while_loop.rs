//! Parallelizing WHILE loops: linked-list traversal via inspector/executor
//! and speculative strip-mining when the trip count is decided by the
//! computation itself (Section 3, technique iii).
//!
//! Run with: `cargo run --release --example while_loop`

use smartapps::specpar::whileloop::{collect_list, execute_over, speculative_while, ListArena};
use std::time::Instant;

fn main() {
    let threads = 4;

    // --- A linked list in an arena, threaded in shuffled order. ---------
    let n = 2_000_000;
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut state = 0x2545F4914F6CDD1Du64;
    for i in (1..n).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let j = (state % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    let values: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
    let list = ListArena::from_order(&order, &values);

    // Inspector: the serial pointer chase.
    let t0 = Instant::now();
    let collected = collect_list(&list);
    let chase = t0.elapsed();

    // Executor: the loop body runs fully parallel over the collected order.
    let t0 = Instant::now();
    let results = execute_over(&collected, &list, threads, |pos, node, l| {
        let v = l.value[node as usize];
        v * v + pos as f64 * 1e-9
    });
    let exec = t0.elapsed();
    println!(
        "while-loop over a {n}-node list: inspector {chase:.2?} (serial pointer\n\
         chase), executor {exec:.2?} on {threads} threads, checksum {:.3}",
        results.iter().sum::<f64>()
    );

    // --- Unknown trip count: the exit condition is computed. ------------
    // Iterate until the accumulated series crosses a threshold; nobody
    // knows the trip count in advance.
    let t0 = Instant::now();
    let (out, report) = speculative_while(
        threads,
        512,
        10_000_000,
        |i| 1.0 / ((i + 1) as f64).powi(2),
        |i| i > 0 && (i as f64) * (i as f64).ln() > 1.0e6,
    );
    println!(
        "\nspeculative while: committed {} iterations in {} rounds ({:.2?}),\n\
         discarded {} overshoot iterations past the exit",
        report.committed,
        report.rounds,
        t0.elapsed(),
        report.discarded
    );
    println!("series partial sum = {:.6}", out.iter().sum::<f64>());
}
