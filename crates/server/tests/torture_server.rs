//! Torture tests of the server's protocol state machines: request
//! streams delivered at every awkward byte boundary, a text→binary
//! upgrade with frames pipelined behind the upgrade line in the same
//! write, concurrent connections interleaving arbitrarily, and garbage
//! frames — always asserting the data-plane invariant: **every
//! submitted token answers exactly once, with the right result**, and a
//! poisoned connection dies alone.

use smartapps_runtime::Runtime;
use smartapps_server::wire2::{decode_response, encode_request, FRAME_HEADER_BYTES};
use smartapps_server::{
    checksum, BinMsg, DoneOutcome, Payload, ReplyMode, Request, Response, SubmitArgs, WireBody,
    WireDist, WireSource, WireSpec,
};
use smartapps_server::{Server, ServerConfig};
use smartapps_workloads::sequential_reduce_i64;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn small_spec(seed: u64) -> WireSpec {
    WireSpec {
        elements: 64,
        iterations: 80,
        refs_per_iter: 2,
        coverage: 0.9,
        dist: WireDist::Uniform,
        seed,
    }
}

fn submit(token: u64, seed: u64) -> SubmitArgs {
    SubmitArgs {
        token,
        reply: ReplyMode::Ack,
        body: WireBody::Sum,
        source: WireSource::Gen(small_spec(seed)),
    }
}

fn expected_checksum(seed: u64) -> (usize, i64) {
    let out = sequential_reduce_i64(&small_spec(seed).to_pattern_spec().generate());
    (out.len(), checksum(&out))
}

/// Write `bytes` in `chunk`-sized slices, flushing each — forcing the
/// server to reassemble requests from arbitrary split points.
fn write_chunked(stream: &mut TcpStream, bytes: &[u8], chunk: usize) {
    for piece in bytes.chunks(chunk.max(1)) {
        stream.write_all(piece).expect("write");
        stream.flush().expect("flush");
    }
}

/// Read one binary frame (blocking) off a buffered reader.
fn read_frame(reader: &mut BufReader<TcpStream>) -> Result<BinMsg, String> {
    let mut head = [0u8; FRAME_HEADER_BYTES];
    reader.read_exact(&mut head).map_err(|e| e.to_string())?;
    let len = u32::from_le_bytes(head) as usize;
    assert!(len > 0 && len < 1 << 20, "absurd frame length {len}");
    let mut frame = vec![0u8; len];
    reader.read_exact(&mut frame).map_err(|e| e.to_string())?;
    decode_response(frame[0], &frame[1..])
}

/// Read binary `done` frames until every wanted token has answered;
/// assert exactly-once delivery and correct checksums.
fn collect_bin_dones(reader: &mut BufReader<TcpStream>, want: &HashMap<u64, u64>) {
    let mut seen: HashMap<u64, ()> = HashMap::new();
    while seen.len() < want.len() {
        let BinMsg::Response(r) = read_frame(reader).expect("frame") else {
            continue;
        };
        let Response::Done(d) = *r else {
            continue;
        };
        let seed = *want
            .get(&d.token)
            .unwrap_or_else(|| panic!("token {} was never submitted on this connection", d.token));
        assert!(
            seen.insert(d.token, ()).is_none(),
            "token {} answered twice",
            d.token
        );
        let (len, sum) = expected_checksum(seed);
        match d.outcome {
            DoneOutcome::Ok {
                payload: Payload::Checksum { len: l, sum: s },
                ..
            } => {
                assert_eq!((l, s), (len, sum), "wrong checksum for token {}", d.token);
            }
            other => panic!("token {}: unexpected outcome {other:?}", d.token),
        }
    }
}

/// One full session — text submits, upgrade, pipelined binary traffic —
/// delivered in `chunk`-byte writes.
fn torture_session(addr: std::net::SocketAddr, chunk: usize, salt: u64) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // Text phase, pipelined and chunk-split.
    let mut script = String::new();
    for t in 0..3u64 {
        let mut line = Request::Submit(submit(salt + t, salt + t)).encode();
        line.push('\n');
        script.push_str(&line);
    }
    write_chunked(&mut stream, script.as_bytes(), chunk);
    let mut text_seen = HashMap::new();
    while text_seen.len() < 3 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read line");
        let Ok(Response::Done(d)) = Response::parse(&line) else {
            panic!("unexpected line: {line:?}");
        };
        assert!(
            d.token >= salt && d.token < salt + 3,
            "foreign token {}",
            d.token
        );
        assert!(text_seen.insert(d.token, ()).is_none(), "duplicate done");
        let (len, sum) = expected_checksum(d.token);
        assert!(
            matches!(
                d.outcome,
                DoneOutcome::Ok {
                    payload: Payload::Checksum { len: l, sum: s },
                    ..
                } if l == len && s == sum
            ),
            "bad text-phase outcome"
        );
    }

    // Upgrade with binary frames pipelined in the SAME byte stream —
    // the server must carve the text line off and route the remainder
    // into the frame splitter without losing a byte.
    let mut tail = b"upgrade bin\n".to_vec();
    let mut want: HashMap<u64, u64> = HashMap::new();
    let mut batch = Vec::new();
    for t in 10..14u64 {
        want.insert(salt + t, salt + t);
        batch.push(submit(salt + t, salt + t));
    }
    tail.extend_from_slice(&encode_request(&Request::Batch(batch)));
    for t in 14..17u64 {
        want.insert(salt + t, salt + t);
        tail.extend_from_slice(&encode_request(&Request::Submit(submit(
            salt + t,
            salt + t,
        ))));
    }
    write_chunked(&mut stream, &tail, chunk);

    // The ack is the last text line; everything after is frames.
    let mut line = String::new();
    reader.read_line(&mut line).expect("read upgrade ack");
    assert_eq!(
        Response::parse(&line),
        Ok(Response::Upgraded),
        "line: {line:?}"
    );
    collect_bin_dones(&mut reader, &want);
}

#[test]
fn every_byte_boundary_and_protocol_mix_is_exactly_once() {
    let rt = Arc::new(Runtime::with_workers(3));
    let server = Server::start(rt, ServerConfig::default()).expect("start");
    let addr = server.local_addr();

    // Chunk size 1 is the full every-byte-boundary torture; the larger
    // sizes hit different header/body straddles.
    for (i, chunk) in [1usize, 2, 3, 5, 8, 13].into_iter().enumerate() {
        torture_session(addr, chunk, 1_000 * (i as u64 + 1));
    }
    server.shutdown();
}

#[test]
fn concurrent_sessions_never_leak_partial_state() {
    let rt = Arc::new(Runtime::with_workers(3));
    let server = Server::start(rt, ServerConfig::default()).expect("start");
    let addr = server.local_addr();

    // Four byte-dribbling sessions at once, interleaving arbitrarily on
    // the same reactors.  Each asserts it sees only its own tokens, so
    // any cross-connection buffer leak fails loudly.
    let threads: Vec<_> = (0..4u64)
        .map(|i| {
            std::thread::spawn(move || torture_session(addr, 1 + i as usize % 3, 100_000 * (i + 1)))
        })
        .collect();
    for t in threads {
        t.join().expect("session");
    }
    server.shutdown();
}

#[test]
fn upgrade_succeeds_with_a_slow_job_still_in_flight() {
    let rt = Arc::new(Runtime::with_workers(3));
    let server = Server::start(rt, ServerConfig::default()).expect("start");
    let addr = server.local_addr();

    // Heavy enough that its `done` cannot have been written back by the
    // time the pipelined `upgrade bin` line is parsed: the gate must
    // wait out the in-flight job (delivering its completion) instead of
    // failing the connection after a fixed number of spin iterations.
    let slow = WireSpec {
        elements: 30_000,
        iterations: 60_000,
        refs_per_iter: 2,
        coverage: 1.0,
        dist: WireDist::Uniform,
        seed: 424_242,
    };
    let slow_oracle = sequential_reduce_i64(&slow.to_pattern_spec().generate());
    let (slow_len, slow_sum) = (slow_oracle.len(), checksum(&slow_oracle));

    for round in 0..10u64 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));

        let mut script = Request::Submit(SubmitArgs {
            token: round,
            reply: ReplyMode::Ack,
            body: WireBody::Sum,
            source: WireSource::Gen(slow),
        })
        .encode();
        script.push('\n');
        script.push_str("upgrade bin\n");
        stream.write_all(script.as_bytes()).expect("write");

        // The slow job's `done` is the first text line, the upgrade ack
        // the second — never `error upgrade with jobs in flight`.
        let mut line = String::new();
        reader.read_line(&mut line).expect("read done");
        let Ok(Response::Done(d)) = Response::parse(&line) else {
            panic!("round {round}: expected done, got {line:?}");
        };
        assert_eq!(d.token, round);
        assert!(
            matches!(
                d.outcome,
                DoneOutcome::Ok {
                    payload: Payload::Checksum { len, sum },
                    ..
                } if len == slow_len && sum == slow_sum
            ),
            "round {round}: bad slow-job outcome"
        );
        let mut line = String::new();
        reader.read_line(&mut line).expect("read upgrade ack");
        assert_eq!(
            Response::parse(&line),
            Ok(Response::Upgraded),
            "round {round}: {line:?}"
        );

        // The upgraded connection speaks frames.
        let token = 1_000 + round;
        let mut want = HashMap::new();
        want.insert(token, token);
        stream
            .write_all(&encode_request(&Request::Submit(submit(token, token))))
            .expect("write frame");
        collect_bin_dones(&mut reader, &want);
    }
    server.shutdown();
}

#[test]
fn binary_garbage_fails_one_connection_not_the_server() {
    let rt = Arc::new(Runtime::with_workers(2));
    let server = Server::start(rt, ServerConfig::default()).expect("start");
    let addr = server.local_addr();

    for poison in [
        // Unknown kind byte.
        {
            let mut f = 5u32.to_le_bytes().to_vec();
            f.extend_from_slice(&[0x7F, 1, 2, 3, 4]);
            f
        },
        // Zero-length frame.
        0u32.to_le_bytes().to_vec(),
        // Length header far over the server's limit.
        {
            let mut f = u32::MAX.to_le_bytes().to_vec();
            f.push(0x01);
            f
        },
        // Valid kind, truncated body with a "complete" length.
        {
            let mut f = 3u32.to_le_bytes().to_vec();
            f.extend_from_slice(&[0x01, 0, 0]);
            f
        },
    ] {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        stream.write_all(b"upgrade bin\n").expect("write");
        let mut line = String::new();
        reader.read_line(&mut line).expect("ack");
        assert_eq!(Response::parse(&line), Ok(Response::Upgraded));

        stream.write_all(&poison).expect("write poison");
        // The connection must die (typically after an error frame); it
        // must not hang and must not take the server with it.
        let mut rest = Vec::new();
        let _ = reader.read_to_end(&mut rest);

        let mut probe = smartapps_server::Client::connect(addr).expect("server alive");
        probe.stats().expect("server still answers");
    }
    server.shutdown();
}
