//! End-to-end tests of decision provenance over the wire: a mixed
//! flood of dense, sparse, and window-shaped workload classes from
//! concurrent text-protocol and binary-wire-v2 clients, then
//! `explain` / `slowlog` served over both protocols.
//!
//! Acceptance invariants:
//!
//! * `explain` returns the actual candidate cost table for a flooded
//!   class, and its winning scheme matches the scheme a freshly
//!   submitted job's `done` reports (the record is the decision in
//!   force).
//! * The window class (uploaded CSR, uniform body) is rewritten by the
//!   simplification pass: its jobs complete as `seq`/scan and the
//!   explained record's simplify gate says so, reachable through the
//!   `pat:<handle>` target form.
//! * `slowlog` stage attribution is *exact*: the five stages (queue,
//!   decide, simplify, exec, completion) sum to the exemplar's
//!   end-to-end latency for every executed entry (one log2 bucket is
//!   the acceptance bound; the trace derivation telescopes, so
//!   equality must hold).

use smartapps_runtime::{Runtime, RuntimeConfig};
use smartapps_server::{
    Client, DoneOutcome, ExplainTarget, ReplyMode, Server, ServerConfig, SubmitArgs, WireBody,
    WireDist, WireSource, WireSpec,
};
use smartapps_workloads::AccessPattern;
use std::collections::HashMap;
use std::sync::Arc;

fn dense_spec() -> WireSpec {
    WireSpec {
        elements: 400,
        iterations: 700,
        refs_per_iter: 2,
        coverage: 0.85,
        dist: WireDist::Uniform,
        seed: 501,
    }
}

fn sparse_spec() -> WireSpec {
    WireSpec {
        elements: 8192,
        iterations: 600,
        refs_per_iter: 2,
        coverage: 0.05,
        dist: WireDist::Clustered(16),
        seed: 777,
    }
}

/// A sliding-window pattern wide enough to clear the simplification
/// pass's default cost guard (the same shape the recognizer's unit
/// tests use).
fn window_pattern() -> AccessPattern {
    let (n, iters, width) = (256usize, 4096usize, 64usize);
    let rows: Vec<Vec<u32>> = (0..iters)
        .map(|i| {
            let lo = i % (n - width + 1);
            (lo as u32..(lo + width) as u32).collect()
        })
        .collect();
    AccessPattern::from_iters(n, &rows)
}

/// Flood `client` with `per_class` jobs of each class and drain; panics
/// on any failed job.
fn flood(client: &mut Client, window_handle: u64, per_class: usize, token_base: u64) {
    let mut token = token_base;
    for round in 0..per_class {
        let _ = round;
        for source in [
            WireSource::Gen(dense_spec()),
            WireSource::Gen(sparse_spec()),
            WireSource::Handle(window_handle),
        ] {
            let body = match source {
                WireSource::Handle(_) => WireBody::Usum,
                WireSource::Gen(_) => WireBody::Sum,
            };
            client
                .submit(SubmitArgs {
                    token,
                    reply: ReplyMode::Ack,
                    body,
                    source,
                })
                .expect("submit");
            token += 1;
        }
    }
    client.drain().expect("drain");
    while client.stashed() > 0 {
        let done = client.next_done().expect("done");
        assert!(
            matches!(done.outcome, DoneOutcome::Ok { .. }),
            "flood job failed: {done:?}"
        );
    }
}

/// Submit one job, wait for its `done`, and return the reported scheme.
fn probe_scheme(client: &mut Client, body: WireBody, source: WireSource, token: u64) -> String {
    client
        .submit(SubmitArgs {
            token,
            reply: ReplyMode::Ack,
            body,
            source,
        })
        .expect("submit probe");
    loop {
        let done = client.next_done().expect("probe done");
        if done.token != token {
            continue;
        }
        match done.outcome {
            DoneOutcome::Ok { scheme, .. } => return scheme,
            other => panic!("probe job failed: {other:?}"),
        }
    }
}

/// The provenance assertions, run against one (already-floodeed)
/// connection — the same checks must pass over text and binary.
fn verify_provenance(client: &mut Client, rt: &Runtime, window_handle: u64, token_base: u64) {
    // Unknown class: explained none, connection stays usable.
    assert_eq!(
        client
            .explain(ExplainTarget::Signature(0xdead_beef_dead_beef))
            .expect("explain unknown"),
        None
    );

    // Dense and sparse classes: the explained winner is the scheme a
    // fresh probe job actually runs (no concurrent traffic here, so
    // the record cannot be superseded between probe and explain).
    for (i, spec) in [dense_spec(), sparse_spec()].into_iter().enumerate() {
        let done_scheme = probe_scheme(
            client,
            WireBody::Sum,
            WireSource::Gen(spec),
            token_base + i as u64,
        );
        let sig = rt.signature_of(&spec.to_pattern_spec().generate());
        let info = client
            .explain(ExplainTarget::Signature(sig.0))
            .expect("explain")
            .expect("flooded class must have a decision record");
        assert_eq!(info.signature, sig.0);
        assert_eq!(
            info.candidates.len(),
            7,
            "five software schemes + pclr + simd, all priced"
        );
        let winner_row = info
            .candidates
            .iter()
            .find(|c| c.scheme == info.winner)
            .expect("winner must appear in its own candidate table");
        assert!(winner_row.feasible, "winner must be feasible");
        assert!(winner_row.corrected.is_finite());
        assert_eq!(
            info.winner, done_scheme,
            "explained winner must match the probe job's done scheme"
        );
        assert!(
            !info.quarantine.fired,
            "clean class must not be quarantined"
        );
        assert_eq!(info.features.len(), 11, "full feature vector on the wire");
        let feature = |name: &str| {
            info.features
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing feature {name}"))
                .1
        };
        assert_eq!(feature("elements") as usize, spec.elements);
        assert!(feature("sp") > 0.0 && feature("sp") <= 1.0);
    }

    // Window class, via the uploaded-pattern target form: simplified to
    // a scan, and the record says so.
    let done_scheme = probe_scheme(
        client,
        WireBody::Usum,
        WireSource::Handle(window_handle),
        token_base + 2,
    );
    assert_eq!(done_scheme, "seq", "window jobs must run as scans");
    let info = client
        .explain(ExplainTarget::Handle(window_handle))
        .expect("explain pat:")
        .expect("window class must have a decision record");
    assert!(
        info.simplify.fired,
        "simplify gate must fire for the window class (reason: {})",
        info.simplify.reason
    );
    assert_eq!(info.simplify.reason, "window");
    assert_eq!(info.backend, "scan");

    // Slowlog: entries exist for the flooded classes, slowest first,
    // and the five runtime stages sum exactly to the end-to-end
    // latency that earned each executed entry its slot.
    assert_eq!(client.slowlog(0).expect("slowlog 0").len(), 0);
    let entries = client.slowlog(64).expect("slowlog");
    assert!(!entries.is_empty(), "flood must retain slow exemplars");
    for w in entries.windows(2) {
        assert!(w[0].latency_ns >= w[1].latency_ns, "slowest first");
    }
    let mut classes_seen = std::collections::HashSet::new();
    for e in &entries {
        classes_seen.insert(e.class);
        assert_eq!(e.error, "none", "only clean jobs were submitted");
        let sum = e.queue_ns + e.decide_ns + e.simplify_ns + e.exec_ns + e.completion_ns;
        assert_eq!(
            sum, e.latency_ns,
            "stage attribution must telescope to end-to-end (class {:016x})",
            e.class
        );
    }
    let window_sig = rt.signature_of(&window_pattern());
    assert!(
        classes_seen.contains(&window_sig.0),
        "window class must appear in the slowlog"
    );
}

#[test]
fn explain_and_slowlog_over_text_and_binary_wire() {
    let rt = Arc::new(Runtime::new(RuntimeConfig {
        workers: 2,
        shards: 8,
        dispatchers: 2,
        ..RuntimeConfig::default()
    }));
    let server = Server::start(rt.clone(), ServerConfig::default()).expect("start server");
    let addr = server.local_addr();

    // Intern the window CSR once; both clients submit it by handle
    // (uploading 262k references over a text line would trip the line
    // cap — the handle seam exists for exactly this).
    let window_handle = rt
        .patterns()
        .intern(window_pattern())
        .expect("intern")
        .handle;

    // Concurrent mixed flood: one text client, one binary client.
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut text = Client::connect(addr).expect("connect text");
            flood(&mut text, window_handle, 8, 0);
        });
        s.spawn(|| {
            let mut bin = Client::connect(addr).expect("connect bin");
            bin.upgrade_binary().expect("upgrade");
            flood(&mut bin, window_handle, 8, 10_000);
        });
    });

    // Sequential verification, once per protocol: the assertions are
    // identical, so any divergence is a codec bug.
    let mut text = Client::connect(addr).expect("connect text");
    verify_provenance(&mut text, &rt, window_handle, 20_000);
    let mut bin = Client::connect(addr).expect("connect bin");
    bin.upgrade_binary().expect("upgrade");
    verify_provenance(&mut bin, &rt, window_handle, 30_000);

    // The flood must have moved the provenance metrics: per-stage
    // series populated (queue/decide/exec at least), and the stats v2
    // snapshot carrying the simplification counters.
    let v2 = text.stats_v2().expect("stats v2");
    let counter = |name: &str| -> u64 {
        v2.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    assert!(counter("simplified_jobs") > 0, "window jobs must simplify");
    let stage_counts: HashMap<&str, u64> = v2
        .hists
        .iter()
        .filter(|h| h.name == "smartapps_stage_ns")
        .map(|h| (h.label_value.as_str(), h.count))
        .collect();
    for stage in ["queue", "decide", "exec", "simplify", "write"] {
        assert!(
            stage_counts.get(stage).copied().unwrap_or(0) > 0,
            "stage series {stage} must be populated, got {stage_counts:?}"
        );
    }

    server.shutdown();
}
