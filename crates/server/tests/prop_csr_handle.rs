//! Property test: a CSR structure uploaded with `upload` and submitted
//! by handle is **observably identical** to submitting the inline
//! generator spec it came from — same i64 results, bit-identical f64
//! results, same fused-sweep behavior — across sampled pattern shapes
//! (which exercise different reduction schemes) and both wire protocols.
//!
//! One server serves every sampled case; the vendored proptest's
//! deterministic `Strategy::sample` drives the sweep so a failure
//! reproduces exactly.

use proptest::prelude::*;
use proptest::TestRng;
use smartapps_runtime::Runtime;
use smartapps_server::{
    Client, DoneOutcome, Payload, ReplyMode, Server, ServerConfig, SubmitArgs, UploadArgs,
    WireBody, WireDist, WireSource, WireSpec,
};
use smartapps_workloads::{sequential_reduce, sequential_reduce_i64};
use std::collections::HashMap;
use std::sync::Arc;

const CASES: u64 = 24;

fn arb_case() -> impl Strategy<Value = WireSpec> {
    ((4usize..200, 1usize..120, 1usize..4), 0u64..3, any::<u64>()).prop_map(
        |((elements, iterations, refs_per_iter), dist_pick, seed)| WireSpec {
            elements,
            iterations,
            refs_per_iter,
            coverage: 0.25 + 0.75 * ((seed % 7) as f64 / 7.0),
            dist: match dist_pick {
                0 => WireDist::Uniform,
                1 => WireDist::Zipf(1.1),
                _ => WireDist::Clustered(8),
            },
            seed,
        },
    )
}

/// Pull every stashed/incoming `done` until all `want` tokens are seen.
fn collect_dones(client: &mut Client, want: &[u64]) -> HashMap<u64, DoneOutcome> {
    let mut got = HashMap::new();
    while got.len() < want.len() {
        let d = client.next_done().expect("done");
        assert!(
            want.contains(&d.token),
            "unexpected token {} (want {want:?})",
            d.token
        );
        assert!(
            got.insert(d.token, d.outcome).is_none(),
            "token delivered twice"
        );
    }
    got
}

fn full_i64(outcome: &DoneOutcome) -> &[i64] {
    match outcome {
        DoneOutcome::Ok {
            payload: Payload::Full(v),
            ..
        } => v,
        other => panic!("expected full i64 payload, got {other:?}"),
    }
}

fn full_f64(outcome: &DoneOutcome) -> &[f64] {
    match outcome {
        DoneOutcome::Ok {
            payload: Payload::FullF64(v),
            ..
        } => v,
        other => panic!("expected full f64 payload, got {other:?}"),
    }
}

#[test]
fn uploaded_handle_matches_inline_spec_everywhere() {
    let rt = Arc::new(Runtime::with_workers(3));
    let server = Server::start(rt, ServerConfig::default()).expect("start server");
    let addr = server.local_addr();

    // Half the cases run over the text protocol, half over binary wire
    // v2 — handle semantics must not depend on the framing.
    let mut text = Client::connect(addr).expect("connect");
    let mut bin = Client::connect(addr).expect("connect");
    bin.upgrade_binary().expect("upgrade");
    assert!(bin.is_binary());

    let strat = arb_case();
    let mut rng = TestRng::deterministic(0xC5A_CA5E);
    for case in 0..CASES {
        let spec = strat.sample(&mut rng);
        let pattern = spec.to_pattern_spec().generate();
        let client = if case % 2 == 0 { &mut text } else { &mut bin };
        let base = case * 100;

        // Upload the exact CSR the generator would produce; interning
        // must hand back a stable handle (re-upload included).
        let upload = UploadArgs {
            token: base + 1,
            num_elements: pattern.num_elements,
            iter_ptr: pattern.iter_ptr.clone(),
            indices: pattern.indices.clone(),
        };
        let handle = client.upload(upload.clone()).expect("upload");
        let again = client
            .upload(UploadArgs {
                token: base + 2,
                ..upload
            })
            .expect("re-upload");
        assert_eq!(
            handle, again,
            "identical structure must dedup (case {case})"
        );

        // Inline spec vs uploaded handle, i64 and f64 bodies.
        for (t, body, source) in [
            (base + 10, WireBody::Sum, WireSource::Gen(spec)),
            (base + 11, WireBody::Sum, WireSource::Handle(handle)),
            (base + 12, WireBody::FSum, WireSource::Gen(spec)),
            (base + 13, WireBody::FSum, WireSource::Handle(handle)),
        ] {
            client
                .submit(SubmitArgs {
                    token: t,
                    reply: ReplyMode::Full,
                    body,
                    source,
                })
                .expect("submit");
        }
        let dones = collect_dones(client, &[base + 10, base + 11, base + 12, base + 13]);

        let oracle_i = sequential_reduce_i64(&pattern);
        assert_eq!(full_i64(&dones[&(base + 10)]), &oracle_i[..], "case {case}");
        assert_eq!(full_i64(&dones[&(base + 11)]), &oracle_i[..], "case {case}");

        let oracle_f: Vec<u64> = sequential_reduce(&pattern)
            .into_iter()
            .map(f64::to_bits)
            .collect();
        let via_gen: Vec<u64> = full_f64(&dones[&(base + 12)])
            .iter()
            .copied()
            .map(f64::to_bits)
            .collect();
        let via_handle: Vec<u64> = full_f64(&dones[&(base + 13)])
            .iter()
            .copied()
            .map(f64::to_bits)
            .collect();
        assert_eq!(via_gen, oracle_f, "inline f64 diverged (case {case})");
        assert_eq!(
            via_handle, oracle_f,
            "uploaded f64 must be bit-identical (case {case})"
        );

        // A same-handle sweep must behave like the same-spec sweep: all
        // members answer, each with its own scaled result.
        let sweep: Vec<SubmitArgs> = (0..4)
            .map(|k| SubmitArgs {
                token: base + 20 + k,
                reply: ReplyMode::Full,
                body: WireBody::Mul(k as i64 + 2),
                source: WireSource::Handle(handle),
            })
            .collect();
        client.submit_batch(sweep).expect("batch");
        let want: Vec<u64> = (0..4).map(|k| base + 20 + k).collect();
        let dones = collect_dones(client, &want);
        for k in 0..4u64 {
            let scaled: Vec<i64> = oracle_i
                .iter()
                .map(|v| v.wrapping_mul(k as i64 + 2))
                .collect();
            assert_eq!(
                full_i64(&dones[&(base + 20 + k)]),
                &scaled[..],
                "sweep member {k} of case {case}"
            );
        }
    }

    // An unknown handle fails the job, not the connection.
    let mut tokens_before = 9_000_000u64;
    for client in [&mut text, &mut bin] {
        tokens_before += 1;
        client
            .submit(SubmitArgs {
                token: tokens_before,
                reply: ReplyMode::Ack,
                body: WireBody::Sum,
                source: WireSource::Handle(0xDEAD_BEEF_0000),
            })
            .expect("submit");
        let d = client.next_done().expect("done");
        assert_eq!(d.token, tokens_before);
        assert!(
            matches!(d.outcome, DoneOutcome::Err { ref kind, .. } if kind == "rejected"),
            "unknown handle must reject: {:?}",
            d.outcome
        );
        // Connection still alive.
        let _ = client.stats().expect("stats after rejected handle");
    }

    server.shutdown();
}
