//! Soak tests of the epoll data plane's two core promises:
//!
//! * **Idle costs nothing.**  A reactor with nothing to do blocks in
//!   `epoll_wait` with no timeout; hundreds of idle connections must not
//!   produce wakeups.  The per-reactor idle-wakeup counter is the
//!   regression guard that replaced the old sleep-poll loop — a
//!   level-triggered bug (dead fd left registered, waker never drained,
//!   EPOLLOUT left armed) shows up here as a wakeup storm.
//! * **A stuck reader cannot wedge the service.**  Responses to a
//!   client that stops reading pile into its outbound buffer, the
//!   write-stall budget expires, and the connection is disconnected and
//!   reaped — while every other connection keeps being served.

use smartapps_runtime::Runtime;
use smartapps_server::{
    Client, DoneOutcome, ReplyMode, Server, ServerConfig, SubmitArgs, WireBody, WireDist,
    WireSource, WireSpec,
};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn small_spec(seed: u64) -> WireSpec {
    WireSpec {
        elements: 96,
        iterations: 120,
        refs_per_iter: 2,
        coverage: 0.9,
        dist: WireDist::Uniform,
        seed,
    }
}

#[test]
fn idle_connections_produce_no_wakeups_while_active_ones_are_served() {
    const IDLE_CONNS: usize = 256;
    const ACTIVE_CLIENTS: u64 = 8;
    const JOBS_PER_CLIENT: u64 = 48;

    let rt = Arc::new(Runtime::with_workers(3));
    let server = Server::start(
        rt,
        ServerConfig {
            reactors: 2,
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let addr = server.local_addr();

    // A crowd of connected-but-silent clients.  Under epoll they are
    // pure registration-table entries; under the old sleep-poll loop
    // every one of them was scanned every millisecond.
    let idle: Vec<TcpStream> = (0..IDLE_CONNS)
        .map(|_| TcpStream::connect(addr).expect("idle connect"))
        .collect();
    // Let the acceptor hand them all over before sampling counters.
    let handover = Instant::now();
    while server.connections() < IDLE_CONNS && handover.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        server.connections(),
        IDLE_CONNS,
        "acceptor lost connections"
    );

    // Eight pipelining clients hammer the service through the crowd.
    let threads: Vec<_> = (0..ACTIVE_CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                if c % 2 == 0 {
                    client.upgrade_binary().expect("upgrade");
                }
                for burst in 0..(JOBS_PER_CLIENT / 12) {
                    let jobs: Vec<SubmitArgs> = (0..12)
                        .map(|j| SubmitArgs {
                            token: c * 10_000 + burst * 100 + j,
                            reply: ReplyMode::Ack,
                            body: WireBody::Sum,
                            source: WireSource::Gen(small_spec(c * 31 + j)),
                        })
                        .collect();
                    client.submit_batch(jobs).expect("batch");
                }
                let drained = client.drain().expect("drain");
                assert_eq!(drained, JOBS_PER_CLIENT, "client {c} lost jobs");
                for _ in 0..JOBS_PER_CLIENT {
                    let d = client.next_done().expect("done");
                    assert!(
                        matches!(d.outcome, DoneOutcome::Ok { .. }),
                        "client {c}: {:?}",
                        d.outcome
                    );
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("active client");
    }

    // Quiesce, then measure a pure-idle window: 256 open sockets, no
    // traffic, no completions.  Blocked reactors must stay blocked.
    std::thread::sleep(Duration::from_millis(150));
    let wakeups_before = server.reactor_wakeups();
    let idle_before = server.reactor_idle_wakeups();
    std::thread::sleep(Duration::from_millis(500));
    let wakeup_delta = server.reactor_wakeups() - wakeups_before;
    let idle_delta = server.reactor_idle_wakeups() - idle_before;
    assert!(
        wakeup_delta <= 4,
        "reactors woke {wakeup_delta} times during an idle half-second \
         (sleep-poll regression or wakeup storm)"
    );
    assert!(
        idle_delta <= 4,
        "{idle_delta} idle wakeups during an idle half-second"
    );

    // The whole run — accept storm, 384 jobs, drain barriers — should
    // produce almost no *fruitless* wakeups either; anything near a
    // busy-loop would be tens of thousands.
    let idle_total = server.reactor_idle_wakeups();
    assert!(
        idle_total <= 64,
        "{idle_total} idle wakeups across the soak (near-zero expected)"
    );

    drop(idle);
    server.shutdown();
}

#[test]
fn stuck_reader_is_disconnected_by_the_stall_budget() {
    let rt = Arc::new(Runtime::with_workers(3));
    let server = Server::start(
        rt,
        ServerConfig {
            reactors: 2,
            // Tight budget so the test is quick; the default is 5s.
            write_stall_budget: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let addr = server.local_addr();

    // A client that requests megabytes of Full payloads and never reads
    // a byte: the socket fills, responses pile into the outbound
    // buffer, and the stall clock starts.
    let mut stuck = TcpStream::connect(addr).expect("connect");
    stuck.set_nodelay(true).expect("nodelay");
    // ~half a megabyte of text per response, ~14 MB across the flood —
    // far past anything the kernel's socket buffers could absorb for an
    // unread connection, so the outbound buffer must stall.
    let wide = WireSpec {
        elements: 60_000,
        iterations: 32,
        refs_per_iter: 2,
        coverage: 1.0,
        dist: WireDist::Uniform,
        seed: 7,
    };
    let mut script = String::new();
    for t in 0..30u64 {
        let mut line = smartapps_server::Request::Submit(SubmitArgs {
            token: t,
            reply: ReplyMode::Full,
            body: WireBody::Sum,
            source: WireSource::Gen(wide),
        })
        .encode();
        line.push('\n');
        script.push_str(&line);
    }
    stuck.write_all(script.as_bytes()).expect("submit flood");
    stuck.flush().expect("flush");

    // The server must disconnect and reap it within the budget (plus
    // compute and reactor-tick slack) — not wedge a reactor in a write.
    let t0 = Instant::now();
    while server.connections() > 0 && t0.elapsed() < Duration::from_secs(20) {
        std::thread::sleep(Duration::from_millis(25));
    }
    assert_eq!(
        server.connections(),
        0,
        "stuck reader still connected after {:?}",
        t0.elapsed()
    );

    // And the service is unharmed: a healthy client gets served.
    let mut probe = Client::connect(addr).expect("connect");
    probe
        .submit(SubmitArgs {
            token: 1,
            reply: ReplyMode::Ack,
            body: WireBody::Sum,
            source: WireSource::Gen(small_spec(3)),
        })
        .expect("submit");
    let d = probe.next_done().expect("done");
    assert!(matches!(d.outcome, DoneOutcome::Ok { .. }));

    drop(stuck);
    server.shutdown();
}
