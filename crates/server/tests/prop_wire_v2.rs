//! Property tests of the binary wire v2 codec (`smartapps_server::wire2`).
//!
//! Two families:
//!
//! * **Round trips** — arbitrary requests and responses survive
//!   encode → frame-split → decode exactly.  Payload floats are compared
//!   via re-encoded bytes, so every bit pattern (including NaNs, which
//!   `PartialEq` would reject) must survive — the binary protocol's
//!   reason to exist is exact i64/f64 transport.
//! * **Decoder robustness** — arbitrary byte soup, truncations of valid
//!   frames at every boundary, and lying length headers must produce
//!   `Err` (failing only the one connection), never a panic and never a
//!   runaway allocation.

use proptest::prelude::*;
use smartapps_server::wire2::{
    decode_request, decode_response, encode_request, encode_response, FrameBuf, FrameStep,
};
use smartapps_server::{
    DoneMsg, DoneOutcome, ExplainInfo, ExplainTarget, HistSummary, Payload, ReplyMode, Request,
    Response, SlowlogEntry, StatsV2, SubmitArgs, UploadArgs, WireBody, WireCandidate, WireDist,
    WireGate, WireSource, WireSpec,
};

fn arb_f64_bits() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

fn arb_dist() -> impl Strategy<Value = WireDist> {
    prop_oneof![
        Just(WireDist::Uniform),
        arb_f64_bits().prop_map(WireDist::Zipf),
        any::<u32>().prop_map(WireDist::Clustered),
    ]
}

fn arb_spec() -> impl Strategy<Value = WireSpec> {
    (
        (any::<usize>(), any::<usize>(), any::<usize>()),
        arb_f64_bits(),
        arb_dist(),
        any::<u64>(),
    )
        .prop_map(
            |((elements, iterations, refs_per_iter), coverage, dist, seed)| WireSpec {
                elements,
                iterations,
                refs_per_iter,
                coverage,
                dist,
                seed,
            },
        )
}

fn arb_body() -> impl Strategy<Value = WireBody> {
    prop_oneof![
        Just(WireBody::Sum),
        any::<u64>().prop_map(|k| WireBody::Mul(k as i64)),
        Just(WireBody::FSum),
        Just(WireBody::Panic),
    ]
}

fn arb_source() -> impl Strategy<Value = WireSource> {
    prop_oneof![
        arb_spec().prop_map(WireSource::Gen),
        any::<u64>().prop_map(WireSource::Handle),
    ]
}

fn arb_submit() -> impl Strategy<Value = SubmitArgs> {
    (
        any::<u64>(),
        prop_oneof![Just(ReplyMode::Ack), Just(ReplyMode::Full)],
        arb_body(),
        arb_source(),
    )
        .prop_map(|(token, reply, body, source)| SubmitArgs {
            token,
            reply,
            body,
            source,
        })
}

fn arb_upload() -> impl Strategy<Value = UploadArgs> {
    (
        any::<u64>(),
        0usize..10_000,
        proptest::collection::vec(any::<u32>(), 0..20),
        proptest::collection::vec(any::<u32>(), 0..40),
    )
        .prop_map(|(token, num_elements, iter_ptr, indices)| UploadArgs {
            token,
            num_elements,
            iter_ptr,
            indices,
        })
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        arb_submit().prop_map(Request::Submit),
        proptest::collection::vec(arb_submit(), 1..5).prop_map(Request::Batch),
        arb_upload().prop_map(Request::Upload),
        Just(Request::UpgradeBin),
        Just(Request::Stats),
        Just(Request::StatsV2),
        Just(Request::Metrics),
        Just(Request::Drain),
        any::<u64>().prop_map(Request::Unquarantine),
        any::<u64>().prop_map(|s| Request::Explain(ExplainTarget::Signature(s))),
        any::<u64>().prop_map(|h| Request::Explain(ExplainTarget::Handle(h))),
        any::<usize>().prop_map(Request::Slowlog),
    ]
}

/// Short strings over the label charset the registry emits.
fn arb_ident() -> impl Strategy<Value = String> {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789._-";
    proptest::collection::vec(0usize..CHARS.len(), 1..10)
        .prop_map(|ix| ix.into_iter().map(|i| CHARS[i] as char).collect())
}

fn arb_payload() -> impl Strategy<Value = Payload> {
    prop_oneof![
        (0usize..1_000_000, any::<u64>()).prop_map(|(len, sum)| Payload::Checksum {
            len,
            sum: sum as i64,
        }),
        proptest::collection::vec(any::<u64>(), 0..8)
            .prop_map(|v| Payload::Full(v.into_iter().map(|x| x as i64).collect())),
        (0usize..1_000_000, arb_f64_bits())
            .prop_map(|(len, sum)| Payload::ChecksumF64 { len, sum }),
        proptest::collection::vec(arb_f64_bits(), 0..8).prop_map(Payload::FullF64),
    ]
}

fn arb_done() -> impl Strategy<Value = DoneMsg> {
    let ok = (
        (arb_ident(), any::<u64>(), any::<bool>()),
        (any::<u32>(), any::<u32>()),
        arb_payload(),
    )
        .prop_map(
            |((scheme, elapsed_ns, profile_hit), (fused_with, batched_with), payload)| {
                DoneOutcome::Ok {
                    scheme,
                    elapsed_ns,
                    profile_hit,
                    // The frame carries these as u32 — the round trip is
                    // exact within that range.
                    fused_with: fused_with as usize,
                    batched_with: batched_with as usize,
                    payload,
                }
            },
        );
    let err = (arb_ident(), any::<u64>(), arb_ident()).prop_map(|(kind, signature, message)| {
        DoneOutcome::Err {
            kind,
            signature,
            message,
        }
    });
    (any::<u64>(), prop_oneof![ok, err]).prop_map(|(token, outcome)| DoneMsg { token, outcome })
}

fn arb_summary() -> impl Strategy<Value = HistSummary> {
    (
        (arb_ident(), arb_ident(), arb_ident()),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
    )
        .prop_map(
            |((name, label_key, label_value), (count, p50, p95, p99, max))| HistSummary {
                name,
                label_key,
                label_value,
                count,
                p50,
                p95,
                p99,
                max,
            },
        )
}

fn arb_gate() -> impl Strategy<Value = WireGate> {
    (any::<bool>(), arb_ident()).prop_map(|(fired, reason)| WireGate { fired, reason })
}

fn arb_explain_info() -> impl Strategy<Value = ExplainInfo> {
    (
        (any::<u64>(), arb_ident(), arb_ident(), arb_ident()),
        (any::<bool>(), any::<bool>(), any::<u64>()),
        (arb_gate(), arb_gate(), arb_gate()),
        proptest::collection::vec((arb_ident(), arb_f64_bits()), 0..6),
        proptest::collection::vec(
            (arb_ident(), arb_f64_bits(), arb_f64_bits(), any::<bool>()).prop_map(
                |(scheme, analytic, corrected, feasible)| WireCandidate {
                    scheme,
                    analytic,
                    corrected,
                    feasible,
                },
            ),
            0..6,
        ),
    )
        .prop_map(
            |(
                (signature, domain, winner, backend),
                (explored, rechecked, flips),
                (fusion, simplify, quarantine),
                features,
                candidates,
            )| ExplainInfo {
                signature,
                domain,
                winner,
                backend,
                explored,
                rechecked,
                flips,
                fusion,
                simplify,
                quarantine,
                features,
                candidates,
            },
        )
}

fn arb_slowlog_entry() -> impl Strategy<Value = SlowlogEntry> {
    (
        (any::<u64>(), any::<u64>()),
        (arb_ident(), arb_ident(), arb_ident(), arb_ident()),
        0u16..=u16::MAX,
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
    )
        .prop_map(
            |(
                (class, latency_ns),
                (scheme, backend, error, winner),
                fused,
                (queue_ns, decide_ns, simplify_ns, exec_ns, completion_ns),
            )| SlowlogEntry {
                class,
                latency_ns,
                scheme,
                backend,
                error,
                fused,
                queue_ns,
                decide_ns,
                simplify_ns,
                exec_ns,
                completion_ns,
                winner,
            },
        )
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        arb_done().prop_map(Response::Done),
        proptest::collection::vec((arb_ident(), any::<u64>()), 0..6).prop_map(Response::Stats),
        (
            proptest::collection::vec((arb_ident(), any::<u64>()), 0..5),
            proptest::collection::vec(arb_summary(), 0..4),
            proptest::collection::vec((any::<u64>(), any::<u64>()), 0..4),
        )
            .prop_map(|(counters, hists, quarantined)| {
                Response::StatsV2(StatsV2 {
                    counters,
                    hists,
                    quarantined,
                })
            }),
        any::<u64>().prop_map(Response::Drained),
        any::<bool>().prop_map(Response::Unquarantined),
        (any::<u64>(), any::<u64>())
            .prop_map(|(token, handle)| Response::Uploaded { token, handle }),
        Just(Response::Upgraded),
        Just(Response::Explained(None)),
        arb_explain_info().prop_map(|i| Response::Explained(Some(i))),
        proptest::collection::vec(arb_slowlog_entry(), 0..4).prop_map(Response::Slowlog),
        arb_ident().prop_map(Response::Error),
    ]
}

/// Split one encoded frame into `(kind, body)` via the same splitter the
/// server feeds sockets through.
fn split_frame(bytes: &[u8]) -> (u8, Vec<u8>) {
    let mut fb = FrameBuf::new();
    fb.extend(bytes);
    match fb.next_frame(u32::MAX).expect("well-formed frame") {
        FrameStep::Frame { kind, body } => (kind, body),
        FrameStep::NeedMore => panic!("encoder produced a partial frame"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → split → decode → re-encode is byte-identical for
    /// arbitrary requests (bit-exact f64 transport included).
    #[test]
    fn requests_round_trip_bit_exact(req in arb_request()) {
        let bytes = encode_request(&req);
        let (kind, body) = split_frame(&bytes);
        let decoded = decode_request(kind, &body);
        prop_assert!(decoded.is_ok(), "decode failed: {decoded:?}");
        prop_assert_eq!(
            encode_request(&decoded.unwrap()),
            bytes,
            "re-encoding diverged"
        );
    }

    /// Same for responses.
    #[test]
    fn responses_round_trip_bit_exact(resp in arb_response()) {
        let bytes = encode_response(&resp);
        let (kind, body) = split_frame(&bytes);
        let decoded = decode_response(kind, &body);
        prop_assert!(decoded.is_ok(), "decode failed: {decoded:?}");
        let smartapps_server::BinMsg::Response(r) = decoded.unwrap() else {
            return Err(proptest::TestCaseError::fail("response decoded as metrics"));
        };
        prop_assert_eq!(encode_response(&r), bytes, "re-encoding diverged");
    }

    /// Arbitrary byte soup through the frame splitter and both decoders:
    /// errors are fine (they fail one connection), panics and runaway
    /// allocations are not.
    #[test]
    fn byte_soup_never_panics(soup in proptest::collection::vec(any::<u64>(), 0..64)) {
        let bytes: Vec<u8> = soup.iter().flat_map(|w| w.to_le_bytes()).collect();
        let mut fb = FrameBuf::new();
        fb.extend(&bytes);
        // Bound max_frame the way a small server config would; a lying
        // header is a sticky error, not an allocation.
        for _ in 0..64 {
            match fb.next_frame(4096) {
                Ok(FrameStep::Frame { kind, body }) => {
                    let _ = decode_request(kind, &body);
                    let _ = decode_response(kind, &body);
                }
                Ok(FrameStep::NeedMore) => break,
                Err(_) => break,
            }
        }
    }

    /// Every strict prefix of a valid frame body fails to decode: the
    /// cursor hits EOF or the trailing-bytes check, never a panic and
    /// never a silently short value.
    #[test]
    fn truncated_requests_error_at_every_cut(req in arb_request()) {
        let bytes = encode_request(&req);
        let (kind, body) = split_frame(&bytes);
        for cut in 0..body.len() {
            prop_assert!(
                decode_request(kind, &body[..cut]).is_err(),
                "prefix of {cut}/{} bytes decoded",
                body.len()
            );
        }
    }

    /// A frame cut anywhere mid-stream leaves the splitter waiting for
    /// the rest (NeedMore), and appending the tail later completes the
    /// original frame — reassembly state survives arbitrary splits.
    #[test]
    fn split_frames_reassemble(req in arb_request(), cut_seed in any::<u64>()) {
        let bytes = encode_request(&req);
        let cut = (cut_seed as usize) % bytes.len();
        let mut fb = FrameBuf::new();
        fb.extend(&bytes[..cut]);
        // Every cut is strictly partial (encoded frames are never
        // empty), so the splitter must wait, not error.
        prop_assert!(matches!(
            fb.next_frame(u32::MAX),
            Ok(FrameStep::NeedMore)
        ));
        fb.extend(&bytes[cut..]);
        let Ok(FrameStep::Frame { kind, body }) = fb.next_frame(u32::MAX) else {
            return Err(proptest::TestCaseError::fail("reassembly failed"));
        };
        prop_assert_eq!(
            encode_request(&decode_request(kind, &body).unwrap()),
            bytes
        );
    }
}

/// Zero and oversized length headers are rejected before any body
/// allocation, and the error is sticky (the connection is done for).
#[test]
fn lying_length_headers_are_rejected() {
    let mut fb = FrameBuf::new();
    fb.extend(&0u32.to_le_bytes());
    assert!(fb.next_frame(1024).is_err(), "zero length must be rejected");
    assert!(fb.next_frame(1024).is_err(), "frame errors must be sticky");

    let mut fb = FrameBuf::new();
    fb.extend(&u32::MAX.to_le_bytes());
    fb.extend(&[0x01]);
    assert!(
        fb.next_frame(1024).is_err(),
        "length over max_frame must be rejected without buffering 4 GiB"
    );
}
