//! End-to-end tests of the network service: a real `TcpListener` on an
//! ephemeral loopback port, ≥ 8 concurrent wire-protocol clients mixing
//! valid, invalid, and panicking submissions, and the acceptance
//! invariants — **exactly one `done` per token** (none lost, none
//! duplicated, including quarantined and fused jobs), results equal to
//! the locally computed sequential oracle, and a clean drain on
//! shutdown — all with a server thread count independent of the client
//! count.

use smartapps_runtime::{Runtime, RuntimeConfig};
use smartapps_server::{
    checksum, Client, DoneMsg, DoneOutcome, Payload, ReplyMode, Server, ServerConfig, SubmitArgs,
    WireBody, WireDist, WireSource, WireSpec,
};
use smartapps_workloads::pattern::sequential_reduce_i64;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn small_spec(seed: u64) -> WireSpec {
    WireSpec {
        elements: 400,
        iterations: 700,
        refs_per_iter: 2,
        coverage: 0.85,
        dist: WireDist::Uniform,
        seed,
    }
}

fn oracle_for(spec: WireSpec) -> Vec<i64> {
    sequential_reduce_i64(&spec.to_pattern_spec().generate())
}

/// What one submission should come back as.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Expect {
    /// Clean `full` output equal to the oracle of class `c` scaled by `k`.
    Value { class: usize, scale: i64 },
    /// `rejected` before execution.
    Rejected,
    /// The always-panicking class: `panic` while the class still
    /// executes, `quarantined` once the streak crosses the threshold.
    PanicClass,
}

#[test]
fn eight_concurrent_clients_mixed_traffic_exactly_once() {
    const CLIENTS: usize = 8;
    const JOBS_PER_CLIENT: usize = 36;
    const QUARANTINE_AFTER: usize = 3;

    let rt = Arc::new(Runtime::new(RuntimeConfig {
        workers: 2,
        shards: 8,
        dispatchers: 2,
        quarantine_after: QUARANTINE_AFTER,
        quarantine_ttl: Duration::from_secs(3600),
        ..RuntimeConfig::default()
    }));
    let server = Server::start(rt.clone(), ServerConfig::default()).expect("start server");
    let addr = server.local_addr();

    // Three clean classes plus one dedicated poisoned class.  The poison
    // spec has a *different shape* (64x the elements), because signatures
    // bucket by characterization — two specs differing only in seed share
    // a signature, and the quarantine must only ever block the poisoned
    // class, never the clean ones riding the same bucket.  Its streak is
    // never reset (only panicking bodies are submitted on it), so the
    // quarantine must engage.
    let classes: Vec<WireSpec> = (0..3).map(|c| small_spec(500 + c)).collect();
    let oracles: Vec<Vec<i64>> = classes.iter().copied().map(oracle_for).collect();
    let poison = WireSpec {
        elements: 25_600,
        ..small_spec(990)
    };

    let totals = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let classes = &classes;
                let oracles = &oracles;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut expected: HashMap<u64, Expect> = HashMap::new();
                    let mut token = 0u64;
                    let mut submit =
                        |client: &mut Client, exp: Expect, expected: &mut HashMap<u64, Expect>| {
                            let t = token;
                            token += 1;
                            expected.insert(t, exp);
                            let args = match exp {
                                Expect::Value { class, scale } => SubmitArgs {
                                    token: t,
                                    reply: ReplyMode::Full,
                                    body: if scale == 1 {
                                        WireBody::Sum
                                    } else {
                                        WireBody::Mul(scale)
                                    },
                                    source: WireSource::Gen(classes[class]),
                                },
                                Expect::Rejected => SubmitArgs {
                                    token: t,
                                    reply: ReplyMode::Full,
                                    body: WireBody::Sum,
                                    // Over the 4M-reference admission cap.
                                    source: WireSource::Gen(WireSpec {
                                        iterations: 3_000_000,
                                        refs_per_iter: 2,
                                        ..small_spec(1)
                                    }),
                                },
                                Expect::PanicClass => SubmitArgs {
                                    token: t,
                                    reply: ReplyMode::Ack,
                                    body: WireBody::Panic,
                                    source: WireSource::Gen(poison),
                                },
                            };
                            client.submit(args).expect("submit");
                        };
                    for j in 0..JOBS_PER_CLIENT {
                        let exp = match j % 6 {
                            5 => Expect::PanicClass,
                            3 => Expect::Rejected,
                            _ => Expect::Value {
                                class: (c + j) % classes.len(),
                                scale: 1 + (j % 3) as i64,
                            },
                        };
                        submit(&mut client, exp, &mut expected);
                    }

                    // Flush barrier, then read everything back.
                    let completed = client.drain().expect("drain");
                    assert_eq!(completed as usize, JOBS_PER_CLIENT, "client {c}");
                    let mut seen: HashMap<u64, DoneMsg> = HashMap::new();
                    for _ in 0..JOBS_PER_CLIENT {
                        let d = client.next_done().expect("next_done");
                        assert!(
                            seen.insert(d.token, d.clone()).is_none(),
                            "client {c}: token {} delivered twice",
                            d.token
                        );
                    }
                    assert_eq!(seen.len(), expected.len(), "client {c}: exactly-once");

                    let (mut values, mut panics, mut quarantined) = (0usize, 0usize, 0usize);
                    for (t, exp) in &expected {
                        let d = &seen[t];
                        match (exp, &d.outcome) {
                            (
                                Expect::Value { class, scale },
                                DoneOutcome::Ok {
                                    payload: Payload::Full(got),
                                    ..
                                },
                            ) => {
                                let want: Vec<i64> = oracles[*class]
                                    .iter()
                                    .map(|v| v.wrapping_mul(*scale))
                                    .collect();
                                assert_eq!(got, &want, "client {c} token {t}");
                                values += 1;
                            }
                            (Expect::Rejected, DoneOutcome::Err { kind, .. }) => {
                                assert_eq!(kind, "rejected", "client {c} token {t}");
                            }
                            (Expect::PanicClass, DoneOutcome::Err { kind, .. }) => match &**kind {
                                "panic" => panics += 1,
                                "quarantined" => quarantined += 1,
                                other => panic!("client {c} token {t}: unexpected kind {other}"),
                            },
                            (exp, outcome) => {
                                panic!("client {c} token {t}: expected {exp:?}, got {outcome:?}")
                            }
                        }
                    }
                    (values, panics, quarantined)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold((0, 0, 0), |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2))
    });

    let (values, panics, quarantined) = totals;
    let poison_jobs = CLIENTS * JOBS_PER_CLIENT / 6;
    assert_eq!(panics + quarantined, poison_jobs, "poison-class accounting");
    assert!(
        panics >= QUARANTINE_AFTER,
        "the streak must really execute before the quarantine engages"
    );
    assert!(
        quarantined > 0,
        "with {poison_jobs} poison jobs over a max_batch-32 queue, later \
         batches must fail fast (got {panics} panics)"
    );
    assert!(values > 0);

    // Server-side counters agree: everything accepted was completed, and
    // the quarantined fast-fails are visible.
    let mut probe = Client::connect(addr).expect("probe");
    let stats = probe.stats().expect("stats");
    let get = |k: &str| stats.iter().find(|(n, _)| n == k).map_or(0, |(_, v)| *v);
    assert_eq!(get("submitted"), get("completed"));
    assert_eq!(get("quarantined"), quarantined as u64);

    // The quarantine lifts over the wire: unquarantine the poisoned
    // class (signature taken from a quarantined error), then a *clean*
    // body on the same spec must execute and match its oracle.
    let sig = {
        let mut c = Client::connect(addr).expect("connect");
        c.submit(SubmitArgs {
            token: 0,
            reply: ReplyMode::Ack,
            body: WireBody::Panic,
            source: WireSource::Gen(poison),
        })
        .expect("submit");
        match c.next_done().expect("next_done").outcome {
            DoneOutcome::Err {
                kind, signature, ..
            } => {
                assert_eq!(kind, "quarantined");
                signature
            }
            other => panic!("poisoned class must still be quarantined: {other:?}"),
        }
    };
    let mut c = Client::connect(addr).expect("connect");
    assert!(c.unquarantine(sig).expect("unquarantine"));
    c.submit(SubmitArgs {
        token: 1,
        reply: ReplyMode::Full,
        body: WireBody::Sum,
        source: WireSource::Gen(poison),
    })
    .expect("submit");
    match c.next_done().expect("next_done").outcome {
        DoneOutcome::Ok {
            payload: Payload::Full(got),
            ..
        } => assert_eq!(got, oracle_for(poison), "unquarantined class executes"),
        other => panic!("unquarantined class must run clean: {other:?}"),
    }

    server.shutdown();
}

#[test]
fn fused_sweep_over_the_wire_delivers_every_member_exactly_once() {
    // One dispatcher, deterministic fusing (the in-process recipe of the
    // runtime's fused tests, through the socket): occupy the dispatcher
    // with a big warm-up job, then land a batch of K same-spec sparse
    // jobs behind it — they coalesce into one dispatch batch and pass
    // the fusion gate as one hash sweep.
    let rt = Arc::new(Runtime::new(RuntimeConfig {
        workers: 2,
        dispatchers: 1,
        max_batch: 32,
        max_fuse: 8,
        ..RuntimeConfig::default()
    }));
    let server = Server::start(rt.clone(), ServerConfig::default()).expect("start server");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let warm = WireSpec {
        elements: 60_000,
        iterations: 1_200_000,
        refs_per_iter: 2,
        coverage: 1.0,
        dist: WireDist::Uniform,
        seed: 91,
    };
    let sparse = WireSpec {
        elements: 400_000,
        iterations: 4_000,
        refs_per_iter: 12,
        coverage: 0.004,
        dist: WireDist::Uniform,
        seed: 61,
    };
    client
        .submit(SubmitArgs {
            token: 100,
            reply: ReplyMode::Ack,
            body: WireBody::Sum,
            source: WireSource::Gen(warm),
        })
        .expect("warm submit");
    let jobs: Vec<SubmitArgs> = (0..6)
        .map(|k| SubmitArgs {
            token: k,
            reply: ReplyMode::Ack,
            body: WireBody::Mul(k as i64 + 1),
            source: WireSource::Gen(sparse),
        })
        .collect();
    client.submit_batch(jobs).expect("batch submit");

    let base = oracle_for(sparse);
    let mut seen: HashMap<u64, DoneMsg> = HashMap::new();
    for _ in 0..7 {
        let d = client.next_done().expect("next_done");
        assert!(seen.insert(d.token, d).is_none(), "duplicate done");
    }
    for k in 0..6u64 {
        let want: Vec<i64> = base.iter().map(|v| v.wrapping_mul(k as i64 + 1)).collect();
        match &seen[&k].outcome {
            DoneOutcome::Ok {
                scheme,
                fused_with,
                payload: Payload::Checksum { len, sum },
                ..
            } => {
                assert_eq!((*len, *sum), (want.len(), checksum(&want)), "member {k}");
                assert_eq!(*fused_with, 5, "all six must share one sweep");
                assert_eq!(scheme, "hash", "sparse fanout-6 group fuses on hash");
            }
            other => panic!("member {k}: {other:?}"),
        }
    }
    let stats = client.stats().expect("stats");
    let get = |k: &str| stats.iter().find(|(n, _)| n == k).map_or(0, |(_, v)| *v);
    assert_eq!(get("fused_sweeps"), 1);
    assert_eq!(get("fused_jobs"), 6);
    server.shutdown();
}

#[test]
fn server_drains_cleanly_on_shutdown_and_leaves_the_runtime_alive() {
    let rt = Arc::new(Runtime::new(RuntimeConfig {
        workers: 2,
        ..RuntimeConfig::default()
    }));
    let server = Server::start(rt.clone(), ServerConfig::default()).expect("start server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let spec = small_spec(770);
    let oracle = oracle_for(spec);
    for t in 0..20u64 {
        client
            .submit(SubmitArgs {
                token: t,
                reply: ReplyMode::Full,
                body: WireBody::Sum,
                source: WireSource::Gen(spec),
            })
            .expect("submit");
    }
    // The barrier proves all 20 were accepted; their `done` lines are
    // stashed client-side.
    assert_eq!(client.drain().expect("drain"), 20);
    server.shutdown();

    // Every response survived the shutdown; the socket then reports EOF
    // instead of hanging.
    let mut tokens = Vec::new();
    for _ in 0..20 {
        let d = client.next_done().expect("stashed done");
        match d.outcome {
            DoneOutcome::Ok {
                payload: Payload::Full(got),
                ..
            } => assert_eq!(got, oracle),
            other => panic!("{other:?}"),
        }
        tokens.push(d.token);
    }
    tokens.sort_unstable();
    assert_eq!(tokens, (0..20).collect::<Vec<u64>>());
    assert!(
        client.next_done().is_err(),
        "closed server must EOF, not hang"
    );

    // The runtime was shared, not owned: in-process traffic still works.
    let stats = rt.stats();
    assert_eq!(stats.submitted, 20);
    assert_eq!(stats.completed, 20);
    let pat = Arc::new(spec.to_pattern_spec().generate());
    let r = rt.run(smartapps_runtime::JobSpec::i64(pat, |_i, r| {
        smartapps_workloads::contribution_i64(r)
    }));
    assert!(r.error.is_none());
    assert_eq!(r.output.as_i64().unwrap(), oracle);
}

#[test]
fn shutdown_with_jobs_in_flight_still_answers_them() {
    // No drain barrier this time: the shutdown races the submissions.
    // Whatever the server accepted must still produce its `done` line
    // before the socket closes — never a lost response, never a hang.
    let rt = Arc::new(Runtime::new(RuntimeConfig {
        workers: 2,
        ..RuntimeConfig::default()
    }));
    let server = Server::start(rt.clone(), ServerConfig::default()).expect("start server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for t in 0..12u64 {
        client
            .submit(SubmitArgs {
                token: t,
                reply: ReplyMode::Ack,
                body: WireBody::Sum,
                source: WireSource::Gen(small_spec(771)),
            })
            .expect("submit");
    }
    std::thread::sleep(Duration::from_millis(30));
    server.shutdown();
    let mut seen = std::collections::HashSet::new();
    while let Ok(d) = client.next_done() {
        assert!(seen.insert(d.token), "duplicate token {}", d.token);
        assert!(matches!(d.outcome, DoneOutcome::Ok { .. }));
    }
    // The runtime finished everything the server submitted.
    let stats = rt.stats();
    assert_eq!(stats.submitted, stats.completed);
    assert_eq!(seen.len() as u64, stats.submitted);
}

/// Nearest-rank quantile recovered from exposition `_bucket` lines the
/// way `netload` does it: smallest `le` whose cumulative count covers
/// the rank.
fn quantile_from_exposition(text: &str, series_prefix: &str, q: f64) -> Option<u64> {
    let mut buckets: Vec<(f64, u64)> = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix(series_prefix) else {
            continue;
        };
        let (le, cum) = rest.split_once("\"} ")?;
        let le = le.strip_prefix("le=\"")?;
        let le = if le == "+Inf" {
            f64::INFINITY
        } else {
            le.parse().ok()?
        };
        buckets.push((le, cum.trim().parse().ok()?));
    }
    let total = buckets.last()?.1;
    if total == 0 {
        return None;
    }
    let rank = (q * (total - 1) as f64).round() as u64 + 1;
    buckets.iter().find(|(_, cum)| *cum >= rank).map(|(le, _)| {
        if le.is_finite() {
            *le as u64
        } else {
            u64::MAX
        }
    })
}

#[test]
fn metrics_and_stats_v2_reflect_multi_client_traffic() {
    const CLIENTS: u64 = 3;
    const JOBS: u64 = 8;

    let rt = Arc::new(Runtime::new(RuntimeConfig {
        workers: 2,
        dispatchers: 2,
        quarantine_after: 2,
        quarantine_ttl: Duration::from_secs(3600),
        ..RuntimeConfig::default()
    }));
    let server = Server::start(rt.clone(), ServerConfig::default()).expect("start server");
    let addr = server.local_addr();

    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for t in 0..JOBS {
                    client
                        .submit(SubmitArgs {
                            token: t,
                            reply: ReplyMode::Ack,
                            body: WireBody::Sum,
                            source: WireSource::Gen(small_spec(600 + c)),
                        })
                        .expect("submit");
                }
                assert_eq!(client.drain().expect("drain"), JOBS);
            });
        }
    });

    // Poison one class past the quarantine threshold so `stats v2` has a
    // TTL entry to report.
    let mut probe = Client::connect(addr).expect("probe");
    let poison = WireSpec {
        elements: 25_600,
        ..small_spec(991)
    };
    for t in 0..4u64 {
        probe
            .submit(SubmitArgs {
                token: t,
                reply: ReplyMode::Ack,
                body: WireBody::Panic,
                source: WireSource::Gen(poison),
            })
            .expect("submit");
    }
    probe.drain().expect("drain");
    let delivered = CLIENTS * JOBS + 4;

    // Plain `stats` keys are now deterministic (sorted).
    let v1 = probe.stats().expect("stats");
    assert!(v1.windows(2).all(|w| w[0].0 < w[1].0), "stats keys sorted");

    // `stats v2`: the same counters, histogram digests that reflect the
    // traffic, and the quarantined class with its remaining TTL.
    let v2 = probe.stats_v2().expect("stats v2");
    assert_eq!(v2.counters, v1);
    let exec_total: u64 = v2
        .hists
        .iter()
        .filter(|h| h.name == "smartapps_exec_ns")
        .map(|h| h.count)
        .sum();
    assert!(
        exec_total > 0,
        "per-scheme exec histograms must be populated"
    );
    let all = v2
        .hists
        .iter()
        .find(|h| h.name == "smartapps_request_ns" && h.label_value == "all")
        .expect("aggregate request-latency series");
    assert_eq!(all.count, delivered, "one latency sample per delivered job");
    assert!(all.p50 > 0 && all.p99 >= all.p50 && all.max >= all.p99);
    let per_conn: u64 = v2
        .hists
        .iter()
        .filter(|h| h.name == "smartapps_request_ns" && h.label_value != "all")
        .map(|h| h.count)
        .sum();
    assert_eq!(
        per_conn, delivered,
        "per-connection series partition the total"
    );
    assert_eq!(v2.quarantined.len(), 1, "poisoned class listed");
    let (_sig, ttl) = v2.quarantined[0];
    assert!(ttl > 3000 && ttl <= 3600, "remaining TTL in seconds: {ttl}");

    // The `metrics` exposition covers runtime and server series, and a
    // scraper can recover server-side latency quantiles from it.
    let text = probe.metrics().expect("metrics");
    assert!(
        text.contains("# TYPE smartapps_exec_ns histogram"),
        "{text}"
    );
    assert!(text.contains("smartapps_exec_ns_bucket{scheme="), "{text}");
    assert!(
        text.contains(&format!(
            "smartapps_request_ns_count{{conn=\"all\"}} {delivered}"
        )),
        "{text}"
    );
    let p99 = quantile_from_exposition(
        text.as_str(),
        "smartapps_request_ns_bucket{conn=\"all\",",
        0.99,
    )
    .expect("p99 from bucket lines");
    assert!(p99 > 0);
    for (name, lo) in [
        ("smartapps_conn_bytes_in", 1u64),
        ("smartapps_conn_bytes_out", 1),
    ] {
        let sum: u64 = text
            .lines()
            .filter(|l| l.starts_with(&format!("{name}{{conn=")))
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert!(sum >= lo, "{name} must count traffic, got {sum}");
    }
    server.shutdown();
}

#[test]
fn protocol_errors_fail_the_connection_not_the_server() {
    use std::io::{BufRead, BufReader, Write};

    let rt = Arc::new(Runtime::with_workers(2));
    let server = Server::start(rt, ServerConfig::default()).expect("start server");

    // A raw socket speaking garbage gets an `err` line and a close.
    let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    raw.write_all(b"warp drive please\n").expect("write");
    let mut reader = BufReader::new(raw.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    assert!(line.starts_with("err "), "got: {line}");
    line.clear();
    let n = reader.read_line(&mut line).expect("read-after-error");
    assert_eq!(n, 0, "connection must be closed after a protocol error");

    // The server (and other connections) are unaffected.
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client
        .submit(SubmitArgs {
            token: 7,
            reply: ReplyMode::Ack,
            body: WireBody::Sum,
            source: WireSource::Gen(small_spec(772)),
        })
        .expect("submit");
    let d = client.next_done().expect("next_done");
    assert_eq!(d.token, 7);
    assert!(matches!(d.outcome, DoneOutcome::Ok { .. }));
    server.shutdown();
}
