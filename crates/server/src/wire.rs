//! The wire protocol: line-oriented request/response grammar spoken
//! between [`Client`](crate::Client) and [`Server`](crate::Server).
//!
//! Every message is one UTF-8 line (`\n`-terminated, space-separated
//! fields) — human-readable, `nc`-debuggable, and stateless per line
//! (a `batch` request carries its jobs inline rather than spanning
//! lines).  The one exception is the reply to a [`Request::Metrics`]:
//! Prometheus text exposition is inherently multi-line, so it travels
//! as a length-prefixed frame (`metrics <len>\n` + `len` raw bytes)
//! outside the [`Response`] enum.  The full grammar is specified in
//! `docs/SERVER.md` and `docs/OBSERVABILITY.md`.
//!
//! Job *bodies* cannot cross a network boundary as closures, so the
//! protocol describes jobs declaratively: a [`WireSource`] either names
//! a deterministic generated access pattern (a [`WireSpec`] — the same
//! `PatternSpec` parameters the workloads crate uses) or references a
//! CSR structure the client previously uploaded (`upload` →
//! [`Response::Uploaded`] handle), and a [`WireBody`] names one of the
//! server's built-in contribution functions.  Two clients sending the
//! same spec — or uploading the same CSR content — share one
//! server-side pattern allocation, which is what lets their jobs
//! coalesce — and fuse — exactly like in-process submissions.
//!
//! This module is the *text* protocol.  A connection can negotiate the
//! length-prefixed **binary wire v2** (`upgrade bin` →
//! [`Response::Upgraded`], then both directions switch to framed
//! encoding) — same request/response types, binary codec in
//! [`wire2`](crate::wire2).
//!
//! The types carry `serde` derives for source-compatibility with the
//! real crates; in this offline build the vendored stand-in expands
//! them to nothing, so encoding/decoding is explicit (`encode`/`parse`
//! pairs, round-trip tested below) just like the runtime's
//! `ProfileStore` text format.

use serde::{Deserialize, Serialize};
use smartapps_telemetry::HistSummary;
use smartapps_workloads::{Distribution, PatternSpec};

/// Generated-pattern description a job reduces over (the wire form of
/// `PatternSpec`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WireSpec {
    /// Reduction array dimension.
    pub elements: usize,
    /// Loop iteration count.
    pub iterations: usize,
    /// Reduction references per iteration.
    pub refs_per_iter: usize,
    /// Fraction of elements eligible to be referenced, in `(0, 1]`.
    pub coverage: f64,
    /// Contention shape.
    pub dist: WireDist,
    /// RNG seed (patterns are deterministic given the spec).
    pub seed: u64,
}

impl WireSpec {
    /// The corresponding generator spec.
    pub fn to_pattern_spec(self) -> PatternSpec {
        PatternSpec {
            num_elements: self.elements,
            iterations: self.iterations,
            refs_per_iter: self.refs_per_iter,
            coverage: self.coverage,
            dist: match self.dist {
                WireDist::Uniform => Distribution::Uniform,
                WireDist::Zipf(s) => Distribution::Zipf { s },
                WireDist::Clustered(window) => Distribution::Clustered { window },
            },
            seed: self.seed,
        }
    }

    /// Total reduction references the pattern will carry (admission-cap
    /// input; must not overflow into a bogus small number).
    pub fn total_refs(&self) -> usize {
        self.iterations.saturating_mul(self.refs_per_iter)
    }

    /// Validate ranges the generator would otherwise `assert!` on — the
    /// server must reject these at parse time, not panic on a reactor.
    pub fn validate(&self) -> Result<(), String> {
        if self.elements == 0 {
            return Err("elements must be >= 1".into());
        }
        if self.iterations == 0 {
            return Err("iterations must be >= 1".into());
        }
        if self.refs_per_iter == 0 {
            return Err("refs_per_iter must be >= 1".into());
        }
        if !(self.coverage > 0.0 && self.coverage <= 1.0) {
            return Err(format!("coverage must be in (0,1], got {}", self.coverage));
        }
        if let WireDist::Zipf(s) = self.dist {
            if !s.is_finite() || s < 0.0 {
                return Err(format!("zipf exponent must be finite and >= 0, got {s}"));
            }
        }
        Ok(())
    }
}

/// Wire form of the pattern generator's contention shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WireDist {
    /// Uniform over the active set.
    Uniform,
    /// Zipf-skewed with the given exponent.
    Zipf(f64),
    /// Spatially clustered with the given window radius.
    Clustered(u32),
}

impl WireDist {
    fn encode(self) -> String {
        match self {
            WireDist::Uniform => "uniform".into(),
            WireDist::Zipf(s) => format!("zipf:{s}"),
            WireDist::Clustered(w) => format!("clustered:{w}"),
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        if s == "uniform" {
            return Ok(WireDist::Uniform);
        }
        if let Some(rest) = s.strip_prefix("zipf:") {
            let v: f64 = rest
                .parse()
                .map_err(|_| format!("bad zipf exponent {rest}"))?;
            return Ok(WireDist::Zipf(v));
        }
        if let Some(rest) = s.strip_prefix("clustered:") {
            let v: u32 = rest
                .parse()
                .map_err(|_| format!("bad clustered window {rest}"))?;
            return Ok(WireDist::Clustered(v));
        }
        Err(format!("unknown distribution {s}"))
    }
}

/// Which built-in contribution function the job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireBody {
    /// The workloads crate's standard `contribution_i64`.
    Sum,
    /// `contribution_i64` scaled by a constant (distinct outputs for
    /// fused-sweep members without distinct code).
    Mul(i64),
    /// The workloads crate's f64 `contribution` — the floating-point
    /// body; its `done` payload uses the f64 payload shapes
    /// ([`Payload::ChecksumF64`] / [`Payload::FullF64`]).
    FSum,
    /// A body that panics on its first invocation — the failure-channel
    /// test hook (drives `Panic` errors and, in streaks, quarantine).
    Panic,
    /// Iteration-uniform i64 body (`contribution_i64` of the *iteration*,
    /// same value in every slot of a row) — submitted with the
    /// uniform-body declaration set, so scan/window-shaped patterns are
    /// eligible for the runtime's simplification pass.
    Usum,
    /// Iteration-uniform f64 body (`contribution` of the iteration);
    /// the f64 counterpart of [`WireBody::Usum`], also declared uniform.
    Fusum,
}

impl WireBody {
    /// Whether the body produces f64 outputs (selects the f64 payload
    /// shapes on the `done` response).
    pub fn is_f64(self) -> bool {
        matches!(self, WireBody::FSum | WireBody::Fusum)
    }

    /// Whether the body is iteration-uniform (submitted with the
    /// [`JobSpec::with_uniform_body`](smartapps_runtime::JobSpec)
    /// declaration, making it simplification-eligible).
    pub fn is_uniform(self) -> bool {
        matches!(self, WireBody::Usum | WireBody::Fusum)
    }

    fn encode(self) -> String {
        match self {
            WireBody::Sum => "sum".into(),
            WireBody::Mul(k) => format!("mul:{k}"),
            WireBody::FSum => "fsum".into(),
            WireBody::Panic => "panic".into(),
            WireBody::Usum => "usum".into(),
            WireBody::Fusum => "fusum".into(),
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "sum" => Ok(WireBody::Sum),
            "fsum" => Ok(WireBody::FSum),
            "panic" => Ok(WireBody::Panic),
            "usum" => Ok(WireBody::Usum),
            "fusum" => Ok(WireBody::Fusum),
            _ => match s.strip_prefix("mul:") {
                Some(rest) => rest
                    .parse()
                    .map(WireBody::Mul)
                    .map_err(|_| format!("bad mul factor {rest}")),
                None => Err(format!("unknown body {s}")),
            },
        }
    }
}

/// Where a submitted job's access pattern comes from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WireSource {
    /// Described inline as a generator spec (the original protocol
    /// shape): the server expands and caches the synthetic pattern.
    Gen(WireSpec),
    /// References a CSR structure previously interned via `upload`, by
    /// the handle the [`Response::Uploaded`] reply carried.  Handles are
    /// server-scoped (any connection may use any issued handle — that is
    /// what lets same-structure jobs from different clients fuse).
    Handle(u64),
}

/// How much of the result the `done` response carries back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplyMode {
    /// Length + wrapping-sum checksum only (the loadgen mode: verifiable
    /// without shipping the array).
    Ack,
    /// Every output value (the oracle-comparison mode).
    Full,
}

impl ReplyMode {
    fn encode(self) -> &'static str {
        match self {
            ReplyMode::Ack => "ack",
            ReplyMode::Full => "full",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "ack" => Ok(ReplyMode::Ack),
            "full" => Ok(ReplyMode::Full),
            _ => Err(format!("unknown reply mode {s}")),
        }
    }
}

/// One job submission: the client-chosen token echoed on the `done`
/// response, the reply mode, the body, and the pattern source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubmitArgs {
    /// Client-chosen correlation tag; the server treats it as opaque and
    /// echoes it exactly once per submission.
    pub token: u64,
    /// How much of the result to send back.
    pub reply: ReplyMode,
    /// Which built-in contribution function runs.
    pub body: WireBody,
    /// The access pattern to reduce over: an inline generator spec
    /// (9 text fields) or an uploaded-pattern handle (`pat:<hex>`,
    /// 4 text fields).
    pub source: WireSource,
}

impl SubmitArgs {
    fn encode_fields(&self) -> String {
        let head = format!(
            "{} {} {}",
            self.token,
            self.reply.encode(),
            self.body.encode()
        );
        match self.source {
            WireSource::Gen(spec) => format!(
                "{head} {} {} {} {} {} {}",
                spec.elements,
                spec.iterations,
                spec.refs_per_iter,
                spec.coverage,
                spec.dist.encode(),
                spec.seed
            ),
            WireSource::Handle(h) => format!("{head} pat:{h:016x}"),
        }
    }

    /// Parse one submission from the front of a token-first field slice;
    /// returns the args and how many fields were consumed (4 for the
    /// `pat:<hex>` handle form, 9 for an inline spec) so a `batch` line
    /// can mix both forms.
    fn parse_seq(f: &[&str]) -> Result<(SubmitArgs, usize), String> {
        if f.len() < 4 {
            return Err(format!("submit takes at least 4 fields, got {}", f.len()));
        }
        let token = f[0].parse().map_err(|_| format!("bad token {}", f[0]))?;
        let reply = ReplyMode::parse(f[1])?;
        let body = WireBody::parse(f[2])?;
        if let Some(hex) = f[3].strip_prefix("pat:") {
            let handle =
                u64::from_str_radix(hex, 16).map_err(|_| format!("bad pattern handle {}", f[3]))?;
            return Ok((
                SubmitArgs {
                    token,
                    reply,
                    body,
                    source: WireSource::Handle(handle),
                },
                4,
            ));
        }
        if f.len() < 9 {
            return Err(format!(
                "submit takes 9 fields (or 4 with pat:<hex>), got {}",
                f.len()
            ));
        }
        let spec = WireSpec {
            elements: f[3].parse().map_err(|_| format!("bad elements {}", f[3]))?,
            iterations: f[4]
                .parse()
                .map_err(|_| format!("bad iterations {}", f[4]))?,
            refs_per_iter: f[5].parse().map_err(|_| format!("bad refs {}", f[5]))?,
            coverage: f[6].parse().map_err(|_| format!("bad coverage {}", f[6]))?,
            dist: WireDist::parse(f[7])?,
            seed: f[8].parse().map_err(|_| format!("bad seed {}", f[8]))?,
        };
        if !spec.coverage.is_finite() {
            return Err("coverage must be finite".into());
        }
        Ok((
            SubmitArgs {
                token,
                reply,
                body,
                source: WireSource::Gen(spec),
            },
            9,
        ))
    }

    /// Parse exactly one submission covering the whole field slice.
    fn parse_fields(f: &[&str]) -> Result<SubmitArgs, String> {
        let (args, used) = SubmitArgs::parse_seq(f)?;
        if used != f.len() {
            return Err(format!("submit has {} trailing fields", f.len() - used));
        }
        Ok(args)
    }
}

/// One CSR structure upload: the raw row-pointer and index arrays of an
/// [`AccessPattern`](smartapps_workloads::AccessPattern).  The server
/// validates and interns the structure and replies
/// [`Response::Uploaded`] with the handle; invalid or over-capacity
/// uploads fail with a `done <token> err rejected ...` message (the
/// connection survives).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UploadArgs {
    /// Client-chosen correlation tag, echoed on the reply.
    pub token: u64,
    /// Reduction array dimension (what `indices` values index into).
    pub num_elements: usize,
    /// CSR row pointers: `iter_ptr[i]..iter_ptr[i+1]` spans iteration
    /// `i`'s slice of `indices`.
    pub iter_ptr: Vec<u32>,
    /// Concatenated per-iteration element indices.
    pub indices: Vec<u32>,
}

impl UploadArgs {
    fn encode_fields(&self) -> String {
        let mut s = format!(
            "{} {} {} {}",
            self.token,
            self.num_elements,
            self.iter_ptr.len(),
            self.indices.len()
        );
        for v in &self.iter_ptr {
            s.push(' ');
            s.push_str(&v.to_string());
        }
        for v in &self.indices {
            s.push(' ');
            s.push_str(&v.to_string());
        }
        s
    }

    fn parse_fields(f: &[&str]) -> Result<UploadArgs, String> {
        if f.len() < 4 {
            return Err(format!("upload takes at least 4 fields, got {}", f.len()));
        }
        let token = f[0].parse().map_err(|_| format!("bad token {}", f[0]))?;
        let num_elements = f[1].parse().map_err(|_| format!("bad elements {}", f[1]))?;
        let np: usize = f[2]
            .parse()
            .map_err(|_| format!("bad iter_ptr length {}", f[2]))?;
        let ni: usize = f[3]
            .parse()
            .map_err(|_| format!("bad indices length {}", f[3]))?;
        let need = 4usize
            .checked_add(np)
            .and_then(|n| n.checked_add(ni))
            .ok_or("upload lengths overflow")?;
        if f.len() != need {
            return Err(format!("upload declares {need} fields, got {}", f.len()));
        }
        let num = |s: &&str| -> Result<u32, String> {
            s.parse().map_err(|_| format!("bad csr value {s}"))
        };
        let iter_ptr = f[4..4 + np].iter().map(num).collect::<Result<_, _>>()?;
        let indices = f[4 + np..].iter().map(num).collect::<Result<_, _>>()?;
        Ok(UploadArgs {
            token,
            num_elements,
            iter_ptr,
            indices,
        })
    }
}

/// A client→server request (one line each).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit one job.
    Submit(SubmitArgs),
    /// Submit several jobs in one request; same-class members coalesce
    /// (and same-spec members can fuse) exactly like an in-process
    /// `submit_batch`.
    Batch(Vec<SubmitArgs>),
    /// Snapshot the runtime's service counters.
    Stats,
    /// Snapshot counters *plus* latency-histogram digests and the
    /// quarantined classes with their remaining TTLs (the richer
    /// observability surface; `stats` stays for old clients).
    StatsV2,
    /// Fetch the full Prometheus-style text exposition.  The reply is
    /// the protocol's one framed (multi-line) response:
    /// `metrics <len>\n` followed by exactly `len` raw bytes — see
    /// `docs/OBSERVABILITY.md`.
    Metrics,
    /// Reply `drained` once every job submitted on this connection has
    /// completed (a per-connection flush barrier).
    Drain,
    /// Lift the poisoned-class quarantine of a signature (hex, as
    /// reported by `done ... err quarantined` messages' class field —
    /// see `docs/SERVER.md`).
    Unquarantine(u64),
    /// Intern a CSR structure server-side; the reply
    /// ([`Response::Uploaded`]) carries the handle later submissions
    /// reference via [`WireSource::Handle`].
    Upload(UploadArgs),
    /// Fetch the latest decision record of a workload class: why the
    /// runtime runs that class the way it does (candidate cost table,
    /// feasibility masks, gate verdicts).  The reply is
    /// [`Response::Explained`] — `explained none` when no ranking has
    /// run for the class.
    Explain(ExplainTarget),
    /// Fetch the `n` slowest retained jobs with their per-stage latency
    /// attribution ([`Response::Slowlog`]).
    Slowlog(usize),
    /// Switch this connection to the length-prefixed binary wire v2
    /// (`docs/SERVER.md`).  Legal only while the connection has no jobs
    /// in flight — the server must not interleave a text `done` with the
    /// framed `upgraded` reply.  After the [`Response::Upgraded`]
    /// acknowledgment (still a text line), both directions speak frames.
    UpgradeBin,
}

impl Request {
    /// Render the request as its wire line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Request::Submit(a) => format!("submit {}", a.encode_fields()),
            Request::Batch(jobs) => {
                let mut s = format!("batch {}", jobs.len());
                for j in jobs {
                    s.push(' ');
                    s.push_str(&j.encode_fields());
                }
                s
            }
            Request::Stats => "stats".into(),
            Request::StatsV2 => "stats v2".into(),
            Request::Metrics => "metrics".into(),
            Request::Drain => "drain".into(),
            Request::Unquarantine(sig) => format!("unquarantine {sig:016x}"),
            Request::Upload(a) => format!("upload {}", a.encode_fields()),
            Request::Explain(ExplainTarget::Signature(sig)) => format!("explain {sig:016x}"),
            Request::Explain(ExplainTarget::Handle(h)) => format!("explain pat:{h:016x}"),
            Request::Slowlog(n) => format!("slowlog {n}"),
            Request::UpgradeBin => "upgrade bin".into(),
        }
    }

    /// Parse one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let f: Vec<&str> = line.split_ascii_whitespace().collect();
        match f.split_first() {
            Some((&"submit", rest)) => SubmitArgs::parse_fields(rest).map(Request::Submit),
            Some((&"batch", rest)) => {
                let (&count, rest) = rest.split_first().ok_or("batch needs a count")?;
                let n: usize = count
                    .parse()
                    .map_err(|_| format!("bad batch count {count}"))?;
                if n == 0 {
                    return Err("batch count must be >= 1".into());
                }
                let mut jobs = Vec::with_capacity(n.min(1024));
                let mut rest = rest;
                for _ in 0..n {
                    let (args, used) = SubmitArgs::parse_seq(rest)?;
                    jobs.push(args);
                    rest = &rest[used..];
                }
                if !rest.is_empty() {
                    return Err(format!("batch {n} has {} trailing fields", rest.len()));
                }
                Ok(Request::Batch(jobs))
            }
            Some((&"stats", [])) => Ok(Request::Stats),
            Some((&"stats", ["v2"])) => Ok(Request::StatsV2),
            Some((&"metrics", [])) => Ok(Request::Metrics),
            Some((&"drain", [])) => Ok(Request::Drain),
            Some((&"unquarantine", [sig])) => u64::from_str_radix(sig, 16)
                .map(Request::Unquarantine)
                .map_err(|_| format!("bad signature {sig}")),
            Some((&"upload", rest)) => UploadArgs::parse_fields(rest).map(Request::Upload),
            Some((&"explain", [target])) => match target.strip_prefix("pat:") {
                Some(hex) => u64::from_str_radix(hex, 16)
                    .map(|h| Request::Explain(ExplainTarget::Handle(h)))
                    .map_err(|_| format!("bad pattern handle {target}")),
                None => u64::from_str_radix(target, 16)
                    .map(|sig| Request::Explain(ExplainTarget::Signature(sig)))
                    .map_err(|_| format!("bad signature {target}")),
            },
            Some((&"slowlog", [])) => Ok(Request::Slowlog(DEFAULT_SLOWLOG)),
            Some((&"slowlog", [n])) => n
                .parse::<usize>()
                .map(Request::Slowlog)
                .map_err(|_| format!("bad slowlog count {n}")),
            Some((&"upgrade", ["bin"])) => Ok(Request::UpgradeBin),
            Some((verb, _)) => Err(format!("unknown or malformed request {verb}")),
            None => Err("empty request".into()),
        }
    }
}

/// Result payload of a successful job.  (`Eq` is off the table: the f64
/// payload shapes carry floats.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Payload {
    /// Output length plus wrapping-sum checksum ([`ReplyMode::Ack`],
    /// i64 bodies).
    Checksum {
        /// Number of reduction elements.
        len: usize,
        /// Wrapping sum of all output values.
        sum: i64,
    },
    /// The full output array ([`ReplyMode::Full`], i64 bodies).
    Full(Vec<i64>),
    /// Output length plus float sum ([`ReplyMode::Ack`], f64 bodies).
    ChecksumF64 {
        /// Number of reduction elements.
        len: usize,
        /// Plain (left-to-right) sum of all output values.
        sum: f64,
    },
    /// The full f64 output array ([`ReplyMode::Full`], f64 bodies).
    FullF64(Vec<f64>),
}

/// Wrapping-sum checksum of an output array (what
/// [`Payload::Checksum`] carries).
pub fn checksum(values: &[i64]) -> i64 {
    values.iter().fold(0i64, |a, &v| a.wrapping_add(v))
}

/// Left-to-right float sum (what [`Payload::ChecksumF64`] carries);
/// deterministic given the same array.
pub fn checksum_f64(values: &[f64]) -> f64 {
    values.iter().sum()
}

/// One finished job, as reported on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DoneMsg {
    /// The client's token, echoed.
    pub token: u64,
    /// What happened.
    pub outcome: DoneOutcome,
}

/// The two shapes of a `done` line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DoneOutcome {
    /// The job executed cleanly.
    Ok {
        /// Scheme abbreviation the dispatcher executed (`rep`, `hash`, …).
        scheme: String,
        /// The execution's cost sample in nanoseconds.
        elapsed_ns: u64,
        /// Whether the decision came from the profile store.
        profile_hit: bool,
        /// Group-mates sharing the job's fused sweep.
        fused_with: usize,
        /// Group-mates sharing the job's dispatch batch.
        batched_with: usize,
        /// The result payload, per the submission's [`ReplyMode`].
        payload: Payload,
    },
    /// The job failed.
    Err {
        /// Stable [`JobErrorKind`](smartapps_runtime::JobErrorKind) name
        /// (`panic`, `rejected`, `shutdown`, `quarantined`).
        kind: String,
        /// The signature the job was queued under (`0` when rejected
        /// before queueing) — the argument `unquarantine` takes.
        signature: u64,
        /// Human-readable detail; spaces allowed (last field on the line).
        message: String,
    },
}

/// The `stats v2` payload: counters, latency-histogram digests, and the
/// quarantine ledger — everything `stats` reports plus the distribution
/// and health state the counters cannot express.
///
/// All three lists are sorted (counters and histogram digests by key,
/// quarantined classes by signature), so identical server state encodes
/// to an identical line.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StatsV2 {
    /// Service counters, sorted by key.
    pub counters: Vec<(String, u64)>,
    /// Per-series histogram digests, sorted by (name, label key, label
    /// value); label values are registry-sanitized to `[A-Za-z0-9._-]`,
    /// which is what keeps the colon-separated wire form unambiguous.
    pub hists: Vec<HistSummary>,
    /// Quarantined class signatures with the whole seconds remaining
    /// until each TTL expires, sorted by signature.
    pub quarantined: Vec<(u64, u64)>,
}

/// Exemplars a bare `slowlog` request (no count) asks for.
pub const DEFAULT_SLOWLOG: usize = 8;

/// Most exemplars one `slowlog` reply carries, regardless of the
/// requested count (the server clamps; the store is bounded anyway).
pub const MAX_SLOWLOG: usize = 256;

/// What a [`Request::Explain`] asks about: a workload-class signature
/// (as reported by `done` messages and quarantine entries) or an
/// uploaded-pattern handle the server resolves to its class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExplainTarget {
    /// A class signature, verbatim.
    Signature(u64),
    /// An uploaded-pattern handle (`pat:<hex>`); the server maps it to
    /// the signature its submissions queue under.
    Handle(u64),
}

/// A gate verdict as reported on the wire: whether the gate took its
/// action, and the single-token reason (`docs/OBSERVABILITY.md` lists
/// the vocabulary per gate).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireGate {
    /// Whether the gate fired.
    pub fired: bool,
    /// Single-token justification (`[a-z0-9._-]`).
    pub reason: String,
}

impl WireGate {
    fn encode(&self) -> String {
        format!("{}:{}", u8::from(self.fired), self.reason)
    }

    fn parse(s: &str) -> Result<WireGate, String> {
        let (fired, reason) = s.split_once(':').ok_or(format!("bad gate verdict {s}"))?;
        let fired = match fired {
            "0" => false,
            "1" => true,
            other => return Err(format!("bad gate flag {other}")),
        };
        if reason.is_empty() {
            return Err(format!("empty gate reason in {s}"));
        }
        Ok(WireGate {
            fired,
            reason: reason.to_string(),
        })
    }
}

/// One row of the `explain` candidate cost table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireCandidate {
    /// Scheme abbreviation (`rep`, `hash`, `pclr`, …).
    pub scheme: String,
    /// Raw analytic model cost (`inf` when masked).
    pub analytic: f64,
    /// Correction-scaled cost the ranking compared.
    pub corrected: f64,
    /// Whether the scheme was admissible for this input.
    pub feasible: bool,
}

impl WireCandidate {
    fn encode(&self) -> String {
        format!(
            "{}:{}:{}:{}",
            self.scheme,
            self.analytic,
            self.corrected,
            u8::from(self.feasible)
        )
    }

    fn parse(s: &str) -> Result<WireCandidate, String> {
        let parts: Vec<&str> = s.split(':').collect();
        let [scheme, analytic, corrected, feasible] = parts[..] else {
            return Err(format!("bad candidate row {s}"));
        };
        let num = |v: &str| -> Result<f64, String> {
            v.parse().map_err(|_| format!("bad candidate cost {v}"))
        };
        let feasible = match feasible {
            "0" => false,
            "1" => true,
            other => return Err(format!("bad feasible flag {other}")),
        };
        Ok(WireCandidate {
            scheme: scheme.to_string(),
            analytic: num(analytic)?,
            corrected: num(corrected)?,
            feasible,
        })
    }
}

/// The `explain` payload: the wire form of the runtime's per-class
/// decision record — feature vector, full candidate cost table
/// (analytic-vs-corrected, masked rows included), gate verdicts, and
/// the winning scheme/backend (`docs/OBSERVABILITY.md` is the field
/// catalog).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplainInfo {
    /// The workload-class signature the record applies to.
    pub signature: u64,
    /// Functioning-domain label (the `d..r..s..m..` form the metric
    /// series use).
    pub domain: String,
    /// The scheme the decision chose (abbreviation).
    pub winner: String,
    /// The backend that executed the class's last decided job
    /// (`software`, `simd`, `pclr`, `scan`; `pending` before execution).
    pub backend: String,
    /// The decision came from an exploration slot.
    pub explored: bool,
    /// The decision was a periodic profile recheck.
    pub rechecked: bool,
    /// Times the class's winning scheme has changed across recorded
    /// decisions.
    pub flips: u64,
    /// Fusion-gate verdict.
    pub fusion: WireGate,
    /// Simplification-gate verdict.
    pub simplify: WireGate,
    /// Quarantine verdict (fired = rejected).
    pub quarantine: WireGate,
    /// The model inputs, as ordered `name=value` pairs (counts are
    /// exact below 2^53; ratios are the model's own floats).
    pub features: Vec<(String, f64)>,
    /// The candidate cost table, in ranked order (best corrected cost
    /// first).
    pub candidates: Vec<WireCandidate>,
}

impl ExplainInfo {
    fn encode_fields(&self) -> String {
        let mut s = format!(
            "{:016x} {} {} {} {}{} {} {} {} {}",
            self.signature,
            self.domain,
            self.winner,
            self.backend,
            u8::from(self.explored),
            u8::from(self.rechecked),
            self.flips,
            self.fusion.encode(),
            self.simplify.encode(),
            self.quarantine.encode(),
        );
        s.push_str(&format!(" features {}", self.features.len()));
        for (name, value) in &self.features {
            s.push_str(&format!(" {name}={value}"));
        }
        s.push_str(&format!(" candidates {}", self.candidates.len()));
        for c in &self.candidates {
            s.push(' ');
            s.push_str(&c.encode());
        }
        s
    }

    fn parse_fields(f: &[&str]) -> Result<ExplainInfo, String> {
        if f.len() < 9 {
            return Err(format!(
                "explained takes at least 9 fields, got {}",
                f.len()
            ));
        }
        let signature = u64::from_str_radix(f[0], 16)
            .map_err(|_| format!("bad explained signature {}", f[0]))?;
        let flags = f[4].as_bytes();
        let flag = |b: u8| match b {
            b'0' => Ok(false),
            b'1' => Ok(true),
            _ => Err(format!("bad explained flags {}", f[4])),
        };
        let [explored, rechecked] = flags[..] else {
            return Err(format!("bad explained flags {}", f[4]));
        };
        let flips: u64 = f[5].parse().map_err(|_| format!("bad flips {}", f[5]))?;
        let fusion = WireGate::parse(f[6])?;
        let simplify = WireGate::parse(f[7])?;
        let quarantine = WireGate::parse(f[8])?;
        let mut i = 9usize;
        let section = |name: &'static str, i: &mut usize| -> Result<usize, String> {
            if f.get(*i).copied() != Some(name) {
                return Err(format!("explained expects a {name} section at field {i}"));
            }
            let n: usize = f
                .get(*i + 1)
                .ok_or(format!("explained {name} needs a count"))?
                .parse()
                .map_err(|_| format!("bad {name} count"))?;
            *i += 2;
            if f.len() < *i + n {
                return Err(format!(
                    "explained {name} declares {n} entries, line ends early"
                ));
            }
            Ok(n)
        };
        let n = section("features", &mut i)?;
        let features = f[i..i + n]
            .iter()
            .map(|pair| {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or(format!("bad feature pair {pair}"))?;
                let v: f64 = v.parse().map_err(|_| format!("bad feature value {pair}"))?;
                Ok((k.to_string(), v))
            })
            .collect::<Result<Vec<_>, String>>()?;
        i += n;
        let m = section("candidates", &mut i)?;
        let candidates = f[i..i + m]
            .iter()
            .map(|s| WireCandidate::parse(s))
            .collect::<Result<Vec<_>, String>>()?;
        i += m;
        if i != f.len() {
            return Err(format!(
                "explained line has {} trailing fields",
                f.len() - i
            ));
        }
        Ok(ExplainInfo {
            signature,
            domain: f[1].to_string(),
            winner: f[2].to_string(),
            backend: f[3].to_string(),
            explored: flag(explored)?,
            rechecked: flag(rechecked)?,
            flips,
            fusion,
            simplify,
            quarantine,
            features,
            candidates,
        })
    }
}

/// One slow-job exemplar as reported by `slowlog`: the job's class, its
/// end-to-end latency, how it was routed, and the per-stage latency
/// attribution derived from its lifecycle trace event.  The five stage
/// fields sum exactly to `latency_ns` for executed jobs (all-zero for
/// jobs that failed before execution).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlowlogEntry {
    /// The job's class signature.
    pub class: u64,
    /// End-to-end latency (submission → completion), nanoseconds.
    pub latency_ns: u64,
    /// Scheme abbreviation the job executed (`-` when it failed before
    /// a scheme was chosen).
    pub scheme: String,
    /// Backend tag (`software`, `simd`, `pclr`, `scan`).
    pub backend: String,
    /// How the job ended (`none`, `panicked`, `quarantined`).
    pub error: String,
    /// Members of the job's fused sweep (1 = unfused, 0 = unexecuted).
    pub fused: u16,
    /// Submission → dispatcher dequeue, nanoseconds.
    pub queue_ns: u64,
    /// Dequeue → scheme decision, nanoseconds.
    pub decide_ns: u64,
    /// Simplification-gate time (recognizer + probe), nanoseconds.
    pub simplify_ns: u64,
    /// Decision → execution done minus the simplify share, nanoseconds.
    pub exec_ns: u64,
    /// Execution done → completion handed to the sink, nanoseconds.
    pub completion_ns: u64,
    /// Winning scheme of the decision record in force when the job
    /// completed (`-` when no ranking had run for the class).
    pub winner: String,
}

impl SlowlogEntry {
    fn encode(&self) -> String {
        format!(
            "{:016x}:{}:{}:{}:{}:{}:{}:{}:{}:{}:{}:{}",
            self.class,
            self.latency_ns,
            self.scheme,
            self.backend,
            self.error,
            self.fused,
            self.queue_ns,
            self.decide_ns,
            self.simplify_ns,
            self.exec_ns,
            self.completion_ns,
            self.winner
        )
    }

    fn parse(s: &str) -> Result<SlowlogEntry, String> {
        let parts: Vec<&str> = s.split(':').collect();
        let [class, latency, scheme, backend, error, fused, queue, decide, simplify, exec, completion, winner] =
            parts[..]
        else {
            return Err(format!("bad slowlog entry {s}"));
        };
        let num = |v: &str| -> Result<u64, String> {
            v.parse().map_err(|_| format!("bad slowlog field {v}"))
        };
        Ok(SlowlogEntry {
            class: u64::from_str_radix(class, 16)
                .map_err(|_| format!("bad slowlog class {class}"))?,
            latency_ns: num(latency)?,
            scheme: scheme.to_string(),
            backend: backend.to_string(),
            error: error.to_string(),
            fused: fused
                .parse()
                .map_err(|_| format!("bad fused count {fused}"))?,
            queue_ns: num(queue)?,
            decide_ns: num(decide)?,
            simplify_ns: num(simplify)?,
            exec_ns: num(exec)?,
            completion_ns: num(completion)?,
            winner: winner.to_string(),
        })
    }
}

/// A server→client response (one line each).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// One finished job.
    Done(DoneMsg),
    /// Service-counter snapshot as ordered `key=value` pairs.
    Stats(Vec<(String, u64)>),
    /// The richer `stats v2` snapshot.
    StatsV2(StatsV2),
    /// The connection's flush barrier: every job submitted before the
    /// `drain` has completed; the payload is the total jobs completed on
    /// this connection so far.
    Drained(u64),
    /// Whether the `unquarantine` found ledger state to clear.
    Unquarantined(bool),
    /// A CSR upload succeeded: the echoed token and the issued (or
    /// deduplicated) pattern handle.
    Uploaded {
        /// The upload's token, echoed.
        token: u64,
        /// The handle later submissions reference via
        /// [`WireSource::Handle`].
        handle: u64,
    },
    /// The latest decision record of the asked-about class (`None` when
    /// no ranking has run for it — reported as `explained none`).
    Explained(Option<ExplainInfo>),
    /// The slowest retained jobs, slowest first, with per-stage latency
    /// attribution.
    Slowlog(Vec<SlowlogEntry>),
    /// Acknowledges [`Request::UpgradeBin`]: the last text line on the
    /// connection; everything after it (both directions) is binary wire
    /// v2 frames.
    Upgraded,
    /// Protocol-level failure (unparsable line, oversized job, …); the
    /// server closes the connection after sending it.
    Error(String),
}

impl Response {
    /// Render the response as its wire line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Response::Done(DoneMsg { token, outcome }) => match outcome {
                DoneOutcome::Ok {
                    scheme,
                    elapsed_ns,
                    profile_hit,
                    fused_with,
                    batched_with,
                    payload,
                } => {
                    let head = format!(
                        "done {token} ok {scheme} {elapsed_ns} {} {fused_with} {batched_with}",
                        u8::from(*profile_hit)
                    );
                    match payload {
                        Payload::Checksum { len, sum } => format!("{head} sum {len} {sum}"),
                        Payload::Full(values) => {
                            let mut s = format!("{head} full {}", values.len());
                            for v in values {
                                s.push(' ');
                                s.push_str(&v.to_string());
                            }
                            s
                        }
                        Payload::ChecksumF64 { len, sum } => format!("{head} fsum {len} {sum}"),
                        Payload::FullF64(values) => {
                            let mut s = format!("{head} ffull {}", values.len());
                            for v in values {
                                s.push(' ');
                                s.push_str(&v.to_string());
                            }
                            s
                        }
                    }
                }
                DoneOutcome::Err {
                    kind,
                    signature,
                    message,
                } => format!("done {token} err {kind} {signature:016x} {message}"),
            },
            Response::Stats(pairs) => {
                let mut s = "stats".to_string();
                for (k, v) in pairs {
                    s.push(' ');
                    s.push_str(k);
                    s.push('=');
                    s.push_str(&v.to_string());
                }
                s
            }
            Response::StatsV2(v2) => {
                let mut s = format!("stats2 counters {}", v2.counters.len());
                for (k, v) in &v2.counters {
                    s.push(' ');
                    s.push_str(k);
                    s.push('=');
                    s.push_str(&v.to_string());
                }
                s.push_str(&format!(" hists {}", v2.hists.len()));
                for h in &v2.hists {
                    s.push_str(&format!(
                        " {}:{}:{}:{}:{}:{}:{}:{}",
                        h.name, h.label_key, h.label_value, h.count, h.p50, h.p95, h.p99, h.max
                    ));
                }
                s.push_str(&format!(" quarantine {}", v2.quarantined.len()));
                for (sig, ttl) in &v2.quarantined {
                    s.push_str(&format!(" {sig:016x}:{ttl}"));
                }
                s
            }
            Response::Explained(None) => "explained none".into(),
            Response::Explained(Some(info)) => format!("explained {}", info.encode_fields()),
            Response::Slowlog(entries) => {
                let mut s = format!("slowlog {}", entries.len());
                for e in entries {
                    s.push(' ');
                    s.push_str(&e.encode());
                }
                s
            }
            Response::Drained(n) => format!("drained {n}"),
            Response::Unquarantined(found) => format!("unquarantined {}", u8::from(*found)),
            Response::Uploaded { token, handle } => format!("uploaded {token} {handle:016x}"),
            Response::Upgraded => "upgraded bin".into(),
            Response::Error(msg) => format!("err {msg}"),
        }
    }

    /// Parse one response line.
    pub fn parse(line: &str) -> Result<Response, String> {
        let line = line.trim_end_matches(['\r', '\n']);
        let (verb, rest) = line.split_once(' ').unwrap_or((line, ""));
        match verb {
            "done" => Self::parse_done(rest).map(Response::Done),
            "stats" => rest
                .split_ascii_whitespace()
                .map(|pair| {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or(format!("bad stat pair {pair}"))?;
                    let v: u64 = v.parse().map_err(|_| format!("bad stat value {pair}"))?;
                    Ok((k.to_string(), v))
                })
                .collect::<Result<Vec<_>, String>>()
                .map(Response::Stats),
            "stats2" => Self::parse_stats_v2(rest).map(Response::StatsV2),
            "explained" => {
                if rest.trim() == "none" {
                    return Ok(Response::Explained(None));
                }
                let f: Vec<&str> = rest.split_ascii_whitespace().collect();
                ExplainInfo::parse_fields(&f).map(|info| Response::Explained(Some(info)))
            }
            "slowlog" => {
                let f: Vec<&str> = rest.split_ascii_whitespace().collect();
                let (count, entries) = f.split_first().ok_or("slowlog needs a count")?;
                let n: usize = count
                    .parse()
                    .map_err(|_| format!("bad slowlog count {count}"))?;
                if entries.len() != n {
                    return Err(format!(
                        "slowlog declares {n} entries, got {}",
                        entries.len()
                    ));
                }
                entries
                    .iter()
                    .map(|s| SlowlogEntry::parse(s))
                    .collect::<Result<Vec<_>, String>>()
                    .map(Response::Slowlog)
            }
            "drained" => rest
                .trim()
                .parse()
                .map(Response::Drained)
                .map_err(|_| format!("bad drained count {rest}")),
            "unquarantined" => match rest.trim() {
                "0" => Ok(Response::Unquarantined(false)),
                "1" => Ok(Response::Unquarantined(true)),
                other => Err(format!("bad unquarantined flag {other}")),
            },
            "uploaded" => {
                let (token, handle) = rest
                    .trim()
                    .split_once(' ')
                    .ok_or(format!("truncated uploaded line: {rest}"))?;
                let token: u64 = token.parse().map_err(|_| format!("bad token {token}"))?;
                let handle =
                    u64::from_str_radix(handle, 16).map_err(|_| format!("bad handle {handle}"))?;
                Ok(Response::Uploaded { token, handle })
            }
            "upgraded" => match rest.trim() {
                "bin" => Ok(Response::Upgraded),
                other => Err(format!("bad upgraded mode {other}")),
            },
            "err" => Ok(Response::Error(rest.to_string())),
            other => Err(format!("unknown response {other}")),
        }
    }

    fn parse_stats_v2(rest: &str) -> Result<StatsV2, String> {
        let f: Vec<&str> = rest.split_ascii_whitespace().collect();
        let mut i = 0usize;
        // Each section is `<name> <count>` followed by `count` entries.
        let section = |name: &'static str, i: &mut usize| -> Result<usize, String> {
            if f.get(*i).copied() != Some(name) {
                return Err(format!("stats2 expects a {name} section at field {i}"));
            }
            let n: usize = f
                .get(*i + 1)
                .ok_or(format!("stats2 {name} needs a count"))?
                .parse()
                .map_err(|_| format!("bad {name} count"))?;
            *i += 2;
            if f.len() < *i + n {
                return Err(format!(
                    "stats2 {name} declares {n} entries, line ends early"
                ));
            }
            Ok(n)
        };
        let n = section("counters", &mut i)?;
        let counters = f[i..i + n]
            .iter()
            .map(|pair| {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or(format!("bad stat pair {pair}"))?;
                let v: u64 = v.parse().map_err(|_| format!("bad stat value {pair}"))?;
                Ok((k.to_string(), v))
            })
            .collect::<Result<Vec<_>, String>>()?;
        i += n;
        let m = section("hists", &mut i)?;
        let hists = f[i..i + m]
            .iter()
            .map(|entry| {
                let parts: Vec<&str> = entry.split(':').collect();
                let [name, label_key, label_value, count, p50, p95, p99, max] = parts[..] else {
                    return Err(format!("bad hist digest {entry}"));
                };
                let num = |s: &str| -> Result<u64, String> {
                    s.parse().map_err(|_| format!("bad hist field {s}"))
                };
                Ok(HistSummary {
                    name: name.to_string(),
                    label_key: label_key.to_string(),
                    label_value: label_value.to_string(),
                    count: num(count)?,
                    p50: num(p50)?,
                    p95: num(p95)?,
                    p99: num(p99)?,
                    max: num(max)?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        i += m;
        let q = section("quarantine", &mut i)?;
        let quarantined = f[i..i + q]
            .iter()
            .map(|entry| {
                let (sig, ttl) = entry
                    .split_once(':')
                    .ok_or(format!("bad quarantine entry {entry}"))?;
                let sig = u64::from_str_radix(sig, 16)
                    .map_err(|_| format!("bad quarantine signature {sig}"))?;
                let ttl: u64 = ttl
                    .parse()
                    .map_err(|_| format!("bad quarantine ttl {ttl}"))?;
                Ok((sig, ttl))
            })
            .collect::<Result<Vec<_>, String>>()?;
        i += q;
        if i != f.len() {
            return Err(format!("stats2 line has {} trailing fields", f.len() - i));
        }
        Ok(StatsV2 {
            counters,
            hists,
            quarantined,
        })
    }

    fn parse_done(rest: &str) -> Result<DoneMsg, String> {
        let f: Vec<&str> = rest.splitn(3, ' ').collect();
        let [token, status, tail] = f[..] else {
            return Err(format!("truncated done line: {rest}"));
        };
        let token: u64 = token.parse().map_err(|_| format!("bad token {token}"))?;
        match status {
            "ok" => {
                let f: Vec<&str> = tail.split_ascii_whitespace().collect();
                if f.len() < 7 {
                    return Err(format!("truncated done-ok line: {tail}"));
                }
                let scheme = f[0].to_string();
                let elapsed_ns: u64 = f[1].parse().map_err(|_| format!("bad elapsed {}", f[1]))?;
                let profile_hit = match f[2] {
                    "0" => false,
                    "1" => true,
                    other => return Err(format!("bad profile_hit {other}")),
                };
                let fused_with: usize = f[3]
                    .parse()
                    .map_err(|_| format!("bad fused_with {}", f[3]))?;
                let batched_with: usize = f[4]
                    .parse()
                    .map_err(|_| format!("bad batched_with {}", f[4]))?;
                let len: usize = f[6].parse().map_err(|_| format!("bad length {}", f[6]))?;
                let payload = match f[5] {
                    "sum" => {
                        if f.len() != 8 {
                            return Err("sum payload takes len + checksum".into());
                        }
                        Payload::Checksum {
                            len,
                            sum: f[7].parse().map_err(|_| format!("bad checksum {}", f[7]))?,
                        }
                    }
                    "full" => {
                        if f.len() != 7 + len {
                            return Err(format!(
                                "full payload declares {len} values, got {}",
                                f.len() - 7
                            ));
                        }
                        Payload::Full(
                            f[7..]
                                .iter()
                                .map(|v| v.parse().map_err(|_| format!("bad value {v}")))
                                .collect::<Result<Vec<i64>, String>>()?,
                        )
                    }
                    "fsum" => {
                        if f.len() != 8 {
                            return Err("fsum payload takes len + checksum".into());
                        }
                        Payload::ChecksumF64 {
                            len,
                            sum: f[7].parse().map_err(|_| format!("bad checksum {}", f[7]))?,
                        }
                    }
                    "ffull" => {
                        if f.len() != 7 + len {
                            return Err(format!(
                                "ffull payload declares {len} values, got {}",
                                f.len() - 7
                            ));
                        }
                        Payload::FullF64(
                            f[7..]
                                .iter()
                                .map(|v| v.parse().map_err(|_| format!("bad value {v}")))
                                .collect::<Result<Vec<f64>, String>>()?,
                        )
                    }
                    other => return Err(format!("unknown payload kind {other}")),
                };
                Ok(DoneMsg {
                    token,
                    outcome: DoneOutcome::Ok {
                        scheme,
                        elapsed_ns,
                        profile_hit,
                        fused_with,
                        batched_with,
                        payload,
                    },
                })
            }
            "err" => {
                let f: Vec<&str> = tail.splitn(3, ' ').collect();
                let [kind, signature, message] = f[..] else {
                    return Err(format!("truncated done-err line: {tail}"));
                };
                let signature = u64::from_str_radix(signature, 16)
                    .map_err(|_| format!("bad signature {signature}"))?;
                Ok(DoneMsg {
                    token,
                    outcome: DoneOutcome::Err {
                        kind: kind.to_string(),
                        signature,
                        message: message.to_string(),
                    },
                })
            }
            other => Err(format!("unknown done status {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WireSpec {
        WireSpec {
            elements: 512,
            iterations: 900,
            refs_per_iter: 2,
            coverage: 0.75,
            dist: WireDist::Zipf(1.1),
            seed: 7,
        }
    }

    #[test]
    fn requests_round_trip() {
        let args = SubmitArgs {
            token: 41,
            reply: ReplyMode::Full,
            body: WireBody::Mul(-3),
            source: WireSource::Gen(spec()),
        };
        let by_handle = SubmitArgs {
            token: 43,
            reply: ReplyMode::Ack,
            body: WireBody::FSum,
            source: WireSource::Handle(0x1f),
        };
        for req in [
            Request::Submit(args),
            Request::Submit(by_handle),
            Request::Submit(SubmitArgs {
                token: 44,
                reply: ReplyMode::Ack,
                body: WireBody::Usum,
                source: WireSource::Handle(0x20),
            }),
            Request::Submit(SubmitArgs {
                token: 45,
                reply: ReplyMode::Full,
                body: WireBody::Fusum,
                source: WireSource::Gen(spec()),
            }),
            Request::Batch(vec![
                args,
                // A batch may mix handle-form (4 fields) and spec-form
                // (9 fields) submissions.
                by_handle,
                SubmitArgs {
                    token: 42,
                    reply: ReplyMode::Ack,
                    body: WireBody::Sum,
                    source: WireSource::Gen(WireSpec {
                        dist: WireDist::Clustered(16),
                        ..spec()
                    }),
                },
            ]),
            Request::Stats,
            Request::StatsV2,
            Request::Metrics,
            Request::Drain,
            Request::Unquarantine(0xdead_beef_0042),
            Request::Upload(UploadArgs {
                token: 5,
                num_elements: 4,
                iter_ptr: vec![0, 2, 2, 3],
                indices: vec![1, 3, 0],
            }),
            Request::Explain(ExplainTarget::Signature(0xabc_0042)),
            Request::Explain(ExplainTarget::Handle(0x2a)),
            Request::Slowlog(17),
            Request::UpgradeBin,
        ] {
            let line = req.encode();
            assert_eq!(Request::parse(&line).as_ref(), Ok(&req), "line: {line}");
        }
        // A bare `slowlog` asks for the default count.
        assert_eq!(
            Request::parse("slowlog"),
            Ok(Request::Slowlog(DEFAULT_SLOWLOG))
        );
    }

    #[test]
    fn stats_v2_carries_the_simplify_and_simd_counters() {
        // The server's `stats2` builder exports these three counters; the
        // text codec must carry the exact names unharmed (satellite of the
        // observability issue — clients key dashboards off them).
        let v2 = StatsV2 {
            counters: vec![
                ("simd_offloads".into(), 17),
                ("simplified_jobs".into(), 9),
                ("simplify_rejects".into(), 3),
            ],
            hists: vec![],
            quarantined: vec![],
        };
        let line = Response::StatsV2(v2.clone()).encode();
        assert_eq!(Response::parse(&line), Ok(Response::StatsV2(v2)));
    }

    fn explain_info() -> ExplainInfo {
        ExplainInfo {
            signature: 0xfeed_0007,
            domain: "d11r2s10m2".into(),
            winner: "hash".into(),
            backend: "software".into(),
            explored: false,
            rechecked: true,
            flips: 3,
            fusion: WireGate {
                fired: true,
                reason: "hash-trusted".into(),
            },
            simplify: WireGate {
                fired: false,
                reason: "recognizer-miss".into(),
            },
            quarantine: WireGate {
                fired: false,
                reason: "clear".into(),
            },
            features: vec![
                ("references".into(), 1800.0),
                ("elements".into(), 512.0),
                ("sp".into(), 0.734),
            ],
            candidates: vec![
                WireCandidate {
                    scheme: "hash".into(),
                    analytic: 1234.5,
                    corrected: 987.25,
                    feasible: true,
                },
                WireCandidate {
                    scheme: "lw".into(),
                    analytic: f64::INFINITY,
                    corrected: f64::INFINITY,
                    feasible: false,
                },
            ],
        }
    }

    fn slowlog_entry() -> SlowlogEntry {
        SlowlogEntry {
            class: 0xfeed_0007,
            latency_ns: 1_250_000,
            scheme: "hash".into(),
            backend: "simd".into(),
            error: "none".into(),
            fused: 4,
            queue_ns: 10_000,
            decide_ns: 40_000,
            simplify_ns: 0,
            exec_ns: 1_100_000,
            completion_ns: 100_000,
            winner: "hash".into(),
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Done(DoneMsg {
                token: 9,
                outcome: DoneOutcome::Ok {
                    scheme: "hash".into(),
                    elapsed_ns: 123_456,
                    profile_hit: true,
                    fused_with: 5,
                    batched_with: 7,
                    payload: Payload::Checksum { len: 512, sum: -17 },
                },
            }),
            Response::Done(DoneMsg {
                token: 10,
                outcome: DoneOutcome::Ok {
                    scheme: "rep".into(),
                    elapsed_ns: 1,
                    profile_hit: false,
                    fused_with: 0,
                    batched_with: 0,
                    payload: Payload::Full(vec![1, -2, 3]),
                },
            }),
            Response::Done(DoneMsg {
                token: 11,
                outcome: DoneOutcome::Err {
                    kind: "panic".into(),
                    signature: 0xabc,
                    message: "bad row 7 of 9".into(),
                },
            }),
            Response::Stats(vec![("submitted".into(), 12), ("completed".into(), 12)]),
            Response::StatsV2(StatsV2 {
                counters: vec![("completed".into(), 12), ("submitted".into(), 12)],
                hists: vec![HistSummary {
                    name: "smartapps_exec_ns".into(),
                    label_key: "scheme".into(),
                    label_value: "hash".into(),
                    count: 40,
                    p50: 1023,
                    p95: 8191,
                    p99: 16383,
                    max: 12345,
                }],
                quarantined: vec![(0xabc, 17), (0xdef, 0)],
            }),
            Response::StatsV2(StatsV2::default()),
            Response::Explained(None),
            Response::Explained(Some(explain_info())),
            Response::Slowlog(vec![]),
            Response::Slowlog(vec![
                slowlog_entry(),
                SlowlogEntry {
                    scheme: "-".into(),
                    winner: "-".into(),
                    error: "quarantined".into(),
                    fused: 0,
                    queue_ns: 0,
                    decide_ns: 0,
                    exec_ns: 0,
                    completion_ns: 0,
                    ..slowlog_entry()
                },
            ]),
            Response::Drained(40),
            Response::Unquarantined(true),
            Response::Uploaded {
                token: 12,
                handle: 0x2a,
            },
            Response::Upgraded,
            Response::Done(DoneMsg {
                token: 12,
                outcome: DoneOutcome::Ok {
                    scheme: "rep".into(),
                    elapsed_ns: 77,
                    profile_hit: false,
                    fused_with: 0,
                    batched_with: 1,
                    payload: Payload::ChecksumF64 {
                        len: 3,
                        sum: -0.125,
                    },
                },
            }),
            Response::Done(DoneMsg {
                token: 13,
                outcome: DoneOutcome::Ok {
                    scheme: "pclr".into(),
                    elapsed_ns: 78,
                    profile_hit: true,
                    fused_with: 1,
                    batched_with: 1,
                    payload: Payload::FullF64(vec![1.5, -2.25, 1e-9, std::f64::consts::PI]),
                },
            }),
            Response::Error("line too long".into()),
        ] {
            let line = resp.encode();
            assert_eq!(Response::parse(&line).as_ref(), Ok(&resp), "line: {line}");
        }
    }

    #[test]
    fn malformed_lines_are_rejected_not_panicked() {
        for line in [
            "",
            "submit",
            "submit 1 ack sum 0 900 2 0.75 uniform 7", // elements 0 OK at parse...
            "submit x ack sum 512 900 2 0.75 uniform 7", // bad token
            "submit 1 nope sum 512 900 2 0.75 uniform 7", // bad reply
            "submit 1 ack warp 512 900 2 0.75 uniform 7", // bad body
            "submit 1 ack sum 512 900 2 1.5e nope 7",  // bad coverage/dist
            "batch 2 1 ack sum 512 900 2 0.75 uniform 7", // short batch
            "batch x",                                 // bad count
            "stats now",                               // trailing junk
            "unquarantine zz",                         // bad hex
            "warp 9",                                  // unknown verb
            "submit 1 ack sum pat:zz",                 // bad handle hex
            "submit 1 ack sum pat:2a 99",              // trailing fields
            "upload 1 4 2 1 0 2 3 9",                  // count mismatch
            "upload 1 4 2 x 0 2",                      // bad length field
            "upgrade text",                            // unknown upgrade mode
            "explain",                                 // missing target
            "explain zz",                              // bad hex
            "explain pat:zz",                          // bad handle hex
            "explain abc def",                         // trailing junk
            "slowlog x",                               // bad count
        ] {
            // Line 3 parses (validation is a separate step); all others fail.
            let parsed = Request::parse(line);
            if line.starts_with("submit 1 ack sum 0") {
                let Ok(Request::Submit(args)) = parsed else {
                    panic!("zero-element submit should parse, validation rejects it")
                };
                let WireSource::Gen(spec) = args.source else {
                    panic!("generator submit should carry a spec")
                };
                assert!(spec.validate().is_err());
            } else {
                assert!(parsed.is_err(), "should reject: {line}");
            }
        }
        for line in [
            "done",
            "done 9 ok",
            "done 9 ok hash 1 2 0 0 sum 1", // bad profile_hit field
            "done 9 ok hash 1 1 0 0 full 3 1 2", // undersized full payload
            "done 9 err panic",
            "drained x",
            "unquarantined 2",
            "bogus",
            "stats2",                                      // no sections
            "stats2 counters 1",                           // truncated counters
            "stats2 counters 0 hists 1 a:b quarantine 0",  // short digest
            "stats2 counters 0 hists 0 quarantine 1 zz:3", // bad signature
            "stats2 counters 0 hists 0 quarantine 0 junk", // trailing fields
            "stats2 hists 0 counters 0 quarantine 0",      // sections out of order
            "uploaded 5",                                  // missing handle
            "uploaded x 2a",                               // bad token
            "upgraded text",                               // unknown mode
            "done 9 ok hash 1 1 0 0 ffull 2 1.5",          // undersized f64 payload
            "explained",                                   // empty record
            "explained zz d1r1s1m1 hash software 00 0 0:a 0:b 0:c features 0 candidates 0", // bad sig
            "explained 2a d1r1s1m1 hash software 02 0 0:a 0:b 0:c features 0 candidates 0", // bad flags
            "explained 2a d1r1s1m1 hash software 00 0 0:a 0:b 0:c features 1 candidates 0", // short features
            "explained 2a d1r1s1m1 hash software 00 0 0:a 0:b 0:c features 0 candidates 1 hash:1:2", // short candidate row
            "explained 2a d1r1s1m1 hash software 00 0 0:a 0:b 0:c candidates 0 features 0", // sections out of order
            "slowlog",                            // no count
            "slowlog 2 a",                        // declared 2, got 1
            "slowlog 1 zz:1:a:b:c:0:0:0:0:0:0:d", // bad class hex
            "slowlog 1 toofew:1",                 // short entry
        ] {
            assert!(Response::parse(line).is_err(), "should reject: {line}");
        }
    }

    #[test]
    fn spec_validation_bounds() {
        assert!(spec().validate().is_ok());
        assert!(WireSpec {
            coverage: 0.0,
            ..spec()
        }
        .validate()
        .is_err());
        assert!(WireSpec {
            coverage: f64::NAN,
            ..spec()
        }
        .validate()
        .is_err());
        assert!(WireSpec {
            iterations: 0,
            ..spec()
        }
        .validate()
        .is_err());
        assert!(WireSpec {
            dist: WireDist::Zipf(f64::INFINITY),
            ..spec()
        }
        .validate()
        .is_err());
        assert_eq!(spec().total_refs(), 1800);
        assert_eq!(
            WireSpec {
                iterations: usize::MAX,
                refs_per_iter: 3,
                ..spec()
            }
            .total_refs(),
            usize::MAX,
            "ref accounting must saturate, not wrap"
        );
    }

    #[test]
    fn checksum_wraps() {
        assert_eq!(checksum(&[1, 2, 3]), 6);
        assert_eq!(checksum(&[i64::MAX, 1]), i64::MIN);
        assert_eq!(checksum(&[]), 0);
    }

    mod props {
        //! Round-trip properties of the `stats`/`stats2` encodings over
        //! arbitrary (wire-safe) keys, digests, and quarantine entries.

        use super::*;
        use proptest::prelude::*;

        /// Strategy: strings over the registry's sanitized label charset
        /// (the only values that ever reach a `stats2` line).
        fn arb_ident() -> impl Strategy<Value = String> {
            const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789._-";
            proptest::collection::vec(0usize..CHARS.len(), 1..12)
                .prop_map(|ix| ix.into_iter().map(|i| CHARS[i] as char).collect())
        }

        fn arb_summary() -> impl Strategy<Value = HistSummary> {
            (
                (arb_ident(), arb_ident(), arb_ident()),
                (
                    any::<u64>(),
                    any::<u64>(),
                    any::<u64>(),
                    any::<u64>(),
                    any::<u64>(),
                ),
            )
                .prop_map(
                    |((name, label_key, label_value), (count, p50, p95, p99, max))| HistSummary {
                        name,
                        label_key,
                        label_value,
                        count,
                        p50,
                        p95,
                        p99,
                        max,
                    },
                )
        }

        fn arb_stats_v2() -> impl Strategy<Value = StatsV2> {
            (
                proptest::collection::vec((arb_ident(), any::<u64>()), 0..6),
                proptest::collection::vec(arb_summary(), 0..6),
                proptest::collection::vec((any::<u64>(), 0u64..1_000_000), 0..5),
            )
                .prop_map(|(mut counters, mut hists, mut quarantined)| {
                    // The server always emits sorted sections; generate in
                    // the same canonical form.
                    counters.sort();
                    hists.sort_by(|a, b| {
                        (&a.name, &a.label_key, &a.label_value).cmp(&(
                            &b.name,
                            &b.label_key,
                            &b.label_value,
                        ))
                    });
                    quarantined.sort();
                    StatsV2 {
                        counters,
                        hists,
                        quarantined,
                    }
                })
        }

        /// Strategy: any f64 the server can legitimately put on the wire.
        /// `Display` for f64 is the shortest round-tripping form, and
        /// `"inf"` parses back; only NaN breaks the property (it never
        /// reaches a wire line — costs come from finite samples and
        /// infeasible-scheme sentinels).
        fn arb_cost() -> impl Strategy<Value = f64> {
            prop_oneof![-1.0e15..1.0e15, 0.0..1.0, Just(0.0), Just(f64::INFINITY),]
        }

        fn arb_gate() -> impl Strategy<Value = WireGate> {
            (any::<bool>(), arb_ident()).prop_map(|(fired, reason)| WireGate { fired, reason })
        }

        fn arb_candidate() -> impl Strategy<Value = WireCandidate> {
            (arb_ident(), arb_cost(), arb_cost(), any::<bool>()).prop_map(
                |(scheme, analytic, corrected, feasible)| WireCandidate {
                    scheme,
                    analytic,
                    corrected,
                    feasible,
                },
            )
        }

        fn arb_explain_info() -> impl Strategy<Value = ExplainInfo> {
            (
                (any::<u64>(), arb_ident(), arb_ident(), arb_ident()),
                (any::<bool>(), any::<bool>(), any::<u64>()),
                (arb_gate(), arb_gate(), arb_gate()),
                proptest::collection::vec((arb_ident(), arb_cost()), 0..8),
                proptest::collection::vec(arb_candidate(), 0..8),
            )
                .prop_map(
                    |(
                        (signature, domain, winner, backend),
                        (explored, rechecked, flips),
                        (fusion, simplify, quarantine),
                        features,
                        candidates,
                    )| ExplainInfo {
                        signature,
                        domain,
                        winner,
                        backend,
                        explored,
                        rechecked,
                        flips,
                        fusion,
                        simplify,
                        quarantine,
                        features,
                        candidates,
                    },
                )
        }

        fn arb_slowlog_entry() -> impl Strategy<Value = SlowlogEntry> {
            (
                (any::<u64>(), any::<u64>()),
                (arb_ident(), arb_ident(), arb_ident(), arb_ident()),
                0u16..=u16::MAX,
                (
                    any::<u64>(),
                    any::<u64>(),
                    any::<u64>(),
                    any::<u64>(),
                    any::<u64>(),
                ),
            )
                .prop_map(
                    |(
                        (class, latency_ns),
                        (scheme, backend, error, winner),
                        fused,
                        (queue_ns, decide_ns, simplify_ns, exec_ns, completion_ns),
                    )| SlowlogEntry {
                        class,
                        latency_ns,
                        scheme,
                        backend,
                        error,
                        fused,
                        queue_ns,
                        decide_ns,
                        simplify_ns,
                        exec_ns,
                        completion_ns,
                        winner,
                    },
                )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(192))]

            #[test]
            fn explained_encode_parse_round_trips(info in arb_explain_info()) {
                let line = Response::Explained(Some(info.clone())).encode();
                prop_assert_eq!(
                    Response::parse(&line),
                    Ok(Response::Explained(Some(info))),
                    "line: {}", line
                );
            }

            #[test]
            fn slowlog_encode_parse_round_trips(
                entries in proptest::collection::vec(arb_slowlog_entry(), 0..5),
            ) {
                let line = Response::Slowlog(entries.clone()).encode();
                prop_assert_eq!(
                    Response::parse(&line),
                    Ok(Response::Slowlog(entries)),
                    "line: {}", line
                );
            }

            #[test]
            fn explain_requests_round_trip(sig in any::<u64>(), handle in any::<u64>(), n in any::<usize>()) {
                for req in [
                    Request::Explain(ExplainTarget::Signature(sig)),
                    Request::Explain(ExplainTarget::Handle(handle)),
                    Request::Slowlog(n),
                ] {
                    let line = req.encode();
                    let parsed = Request::parse(&line);
                    prop_assert_eq!(parsed, Ok(req), "line: {}", line);
                }
            }

            #[test]
            fn stats_v2_encode_parse_round_trips(v2 in arb_stats_v2()) {
                let line = Response::StatsV2(v2.clone()).encode();
                prop_assert_eq!(
                    Response::parse(&line),
                    Ok(Response::StatsV2(v2)),
                    "line: {}", line
                );
            }

            #[test]
            fn stats_encode_parse_round_trips(
                pairs in proptest::collection::vec((arb_ident(), any::<u64>()), 0..12),
            ) {
                let resp = Response::Stats(pairs);
                let line = resp.encode();
                prop_assert_eq!(Response::parse(&line), Ok(resp), "line: {}", line);
            }
        }
    }
}
