//! The network service: an acceptor plus a small **fixed** reactor-thread
//! set serving any number of client connections — no thread-per-client,
//! no thread-per-job, anywhere.
//!
//! ```text
//!  clients (N connections)                 ┌──────────────────────────┐
//!     │ requests (lines)                   │        Runtime           │
//!     ▼                                    │  dispatchers ── pool     │
//!  acceptor ──registers──► conns table     └────────▲─────────┬───────┘
//!                              │                    │         │
//!              ┌───────────────┴──────────┐         │         │ completions
//!              ▼                          ▼         │         ▼
//!        reactor 0  …             reactor R-1   submit_tagged(global
//!        (owns conns with         (id % R == R-1)  token, shared set)
//!         id % R == 0)                    │         │
//!              │  nonblocking reads,      │   ┌─────┴──────────┐
//!              │  parse, submit ──────────┴──►│ CompletionSet  │
//!              │                              │ (bounded MPSC) │
//!              │  poll/wait_timeout ◄─────────┴────────────────┘
//!              ▼
//!        pending table: global token → (conn, client token, reply mode)
//!              │
//!              └─► format `done` line, write to the owning socket
//! ```
//!
//! Every reactor does two jobs per iteration: it *reads* its own subset
//! of connections (nonblocking sockets, partial lines buffered until the
//! `\n` arrives) and it *demultiplexes* completions — any reactor may pop
//! any finished job from the one shared [`CompletionSet`] and write the
//! response to the owning socket (writes are serialized per connection).
//! Tokens are namespaced: the server tags each submission with a private
//! global token and routes the completion back to the client's own token
//! through the pending table, so two clients reusing the same token can
//! never collide.

use crate::wire::{
    checksum, DoneMsg, DoneOutcome, Payload, ReplyMode, Request, Response, StatsV2, SubmitArgs,
    WireBody, WireSpec,
};
use smartapps_runtime::{Completion, CompletionSet, JobSpec, PatternSignature, Runtime};
use smartapps_telemetry::LogHistogram;
use smartapps_workloads::AccessPattern;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Request→response latency histogram: submission admitted to `done`
/// line written, per connection (`conn="<id>"`) plus the service-wide
/// aggregate series `conn="all"`.
pub const REQUEST_NS: &str = "smartapps_request_ns";
/// Counter of bytes read off a connection's socket, per connection.
pub const CONN_BYTES_IN: &str = "smartapps_conn_bytes_in";
/// Counter of bytes written to a connection's socket, per connection.
pub const CONN_BYTES_OUT: &str = "smartapps_conn_bytes_out";
/// Counter of microseconds reactors stalled on a connection's full send
/// buffer, per connection (the same stalls the write budget charges).
pub const CONN_STALL_US: &str = "smartapps_conn_stall_us";

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port (read it back via
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Reactor threads (clamped to ≥ 1).  Total service threads are
    /// `1 acceptor + reactors`, independent of the client count.
    pub reactors: usize,
    /// Bound of the shared completion queue.  Clamped to at least twice
    /// [`max_batch_jobs`](ServerConfig::max_batch_jobs) so one request's
    /// rejections can never fill the queue a lone reactor must drain.
    pub completion_capacity: usize,
    /// Maximum request-line length before the connection is failed
    /// (protocol error), protecting reactor memory from a runaway line.
    pub max_line_bytes: usize,
    /// Jobs allowed in one `batch` request.
    pub max_batch_jobs: usize,
    /// Admission cap on one job's total reduction references; oversized
    /// specs fail with a `rejected` error instead of being generated.
    pub max_refs_per_job: usize,
    /// Server-side pattern cache entries (specs → generated patterns).
    /// Repeat submissions of one spec share a single allocation, which
    /// is what lets cross-client jobs coalesce and fuse.
    pub pattern_cache: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            reactors: 2,
            completion_capacity: 4096,
            max_line_bytes: 1 << 20,
            max_batch_jobs: 1024,
            max_refs_per_job: 4_000_000,
            pattern_cache: 64,
        }
    }
}

/// One live client connection.  The socket is nonblocking; the owning
/// reactor reads it, while *any* reactor may write a completion to it
/// (serialized by the write half's mutex).
struct Conn {
    id: u64,
    /// Read half (owning reactor only).
    stream: TcpStream,
    /// Write half (any reactor, one writer at a time).
    writer: Mutex<TcpStream>,
    /// Bytes read but not yet terminated by `\n`.
    partial: Mutex<Vec<u8>>,
    /// Jobs submitted on this connection whose `done` line has not been
    /// written yet.
    in_flight: AtomicUsize,
    /// Total `done` lines written on this connection (the `drained`
    /// payload).
    completed: AtomicU64,
    /// A `drain` barrier is pending; reply when `in_flight` hits zero.
    drain_pending: AtomicBool,
    /// Cumulative microseconds reactors have spent waiting on this
    /// connection's full send buffer.  A peer that reads too slowly
    /// accumulates debt and is failed once it exceeds the stall budget
    /// — bounding how long one client can wedge the shared reactors,
    /// even if it trickle-reads just enough to finish each line.
    stall_debt_micros: AtomicU64,
    /// The connection failed (EOF, I/O error, protocol error); it is
    /// reaped once its in-flight jobs have been consumed.
    dead: AtomicBool,
    /// Per-connection telemetry series, resolved once at accept time
    /// into the runtime's shared registry (so one `metrics` exposition
    /// covers runtime and server): request→response latency (this
    /// connection plus the `conn="all"` aggregate), bytes in/out, and
    /// cumulative write-stall time.
    request_ns: Arc<LogHistogram>,
    request_ns_all: Arc<LogHistogram>,
    bytes_in: Arc<AtomicU64>,
    bytes_out: Arc<AtomicU64>,
    stall_us: Arc<AtomicU64>,
}

impl Conn {
    fn mark_dead(&self) {
        self.dead.store(true, Ordering::Release);
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// Routing entry for one submitted job: which connection gets the
/// response, under which client token, with how much payload — and when
/// the request was admitted, for the request-latency histogram.
struct PendingReply {
    conn: u64,
    token: u64,
    reply: ReplyMode,
    submitted_at: Instant,
}

/// Key of the server-side pattern cache: every field of the wire spec.
type SpecKey = (usize, usize, usize, u64, u8, u64, u64);

fn spec_key(s: &WireSpec) -> SpecKey {
    let (dist_tag, dist_bits) = match s.dist {
        crate::wire::WireDist::Uniform => (0u8, 0u64),
        crate::wire::WireDist::Zipf(z) => (1, z.to_bits()),
        crate::wire::WireDist::Clustered(w) => (2, w as u64),
    };
    (
        s.elements,
        s.iterations,
        s.refs_per_iter,
        s.coverage.to_bits(),
        dist_tag,
        dist_bits,
        s.seed,
    )
}

struct ServerShared {
    rt: Arc<Runtime>,
    set: CompletionSet,
    conns: Mutex<HashMap<u64, Arc<Conn>>>,
    pending: Mutex<HashMap<u64, PendingReply>>,
    patterns: Mutex<HashMap<SpecKey, Arc<AccessPattern>>>,
    next_global: AtomicU64,
    next_conn: AtomicU64,
    shutdown: AtomicBool,
    cfg: ServerConfig,
}

impl ServerShared {
    /// The cached (or freshly generated) pattern for a validated spec.
    fn pattern_for(&self, spec: &WireSpec) -> Arc<AccessPattern> {
        let key = spec_key(spec);
        let mut cache = self.patterns.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(pat) = cache.get(&key) {
            return pat.clone();
        }
        let pat = Arc::new(spec.to_pattern_spec().generate());
        // Evict one arbitrary entry at capacity (never the whole map: a
        // working set one larger than the cache must not regenerate
        // every pattern — and lose the shared-Arc coalescing — per miss).
        if cache.len() >= self.cfg.pattern_cache.max(1) {
            if let Some(victim) = cache.keys().next().copied() {
                cache.remove(&victim);
            }
        }
        cache.insert(key, pat.clone());
        pat
    }

    fn conn(&self, id: u64) -> Option<Arc<Conn>> {
        self.conns
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&id)
            .cloned()
    }
}

/// The running network service.  Dropping it (or calling
/// [`shutdown`](Server::shutdown)) stops accepting, lets already
/// submitted jobs drain their `done` lines, closes every connection, and
/// joins the acceptor and reactor threads.  The [`Runtime`] is shared,
/// not owned: shutting the server down leaves the runtime serving
/// in-process clients.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving `rt` with the given configuration.
    pub fn start(rt: Arc<Runtime>, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let capacity = cfg.completion_capacity.max(2 * cfg.max_batch_jobs.max(1));
        let reactors = cfg.reactors.max(1);
        let shared = Arc::new(ServerShared {
            rt,
            set: CompletionSet::with_capacity(capacity),
            conns: Mutex::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            patterns: Mutex::new(HashMap::new()),
            next_global: AtomicU64::new(1),
            next_conn: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            cfg,
        });
        let mut threads = Vec::with_capacity(reactors + 1);
        {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("smartapps-acceptor".into())
                    .spawn(move || acceptor_loop(&shared, listener))
                    .expect("spawn acceptor"),
            );
        }
        for r in 0..reactors {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("smartapps-reactor-{r}"))
                    .spawn(move || reactor_loop(&shared, r, reactors))
                    .expect("spawn reactor"),
            );
        }
        Ok(Server {
            local_addr,
            shared,
            threads,
        })
    }

    /// The bound address (resolves the ephemeral port of `addr: …:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently registered.
    pub fn connections(&self) -> usize {
        self.shared
            .conns
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .len()
    }

    /// Stop accepting, drain every submitted job's response, close all
    /// connections, and join the service threads.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        self.shared.shutdown.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.shared
            .conns
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clear();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn acceptor_loop(shared: &ServerShared, listener: TcpListener) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let writer = match stream.try_clone() {
                    Ok(w) => w,
                    Err(_) => continue,
                };
                let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                let registry = shared.rt.telemetry().registry();
                let label = id.to_string();
                let conn = Arc::new(Conn {
                    id,
                    stream,
                    writer: Mutex::new(writer),
                    partial: Mutex::new(Vec::new()),
                    in_flight: AtomicUsize::new(0),
                    completed: AtomicU64::new(0),
                    drain_pending: AtomicBool::new(false),
                    stall_debt_micros: AtomicU64::new(0),
                    dead: AtomicBool::new(false),
                    request_ns: registry.histogram(REQUEST_NS, "conn", &label),
                    request_ns_all: registry.histogram(REQUEST_NS, "conn", "all"),
                    bytes_in: registry.counter(CONN_BYTES_IN, "conn", &label),
                    bytes_out: registry.counter(CONN_BYTES_OUT, "conn", &label),
                    stall_us: registry.counter(CONN_STALL_US, "conn", &label),
                });
                shared
                    .conns
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .insert(id, conn);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

fn reactor_loop(shared: &ServerShared, id: usize, reactors: usize) {
    loop {
        let mut did_work = false;

        // Demultiplex finished jobs back to their sockets (any reactor
        // may deliver any completion).
        for _ in 0..256 {
            match shared.set.poll() {
                Some(c) => {
                    deliver(shared, c);
                    did_work = true;
                }
                None => break,
            }
        }

        // Read, parse, and submit from this reactor's own connections.
        let owned: Vec<Arc<Conn>> = {
            let conns = shared.conns.lock().unwrap_or_else(|p| p.into_inner());
            conns
                .values()
                .filter(|c| c.id as usize % reactors == id)
                .cloned()
                .collect()
        };
        for conn in &owned {
            if !conn.dead.load(Ordering::Acquire) {
                did_work |= service_reads(shared, conn);
            }
        }

        // Reap dead connections whose responses have all been consumed.
        {
            let mut conns = shared.conns.lock().unwrap_or_else(|p| p.into_inner());
            conns.retain(|_, c| {
                !(c.id as usize % reactors == id
                    && c.dead.load(Ordering::Acquire)
                    && c.in_flight.load(Ordering::Acquire) == 0)
            });
        }

        if shared.shutdown.load(Ordering::Acquire) {
            // Drain phase: no new reads, but every job already submitted
            // still gets its `done` line before the sockets close.
            let outstanding = !shared
                .pending
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .is_empty();
            if !outstanding {
                return;
            }
            if let Some(c) = shared.set.wait_timeout(Duration::from_millis(5)) {
                deliver(shared, c);
            }
            continue;
        }

        if !did_work {
            // Idle: sleep on the completion queue when jobs are in
            // flight (a completion is the likeliest next event), plain
            // sleep otherwise — either way the reactor never spins.
            if shared.set.in_flight() > 0 {
                if let Some(c) = shared.set.wait_timeout(Duration::from_millis(1)) {
                    deliver(shared, c);
                }
            } else {
                std::thread::sleep(Duration::from_micros(500));
            }
        }
    }
}

/// Read whatever the socket has, split complete lines, handle each.
/// Returns whether any byte was consumed.
fn service_reads(shared: &ServerShared, conn: &Arc<Conn>) -> bool {
    let mut any = false;
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match (&conn.stream).read(&mut chunk) {
            Ok(0) => {
                conn.mark_dead();
                return any;
            }
            Ok(n) => {
                any = true;
                conn.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                let mut partial = conn.partial.lock().unwrap_or_else(|p| p.into_inner());
                partial.extend_from_slice(&chunk[..n]);
                if partial.len() > shared.cfg.max_line_bytes {
                    drop(partial);
                    protocol_error(conn, "request line too long");
                    return any;
                }
                // Split out complete lines; keep the tail buffered.
                let mut start = 0usize;
                let mut lines: Vec<String> = Vec::new();
                while let Some(nl) = partial[start..].iter().position(|&b| b == b'\n') {
                    let line = String::from_utf8_lossy(&partial[start..start + nl]).into_owned();
                    lines.push(line);
                    start += nl + 1;
                }
                partial.drain(..start);
                drop(partial);
                for line in lines {
                    if conn.dead.load(Ordering::Acquire) {
                        break;
                    }
                    handle_line(shared, conn, line.trim_end_matches('\r'));
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return any,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.mark_dead();
                return any;
            }
        }
    }
}

fn handle_line(shared: &ServerShared, conn: &Arc<Conn>, line: &str) {
    if line.is_empty() {
        return;
    }
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => {
            protocol_error(conn, &format!("bad request: {e}"));
            return;
        }
    };
    match request {
        Request::Submit(args) => submit_jobs(shared, conn, vec![args]),
        Request::Batch(jobs) => {
            if jobs.len() > shared.cfg.max_batch_jobs {
                protocol_error(
                    conn,
                    &format!(
                        "batch of {} exceeds the {}-job limit",
                        jobs.len(),
                        shared.cfg.max_batch_jobs
                    ),
                );
                return;
            }
            submit_jobs(shared, conn, jobs);
        }
        Request::Stats => {
            write_response(conn, &Response::Stats(stats_pairs(shared)));
        }
        Request::StatsV2 => {
            let quarantined = shared
                .rt
                .quarantined_with_ttl()
                .into_iter()
                .map(|(sig, ttl)| (sig.0, ttl))
                .collect();
            write_response(
                conn,
                &Response::StatsV2(StatsV2 {
                    counters: stats_pairs(shared),
                    hists: shared.rt.telemetry().registry().summaries(),
                    quarantined,
                }),
            );
        }
        Request::Metrics => {
            // The exposition is multi-line, so it rides a length-prefixed
            // frame (`metrics <len>\n` + raw bytes) rather than a
            // `Response` line — the one framed reply in the protocol.
            let body = shared.rt.telemetry().registry().render_prometheus();
            let mut frame = format!("metrics {}\n", body.len()).into_bytes();
            frame.extend_from_slice(body.as_bytes());
            write_raw(conn, &frame);
        }
        Request::Drain => {
            // The barrier closes when in_flight hits zero.  Order
            // matters: arm the flag first, then check, so a completion
            // racing this request either sees the flag or leaves
            // in_flight nonzero for us to see.
            conn.drain_pending.store(true, Ordering::SeqCst);
            if conn.in_flight.load(Ordering::SeqCst) == 0
                && conn.drain_pending.swap(false, Ordering::SeqCst)
            {
                write_response(
                    conn,
                    &Response::Drained(conn.completed.load(Ordering::Relaxed)),
                );
            }
        }
        Request::Unquarantine(sig) => {
            let found = shared.rt.unquarantine(PatternSignature(sig));
            write_response(conn, &Response::Unquarantined(found));
        }
    }
}

/// The runtime's service counters as `(name, value)` pairs, sorted by
/// name — both `stats` and `stats v2` carry them, and the sort keeps the
/// wire encoding deterministic for identical server state.
fn stats_pairs(shared: &ServerShared) -> Vec<(String, u64)> {
    let s = shared.rt.stats();
    let mut pairs = vec![
        ("submitted".to_string(), s.submitted),
        ("completed".to_string(), s.completed),
        ("batches".to_string(), s.batches),
        ("coalesced".to_string(), s.coalesced),
        ("profile_hits".to_string(), s.profile_hits),
        ("inspections".to_string(), s.inspections),
        ("evictions".to_string(), s.evictions),
        ("steals".to_string(), s.steals),
        ("fused_sweeps".to_string(), s.fused_sweeps),
        ("fused_jobs".to_string(), s.fused_jobs),
        ("pclr_offloads".to_string(), s.pclr_offloads),
        ("sim_cycles".to_string(), s.sim_cycles),
        ("calibration_updates".to_string(), s.calibration_updates),
        ("explored".to_string(), s.explored),
        ("fuse_probes".to_string(), s.fuse_probes),
        ("quarantined".to_string(), s.quarantined),
    ];
    pairs.sort();
    pairs
}

/// Validate, admit, and submit a group of jobs as one runtime batch.
/// Invalid members fail with `done … err rejected` without reaching the
/// runtime; valid members ride `submit_batch_tagged` so same-class
/// members coalesce (and same-spec members can fuse) server-side.
fn submit_jobs(shared: &ServerShared, conn: &Arc<Conn>, jobs: Vec<SubmitArgs>) {
    let mut accepted: Vec<(u64, JobSpec)> = Vec::with_capacity(jobs.len());
    for args in jobs {
        if let Err(e) = args.spec.validate() {
            reject(conn, args.token, &e);
            continue;
        }
        if args.spec.total_refs() > shared.cfg.max_refs_per_job {
            reject(
                conn,
                args.token,
                &format!(
                    "job of {} references exceeds the {}-reference admission cap",
                    args.spec.total_refs(),
                    shared.cfg.max_refs_per_job
                ),
            );
            continue;
        }
        let pattern = shared.pattern_for(&args.spec);
        let body = move |_i: usize, r: usize| smartapps_workloads::contribution_i64(r);
        let spec = match args.body {
            WireBody::Sum => JobSpec::i64(pattern, body),
            WireBody::Mul(k) => JobSpec::i64(pattern, move |_i, r| {
                smartapps_workloads::contribution_i64(r).wrapping_mul(k)
            }),
            WireBody::Panic => JobSpec::i64(pattern, |_i, _r| -> i64 {
                panic!("wire-requested panic body")
            }),
        };
        let global = shared.next_global.fetch_add(1, Ordering::Relaxed);
        shared
            .pending
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(
                global,
                PendingReply {
                    conn: conn.id,
                    token: args.token,
                    reply: args.reply,
                    submitted_at: Instant::now(),
                },
            );
        conn.in_flight.fetch_add(1, Ordering::SeqCst);
        accepted.push((global, spec));
    }
    if !accepted.is_empty() {
        shared.rt.submit_batch_tagged(accepted, &shared.set);
    }
}

/// Fail one submission before it reaches the runtime.
fn reject(conn: &Arc<Conn>, token: u64, message: &str) {
    write_response(
        conn,
        &Response::Done(DoneMsg {
            token,
            outcome: DoneOutcome::Err {
                kind: "rejected".into(),
                signature: 0,
                message: message.to_string(),
            },
        }),
    );
    conn.completed.fetch_add(1, Ordering::Relaxed);
}

/// Route one completion from the shared set back to its socket.
fn deliver(shared: &ServerShared, completion: Completion) {
    let Some(PendingReply {
        conn,
        token,
        reply,
        submitted_at,
    }) = shared
        .pending
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .remove(&completion.token)
    else {
        return; // unknown global token: nothing to route
    };
    let Some(conn) = shared.conn(conn) else {
        return; // connection was reaped; drop the response
    };
    let request_ns = submitted_at.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    conn.request_ns.record(request_ns);
    conn.request_ns_all.record(request_ns);
    let r = completion.result;
    let outcome = match r.error {
        Some(e) => DoneOutcome::Err {
            kind: e.kind.as_str().to_string(),
            signature: completion.signature.0,
            message: e.message,
        },
        None => {
            let values = r.output.as_i64().map(<[i64]>::to_vec).unwrap_or_default();
            DoneOutcome::Ok {
                scheme: r.scheme.abbrev().to_string(),
                elapsed_ns: r.elapsed.as_nanos().min(u64::MAX as u128) as u64,
                profile_hit: r.profile_hit,
                fused_with: r.fused_with,
                batched_with: r.batched_with,
                payload: match reply {
                    ReplyMode::Ack => Payload::Checksum {
                        len: values.len(),
                        sum: checksum(&values),
                    },
                    ReplyMode::Full => Payload::Full(values),
                },
            }
        }
    };
    if !conn.dead.load(Ordering::Acquire) {
        write_response(&conn, &Response::Done(DoneMsg { token, outcome }));
    }
    conn.completed.fetch_add(1, Ordering::Relaxed);
    let left = conn.in_flight.fetch_sub(1, Ordering::SeqCst) - 1;
    if left == 0
        && conn.drain_pending.swap(false, Ordering::SeqCst)
        && !conn.dead.load(Ordering::Acquire)
    {
        write_response(
            &conn,
            &Response::Drained(conn.completed.load(Ordering::Relaxed)),
        );
    }
}

/// Protocol-level failure: tell the client why, then fail the connection.
fn protocol_error(conn: &Arc<Conn>, message: &str) {
    write_response(conn, &Response::Error(message.to_string()));
    conn.mark_dead();
}

/// Total stall (across all lines) one connection may inflict on the
/// shared reactors before it is failed.  Debt decays on stall-free
/// writes, so a briefly slow but otherwise healthy peer recovers; a
/// trickle-reader that stalls every line cannot reset it and dies
/// within the budget no matter how it paces its reads.
const WRITE_STALL_BUDGET: Duration = Duration::from_secs(5);

/// Write one response line ([`write_raw`] handles the socket and the
/// stall budget).
fn write_response(conn: &Conn, response: &Response) {
    let mut line = response.encode();
    line.push('\n');
    write_raw(conn, line.as_bytes());
}

/// Write one outbound frame (a response line, or the length-prefixed
/// `metrics` reply), handling the nonblocking socket's partial writes.
/// Stall time (the peer's send buffer full) is charged against the
/// connection's cumulative [`WRITE_STALL_BUDGET`]; exceeding it fails
/// the connection instead of wedging the reactors — any reactor may
/// deliver to any socket, so an unbounded per-frame grace would let one
/// slow reader stall completion draining service-wide.  Bytes actually
/// written and stall time are also recorded into the connection's
/// telemetry counters.
fn write_raw(conn: &Conn, bytes: &[u8]) {
    let mut written = 0usize;
    let mut stalled = Duration::ZERO;
    let budget = WRITE_STALL_BUDGET.saturating_sub(Duration::from_micros(
        conn.stall_debt_micros.load(Ordering::Relaxed),
    ));
    {
        let mut w = conn.writer.lock().unwrap_or_else(|p| p.into_inner());
        while written < bytes.len() {
            match w.write(&bytes[written..]) {
                Ok(0) => {
                    conn.mark_dead();
                    break;
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if stalled >= budget {
                        conn.mark_dead();
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(100));
                    stalled += Duration::from_micros(100);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.mark_dead();
                    break;
                }
            }
        }
    }
    conn.bytes_out.fetch_add(written as u64, Ordering::Relaxed);
    if stalled.is_zero() {
        // A stall-free frame halves the accumulated debt.
        let debt = conn.stall_debt_micros.load(Ordering::Relaxed);
        if debt > 0 {
            conn.stall_debt_micros.store(debt / 2, Ordering::Relaxed);
        }
    } else {
        let us = stalled.as_micros().min(u64::MAX as u128) as u64;
        conn.stall_debt_micros.fetch_add(us, Ordering::Relaxed);
        conn.stall_us.fetch_add(us, Ordering::Relaxed);
    }
}
