//! The network service: an epoll-blocked acceptor plus a small **fixed**
//! reactor-thread set serving any number of client connections — no
//! thread-per-client, no thread-per-job, and no sleep-polling anywhere.
//!
//! ```text
//!  clients (N connections)                 ┌──────────────────────────┐
//!     │ requests (lines or frames)         │        Runtime           │
//!     ▼                                    │  dispatchers ── pool     │
//!  acceptor ──inbox+wake──► owning reactor └────────▲─────────┬───────┘
//!  (epoll: listener)                                │         │
//!              ┌──────────────────────────┐         │         │ completions
//!              ▼                          ▼         │         ▼
//!        reactor 0  …             reactor R-1   submit_tagged(global
//!        (epoll: waker +          (owns conns      token, shared set)
//!         conns with id%R==0)      id % R == R-1)   │
//!              │  readiness-blocked reads,    ┌─────┴──────────┐
//!              │  parse, submit ─────────────►│ CompletionSet  │
//!              │                              │ (bounded MPSC) │
//!              │  poll ◄──wake-hook───────────┴────────────────┘
//!              ▼
//!        pending table: global token → (conn, client token, reply mode)
//!              │
//!              └─► encode `done`, write (or buffer) to the owning socket
//! ```
//!
//! **Readiness, not polling.**  Each reactor owns one `epoll` instance
//! holding its subset of connections (id % R) plus an `eventfd` waker.
//! With nothing to do it blocks in `epoll_wait` with **no timeout**: a
//! thousand idle connections cost zero wakeups (the
//! [`REACTOR_IDLE_WAKEUPS`] counter is the regression guard).  Three
//! things wake it: socket readiness (readable bytes, writable space,
//! hangup), the acceptor handing it a new connection (inbox + waker),
//! and the completion queue's wake hook (a dispatcher finished a job).
//! Any reactor may *deliver* any completion; only the owner touches a
//! connection's read half and epoll registration, so foreign reactors
//! request interest changes through the owner's attention list + waker.
//!
//! **Writes never block a reactor.**  A full peer send buffer used to
//! sleep-loop inside the writing reactor; now the unwritten tail lands
//! in the connection's outbound buffer, the owner arms `EPOLLOUT`, and
//! flushes on writability.  The write-stall budget survives the
//! rewrite: cumulative stall time (buffer-resident time) is charged as
//! debt, decayed by stall-free writes, and a connection exceeding
//! [`ServerConfig::write_stall_budget`] is failed — bounding how long
//! one slow reader can hold reactor-shared memory.
//!
//! Tokens are namespaced: the server tags each submission with a private
//! global token and routes the completion back to the client's own token
//! through the pending table, so two clients reusing the same token can
//! never collide.

use crate::wire::{
    checksum, checksum_f64, DoneMsg, DoneOutcome, ExplainInfo, ExplainTarget, Payload, ReplyMode,
    Request, Response, SlowlogEntry, StatsV2, SubmitArgs, UploadArgs, WireCandidate, WireGate,
    WireSource, WireSpec, MAX_SLOWLOG,
};
use crate::wire2::{self, FrameStep};
use epoll::{Epoll, Event, Interest, Waker};
use smartapps_core::{DecisionRecord, GateVerdict};
use smartapps_runtime::telemetry::{domain_label, scheme_from_code};
use smartapps_runtime::{Completion, CompletionSet, JobSpec, PatternSignature, Runtime, Stage};
use smartapps_telemetry::LogHistogram;
use smartapps_workloads::AccessPattern;
use std::collections::{HashMap, HashSet};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Request→response latency histogram: submission admitted to `done`
/// line written, per connection (`conn="<id>"`) plus the service-wide
/// aggregate series `conn="all"`.
pub const REQUEST_NS: &str = "smartapps_request_ns";
/// Counter of bytes read off a connection's socket, per connection.
pub const CONN_BYTES_IN: &str = "smartapps_conn_bytes_in";
/// Counter of bytes written to a connection's socket, per connection.
pub const CONN_BYTES_OUT: &str = "smartapps_conn_bytes_out";
/// Counter of microseconds a connection's responses sat in its outbound
/// buffer waiting for the peer to read (the same stall time the write
/// budget charges), per connection.
pub const CONN_STALL_US: &str = "smartapps_conn_stall_us";
/// Counter of `epoll_wait` returns, per reactor (`reactor="<r>"`).
pub const REACTOR_WAKEUPS: &str = "smartapps_reactor_wakeups";
/// Counter of wakeups that found nothing to do, per reactor.  Blocked
/// reactors should essentially never produce these — the counter
/// replaces the removed sleep-poll as the "are we spinning?" regression
/// signal (`tests/soak_epoll.rs` asserts it stays near zero).
pub const REACTOR_IDLE_WAKEUPS: &str = "smartapps_reactor_idle_wakeups";
/// Counter of CSR pattern uploads by outcome
/// (`outcome="fresh"|"dedup"|"rejected"`).
pub const UPLOADS: &str = "smartapps_uploads";

/// Reserved epoll token for each thread's eventfd waker.
const WAKER_TOKEN: u64 = u64::MAX;
/// Epoll token of the acceptor's listener.
const LISTENER_TOKEN: u64 = 0;
/// Hard cap on one connection's outbound buffer; a peer that lets this
/// much pile up is failed immediately (the stall budget would get it
/// anyway — this bounds memory, not time).
const OUTBUF_LIMIT_BYTES: usize = 256 * 1024 * 1024;
/// Reactor wait bound while any owned connection has buffered output:
/// the budget check must tick even if the peer never drains its socket.
const STALL_TICK: Duration = Duration::from_millis(25);
/// Reactor wait bound during shutdown drain (poll the pending table).
const SHUTDOWN_TICK: Duration = Duration::from_millis(5);
/// How long an `upgrade bin` request waits for the connection's
/// in-flight count to reach zero before it is a protocol error.  The
/// counter is decremented just *after* each `done` write, so a client
/// that already read every response can race a hair ahead of the last
/// decrement — and under load that last `done` may still be in another
/// reactor's delivery queue.  A deadline (rather than a fixed iteration
/// count) makes the grace independent of scheduler timing.
const UPGRADE_GRACE: Duration = Duration::from_millis(250);

/// Wire protocol a connection is currently speaking.
const MODE_TEXT: u8 = 0;
const MODE_BIN: u8 = 1;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port (read it back via
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Reactor threads (clamped to ≥ 1).  Total service threads are
    /// `1 acceptor + reactors`, independent of the client count.
    pub reactors: usize,
    /// Bound of the shared completion queue.  Clamped to at least twice
    /// [`max_batch_jobs`](ServerConfig::max_batch_jobs) so one request's
    /// rejections can never fill the queue a lone reactor must drain.
    pub completion_capacity: usize,
    /// Maximum request-line length before the connection is failed
    /// (protocol error), protecting reactor memory from a runaway line.
    pub max_line_bytes: usize,
    /// Maximum binary wire v2 frame length (kind + body) either
    /// direction accepts on an upgraded connection.
    pub max_frame_bytes: u32,
    /// Jobs allowed in one `batch` request.
    pub max_batch_jobs: usize,
    /// Admission cap on one job's total reduction references; oversized
    /// specs (and uploads) fail with a `rejected` error instead of being
    /// generated or interned.
    pub max_refs_per_job: usize,
    /// Server-side pattern cache entries (specs → generated patterns).
    /// Repeat submissions of one spec share a single allocation, which
    /// is what lets cross-client jobs coalesce and fuse.  (Uploaded CSR
    /// patterns live in the runtime's [`PatternInterner`], not here.)
    ///
    /// [`PatternInterner`]: smartapps_runtime::PatternInterner
    pub pattern_cache: usize,
    /// Total time one connection's responses may sit stalled in its
    /// outbound buffer (decayed by stall-free writes) before the
    /// connection is failed.  Bounds how long a stuck reader can hold
    /// reactor-shared memory.
    pub write_stall_budget: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            reactors: 2,
            completion_capacity: 4096,
            max_line_bytes: 1 << 20,
            max_frame_bytes: wire2::DEFAULT_MAX_FRAME_BYTES,
            max_batch_jobs: 1024,
            max_refs_per_job: 4_000_000,
            pattern_cache: 64,
            write_stall_budget: Duration::from_secs(5),
        }
    }
}

/// Read-side state of one connection (owning reactor only): the
/// text-mode partial line and the binary-mode frame splitter.  Both
/// exist because an `upgrade bin` line may arrive with pipelined frames
/// already behind it in the same read.
struct ReadState {
    partial: Vec<u8>,
    frames: wire2::FrameBuf,
}

/// Write-side state of one connection: the write half plus the outbound
/// buffer a full peer socket spills into.  `stall_since` is set while
/// the buffer is nonempty (the budget clock).
struct OutBuf {
    stream: TcpStream,
    buf: Vec<u8>,
    stall_since: Option<Instant>,
}

/// One live client connection.  The socket is nonblocking; the owning
/// reactor (id % reactors) reads it and manages its epoll registration,
/// while *any* reactor may write a completion to it (serialized by the
/// out-half mutex; unwritable tails are buffered and flushed by the
/// owner on `EPOLLOUT`).
struct Conn {
    id: u64,
    /// Read half (owning reactor only); also the registered fd.
    stream: TcpStream,
    /// Write half + outbound buffer (any reactor, one at a time).
    out: Mutex<OutBuf>,
    /// Read-side buffers (owning reactor only).
    rd: Mutex<ReadState>,
    /// [`MODE_TEXT`] or [`MODE_BIN`] (flipped once by `upgrade bin`).
    mode: AtomicU8,
    /// Jobs submitted on this connection whose `done` has not been
    /// written yet.
    in_flight: AtomicUsize,
    /// Total `done` messages written on this connection (the `drained`
    /// payload).
    completed: AtomicU64,
    /// A `drain` barrier is pending; reply when `in_flight` hits zero.
    drain_pending: AtomicBool,
    /// Cumulative microseconds this connection's output sat stalled.
    /// A peer that reads too slowly accumulates debt and is failed once
    /// it exceeds the stall budget — bounding how long one client can
    /// hold reactor-shared memory, even if it trickle-reads just enough
    /// to finish each response.
    stall_debt_micros: AtomicU64,
    /// The connection failed (EOF, I/O error, protocol error); it is
    /// reaped once its in-flight jobs have been consumed.
    dead: AtomicBool,
    /// Per-connection telemetry series, resolved once at accept time
    /// into the runtime's shared registry (so one `metrics` exposition
    /// covers runtime and server).
    request_ns: Arc<LogHistogram>,
    request_ns_all: Arc<LogHistogram>,
    bytes_in: Arc<AtomicU64>,
    bytes_out: Arc<AtomicU64>,
    stall_us: Arc<AtomicU64>,
}

impl Conn {
    fn mark_dead(&self) {
        self.dead.store(true, Ordering::Release);
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    fn binary(&self) -> bool {
        self.mode.load(Ordering::Acquire) == MODE_BIN
    }
}

#[cfg(unix)]
fn raw_fd<T: std::os::fd::AsRawFd>(s: &T) -> epoll::RawFd {
    s.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd<T>(_s: &T) -> epoll::RawFd {
    -1
}

/// Routing entry for one submitted job: which connection gets the
/// response, under which client token, with how much payload and which
/// element type — and when the request was admitted, for the
/// request-latency histogram.
struct PendingReply {
    conn: u64,
    token: u64,
    reply: ReplyMode,
    f64body: bool,
    submitted_at: Instant,
}

/// Key of the server-side pattern cache: every field of the wire spec.
type SpecKey = (usize, usize, usize, u64, u8, u64, u64);

fn spec_key(s: &WireSpec) -> SpecKey {
    let (dist_tag, dist_bits) = match s.dist {
        crate::wire::WireDist::Uniform => (0u8, 0u64),
        crate::wire::WireDist::Zipf(z) => (1, z.to_bits()),
        crate::wire::WireDist::Clustered(w) => (2, w as u64),
    };
    (
        s.elements,
        s.iterations,
        s.refs_per_iter,
        s.coverage.to_bits(),
        dist_tag,
        dist_bits,
        s.seed,
    )
}

/// Server-side spec→pattern cache with deterministic least-recently-used
/// eviction.  Each hit restamps its entry; at capacity the entry with
/// the oldest stamp is evicted — unlike an iteration-order victim, a
/// repeatedly-hit pattern can never be dropped while cold ones survive,
/// so cross-client coalescing on a hot spec is stable under churn.
struct PatternCache {
    entries: HashMap<SpecKey, (Arc<AccessPattern>, u64)>,
    /// Monotonic use counter (the LRU clock).
    tick: u64,
}

impl PatternCache {
    fn new() -> Self {
        PatternCache {
            entries: HashMap::new(),
            tick: 0,
        }
    }

    /// The cached pattern for `key`, or `generate()`'s result after
    /// evicting the least-recently-used entry at `capacity`.  (Never the
    /// whole map: a working set one larger than the cache must not
    /// regenerate every pattern — and lose the shared-Arc coalescing —
    /// per miss.)
    fn get_or_insert_with(
        &mut self,
        key: SpecKey,
        capacity: usize,
        generate: impl FnOnce() -> Arc<AccessPattern>,
    ) -> Arc<AccessPattern> {
        self.tick += 1;
        let tick = self.tick;
        if let Some((pat, stamp)) = self.entries.get_mut(&key) {
            *stamp = tick;
            return pat.clone();
        }
        let pat = generate();
        if self.entries.len() >= capacity.max(1) {
            if let Some(&victim) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k)
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(key, (pat.clone(), tick));
        pat
    }
}

/// Per-reactor rendezvous state: the waker that interrupts its
/// `epoll_wait`, the inbox the acceptor hands new connections through,
/// the attention list other threads request write-interest service on,
/// and the wakeup counters the soak test audits.
struct ReactorHandle {
    waker: Arc<Waker>,
    inbox: Mutex<Vec<Arc<Conn>>>,
    attention: Mutex<Vec<u64>>,
    wakeups: Arc<AtomicU64>,
    idle_wakeups: Arc<AtomicU64>,
}

struct ServerShared {
    rt: Arc<Runtime>,
    set: CompletionSet,
    conns: Mutex<HashMap<u64, Arc<Conn>>>,
    pending: Mutex<HashMap<u64, PendingReply>>,
    patterns: Mutex<PatternCache>,
    reactors: Vec<ReactorHandle>,
    acceptor_waker: Waker,
    next_global: AtomicU64,
    next_conn: AtomicU64,
    shutdown: AtomicBool,
    uploads_fresh: Arc<AtomicU64>,
    uploads_dedup: Arc<AtomicU64>,
    uploads_rejected: Arc<AtomicU64>,
    cfg: ServerConfig,
}

impl ServerShared {
    /// The cached (or freshly generated) pattern for a validated spec.
    fn pattern_for(&self, spec: &WireSpec) -> Arc<AccessPattern> {
        self.patterns
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get_or_insert_with(spec_key(spec), self.cfg.pattern_cache, || {
                Arc::new(spec.to_pattern_spec().generate())
            })
    }

    fn conn(&self, id: u64) -> Option<Arc<Conn>> {
        self.conns
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&id)
            .cloned()
    }

    /// Ask a connection's owning reactor to service its write interest
    /// (and reap state) at its next wakeup.
    fn nudge_owner(&self, conn_id: u64) {
        let h = &self.reactors[conn_id as usize % self.reactors.len()];
        h.attention
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(conn_id);
        h.waker.wake();
    }
}

/// The running network service.  Dropping it (or calling
/// [`shutdown`](Server::shutdown)) stops accepting, lets already
/// submitted jobs drain their `done` responses, closes every
/// connection, and joins the acceptor and reactor threads.  The
/// [`Runtime`] is shared, not owned: shutting the server down leaves
/// the runtime serving in-process clients.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving `rt` with the given configuration.
    pub fn start(rt: Arc<Runtime>, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let capacity = cfg.completion_capacity.max(2 * cfg.max_batch_jobs.max(1));
        let reactors = cfg.reactors.max(1);
        let registry = rt.telemetry().registry();
        let mut handles = Vec::with_capacity(reactors);
        for r in 0..reactors {
            let label = r.to_string();
            handles.push(ReactorHandle {
                waker: Arc::new(Waker::new()?),
                inbox: Mutex::new(Vec::new()),
                attention: Mutex::new(Vec::new()),
                wakeups: registry.counter(REACTOR_WAKEUPS, "reactor", &label),
                idle_wakeups: registry.counter(REACTOR_IDLE_WAKEUPS, "reactor", &label),
            });
        }
        let shared = Arc::new(ServerShared {
            set: CompletionSet::with_capacity(capacity),
            conns: Mutex::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            patterns: Mutex::new(PatternCache::new()),
            reactors: handles,
            acceptor_waker: Waker::new()?,
            next_global: AtomicU64::new(1),
            next_conn: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            uploads_fresh: registry.counter(UPLOADS, "outcome", "fresh"),
            uploads_dedup: registry.counter(UPLOADS, "outcome", "dedup"),
            uploads_rejected: registry.counter(UPLOADS, "outcome", "rejected"),
            rt,
            cfg,
        });
        // Completion pushes must interrupt epoll-blocked reactors.  The
        // hook round-robins single wakes (waking all R per completion
        // would stampede); any woken reactor drains the queue to empty,
        // so one wake per push suffices.  The closure captures only the
        // wakers — capturing `shared` would cycle through the
        // CompletionSet that stores the hook.
        {
            let wakers: Vec<Arc<Waker>> = shared.reactors.iter().map(|h| h.waker.clone()).collect();
            let rr = AtomicUsize::new(0);
            shared.set.set_wake_hook(move || {
                let r = rr.fetch_add(1, Ordering::Relaxed) % wakers.len();
                wakers[r].wake();
            });
        }
        let mut threads = Vec::with_capacity(reactors + 1);
        {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("smartapps-acceptor".into())
                    .spawn(move || acceptor_loop(&shared, listener))
                    .expect("spawn acceptor"),
            );
        }
        for r in 0..reactors {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("smartapps-reactor-{r}"))
                    .spawn(move || reactor_loop(&shared, r))
                    .expect("spawn reactor"),
            );
        }
        Ok(Server {
            local_addr,
            shared,
            threads,
        })
    }

    /// The bound address (resolves the ephemeral port of `addr: …:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently registered.
    pub fn connections(&self) -> usize {
        self.shared
            .conns
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .len()
    }

    /// Total `epoll_wait` returns across all reactors.
    pub fn reactor_wakeups(&self) -> u64 {
        self.shared
            .reactors
            .iter()
            .map(|h| h.wakeups.load(Ordering::Relaxed))
            .sum()
    }

    /// Total reactor wakeups that found nothing to do.  Near-zero while
    /// idle is the epoll contract — this is what the soak test asserts
    /// in place of the removed sleep-poll loop.
    pub fn reactor_idle_wakeups(&self) -> u64 {
        self.shared
            .reactors
            .iter()
            .map(|h| h.idle_wakeups.load(Ordering::Relaxed))
            .sum()
    }

    /// Stop accepting, drain every submitted job's response, close all
    /// connections, and join the service threads.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.acceptor_waker.wake();
        for h in &self.shared.reactors {
            h.waker.wake();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Break the wake-hook's shared-state cycle and drop every conn.
        self.shared.set.clear_wake_hook();
        self.shared
            .conns
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clear();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn acceptor_loop(shared: &ServerShared, listener: TcpListener) {
    let Ok(ep) = Epoll::new() else { return };
    let _ = ep.add(raw_fd(&listener), LISTENER_TOKEN, Interest::READ);
    if shared.acceptor_waker.fd() >= 0 {
        let _ = ep.add(shared.acceptor_waker.fd(), WAKER_TOKEN, Interest::READ);
    }
    let mut events: Vec<Event> = Vec::new();
    while !shared.shutdown.load(Ordering::Acquire) {
        let _ = ep.wait(&mut events, 16, None);
        shared.acceptor_waker.drain();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => register_conn(shared, stream),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Transient accept failure (EMFILE, aborted conn):
                    // don't spin on a level-triggered error state.
                    std::thread::sleep(Duration::from_millis(1));
                    break;
                }
            }
        }
    }
}

/// Set up one accepted connection and hand it to its owning reactor.
fn register_conn(shared: &ServerShared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    let registry = shared.rt.telemetry().registry();
    let label = id.to_string();
    let conn = Arc::new(Conn {
        id,
        stream,
        out: Mutex::new(OutBuf {
            stream: writer,
            buf: Vec::new(),
            stall_since: None,
        }),
        rd: Mutex::new(ReadState {
            partial: Vec::new(),
            frames: wire2::FrameBuf::new(),
        }),
        mode: AtomicU8::new(MODE_TEXT),
        in_flight: AtomicUsize::new(0),
        completed: AtomicU64::new(0),
        drain_pending: AtomicBool::new(false),
        stall_debt_micros: AtomicU64::new(0),
        dead: AtomicBool::new(false),
        request_ns: registry.histogram(REQUEST_NS, "conn", &label),
        request_ns_all: registry.histogram(REQUEST_NS, "conn", "all"),
        bytes_in: registry.counter(CONN_BYTES_IN, "conn", &label),
        bytes_out: registry.counter(CONN_BYTES_OUT, "conn", &label),
        stall_us: registry.counter(CONN_STALL_US, "conn", &label),
    });
    shared
        .conns
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .insert(id, conn.clone());
    let h = &shared.reactors[id as usize % shared.reactors.len()];
    h.inbox.lock().unwrap_or_else(|p| p.into_inner()).push(conn);
    h.waker.wake();
}

/// Reactor-local registration state for one owned connection.
struct OwnedEntry {
    conn: Arc<Conn>,
    /// The fd is currently in this reactor's epoll set.
    registered: bool,
    /// `EPOLLOUT` is currently armed.
    want_write: bool,
}

fn reactor_loop(shared: &Arc<ServerShared>, r: usize) {
    let handle = &shared.reactors[r];
    let Ok(ep) = Epoll::new() else { return };
    if handle.waker.fd() >= 0 {
        let _ = ep.add(handle.waker.fd(), WAKER_TOKEN, Interest::READ);
    }
    let mut owned: HashMap<u64, OwnedEntry> = HashMap::new();
    // Owned connections with buffered output: flushed and budget-checked
    // every wakeup, and the reason waits are bounded while nonempty.
    let mut stalled: HashSet<u64> = HashSet::new();
    let mut events: Vec<Event> = Vec::new();
    loop {
        let shutting_down = shared.shutdown.load(Ordering::Acquire);
        // The load-bearing line: nothing to flush, nothing pending →
        // block indefinitely.  Idle connections cost no wakeups.
        let timeout = if shutting_down {
            Some(SHUTDOWN_TICK)
        } else if !stalled.is_empty() {
            Some(STALL_TICK)
        } else {
            None
        };
        let _ = ep.wait(&mut events, 256, timeout);
        handle.wakeups.fetch_add(1, Ordering::Relaxed);
        let mut did_work = false;

        // New connections from the acceptor.
        {
            let mut inbox = handle.inbox.lock().unwrap_or_else(|p| p.into_inner());
            for conn in inbox.drain(..) {
                did_work = true;
                let fd = raw_fd(&conn.stream);
                if ep.add(fd, conn.id, Interest::READ).is_err() {
                    conn.mark_dead();
                }
                owned.insert(
                    conn.id,
                    OwnedEntry {
                        conn,
                        registered: true,
                        want_write: false,
                    },
                );
            }
        }

        // Attention requests: another thread buffered output on (or
        // killed) one of our connections.
        {
            let mut attention = handle.attention.lock().unwrap_or_else(|p| p.into_inner());
            for id in attention.drain(..) {
                if owned.contains_key(&id) {
                    stalled.insert(id);
                    did_work = true;
                }
            }
        }

        // Socket readiness.
        for ev in std::mem::take(&mut events) {
            if ev.token == WAKER_TOKEN {
                handle.waker.drain();
                continue;
            }
            let Some(entry) = owned.get(&ev.token) else {
                continue; // reaped while the event was in flight
            };
            let conn = entry.conn.clone();
            did_work = true;
            if conn.is_dead() {
                continue; // reaped below
            }
            if ev.writable {
                stalled.insert(conn.id);
            }
            if (ev.readable || ev.hangup) && !shutting_down {
                service_reads(shared, &conn);
            } else if ev.hangup {
                conn.mark_dead();
            }
        }

        // Flush buffered output; arm/disarm EPOLLOUT; enforce the
        // write-stall budget.
        stalled.retain(|id| {
            let Some(entry) = owned.get_mut(id) else {
                return false;
            };
            let conn = entry.conn.clone();
            if conn.is_dead() {
                return false;
            }
            did_work = true;
            let drained = flush_conn(&conn, &shared.cfg);
            let want = !drained;
            if entry.registered && entry.want_write != want {
                let interest = if want {
                    Interest::READ_WRITE
                } else {
                    Interest::READ
                };
                if ep.modify(raw_fd(&conn.stream), conn.id, interest).is_ok() {
                    entry.want_write = want;
                }
            }
            want
        });

        // Demultiplex finished jobs back to their sockets (any reactor
        // may deliver any completion); drain to empty so a single wake
        // covers every queued event.
        while let Some(c) = shared.set.poll() {
            deliver(shared, c);
            did_work = true;
        }

        // Reap dead connections whose responses have all been consumed.
        owned.retain(|id, entry| {
            let conn = &entry.conn;
            if !conn.is_dead() {
                return true;
            }
            if entry.registered {
                let _ = ep.delete(raw_fd(&conn.stream));
                entry.registered = false;
            }
            if conn.in_flight.load(Ordering::Acquire) != 0 {
                return true; // completions still owed; keep routable
            }
            shared
                .conns
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .remove(id);
            did_work = true;
            false
        });

        if shutting_down {
            // Drain phase: no new reads, but every job already submitted
            // still gets its `done` before the sockets close.
            let outstanding = !shared
                .pending
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .is_empty();
            if !outstanding {
                return;
            }
        } else if !did_work {
            handle.idle_wakeups.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Try to flush one connection's outbound buffer.  Returns whether the
/// buffer is now empty; on drain, the accumulated stall time is charged
/// to the connection's debt and telemetry.
fn flush_conn(conn: &Conn, cfg: &ServerConfig) -> bool {
    let mut out = conn.out.lock().unwrap_or_else(|p| p.into_inner());
    let mut written = 0usize;
    while written < out.buf.len() {
        match (&out.stream).write(&out.buf[written..]) {
            Ok(0) => {
                conn.mark_dead();
                break;
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                conn.mark_dead();
                break;
            }
        }
    }
    if written > 0 {
        out.buf.drain(..written);
        conn.bytes_out.fetch_add(written as u64, Ordering::Relaxed);
    }
    if out.buf.is_empty() {
        if let Some(t0) = out.stall_since.take() {
            let us = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
            conn.stall_us.fetch_add(us, Ordering::Relaxed);
            conn.stall_debt_micros.fetch_add(us, Ordering::Relaxed);
        }
        return true;
    }
    // Still stalled: fail the connection once accumulated debt plus the
    // current stall exceeds the budget.
    if let Some(t0) = out.stall_since {
        let current = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let debt = conn.stall_debt_micros.load(Ordering::Relaxed);
        let budget = cfg.write_stall_budget.as_micros().min(u64::MAX as u128) as u64;
        if debt.saturating_add(current) > budget {
            conn.mark_dead();
        }
    }
    false
}

/// Read whatever the socket has, feed the connection's protocol buffer,
/// handle every complete request.
fn service_reads(shared: &ServerShared, conn: &Arc<Conn>) {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match (&conn.stream).read(&mut chunk) {
            Ok(0) => {
                conn.mark_dead();
                return;
            }
            Ok(n) => {
                conn.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                ingest(shared, conn, &chunk[..n]);
                if conn.is_dead() {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.mark_dead();
                return;
            }
        }
    }
}

/// Buffer newly read bytes and handle every complete request they
/// finish, honoring a mid-buffer `upgrade bin` switch: bytes after the
/// upgrade line (pipelined frames) reroute to the frame splitter.
fn ingest(shared: &ServerShared, conn: &Arc<Conn>, bytes: &[u8]) {
    let mut rd = conn.rd.lock().unwrap_or_else(|p| p.into_inner());
    if !conn.binary() {
        rd.partial.extend_from_slice(bytes);
        loop {
            if conn.is_dead() {
                return;
            }
            if conn.binary() {
                // The upgrade line was handled; everything behind it is
                // already framed.
                let tail = std::mem::take(&mut rd.partial);
                rd.frames.extend(&tail);
                break;
            }
            let Some(nl) = rd.partial.iter().position(|&b| b == b'\n') else {
                if rd.partial.len() > shared.cfg.max_line_bytes {
                    protocol_error(shared, conn, "request line too long");
                }
                return;
            };
            let line: Vec<u8> = rd.partial.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            handle_line(shared, conn, line.trim_end_matches('\r'));
        }
    } else {
        rd.frames.extend(bytes);
    }
    loop {
        if conn.is_dead() {
            return;
        }
        match rd.frames.next_frame(shared.cfg.max_frame_bytes) {
            Ok(FrameStep::Frame { kind, body }) => match wire2::decode_request(kind, &body) {
                Ok(req) => handle_request(shared, conn, req),
                Err(e) => {
                    protocol_error(shared, conn, &format!("bad frame: {e}"));
                    return;
                }
            },
            Ok(FrameStep::NeedMore) => return,
            Err(e) => {
                protocol_error(shared, conn, &format!("bad frame: {e}"));
                return;
            }
        }
    }
}

fn handle_line(shared: &ServerShared, conn: &Arc<Conn>, line: &str) {
    if line.is_empty() {
        return;
    }
    match Request::parse(line) {
        Ok(r) => handle_request(shared, conn, r),
        Err(e) => protocol_error(shared, conn, &format!("bad request: {e}")),
    }
}

/// Handle one parsed request — the protocol-agnostic core shared by the
/// text and binary paths.
fn handle_request(shared: &ServerShared, conn: &Arc<Conn>, request: Request) {
    match request {
        Request::Submit(args) => submit_jobs(shared, conn, vec![args]),
        Request::Batch(jobs) => {
            if jobs.len() > shared.cfg.max_batch_jobs {
                protocol_error(
                    shared,
                    conn,
                    &format!(
                        "batch of {} exceeds the {}-job limit",
                        jobs.len(),
                        shared.cfg.max_batch_jobs
                    ),
                );
                return;
            }
            submit_jobs(shared, conn, jobs);
        }
        Request::Upload(args) => handle_upload(shared, conn, args),
        Request::UpgradeBin => {
            if conn.binary() {
                protocol_error(shared, conn, "connection already upgraded");
                return;
            }
            // A `done` racing the upgrade could interleave text and
            // frames; the client must drain first.  The counter is
            // decremented just *after* the response write (that order
            // is what keeps the drain barrier exact), so give in-flight
            // jobs a bounded deadline before calling the upgrade a
            // protocol error (see [`UPGRADE_GRACE`]).  Yield between
            // checks: another reactor delivers the outstanding `done`s,
            // and its writes are serialized against ours by the out-half
            // mutex, so responses queued here stay ordered after them.
            let deadline = Instant::now() + UPGRADE_GRACE;
            while conn.in_flight.load(Ordering::SeqCst) != 0 {
                if Instant::now() >= deadline {
                    protocol_error(shared, conn, "upgrade with jobs in flight");
                    return;
                }
                // Deliver finished jobs ourselves while we wait: the
                // outstanding `done`s may be sitting in the shared set,
                // and on a single-reactor service no one else can drain
                // them until this handler returns.
                if let Some(c) = shared.set.poll() {
                    deliver(shared, c);
                    continue;
                }
                std::thread::yield_now();
                std::thread::sleep(Duration::from_micros(100));
            }
            // The acknowledgment is the last text line; flip the mode
            // only after it is queued so it cannot be framed.
            write_response(shared, conn, &Response::Upgraded);
            conn.mode.store(MODE_BIN, Ordering::Release);
        }
        Request::Stats => {
            write_response(shared, conn, &Response::Stats(stats_pairs(shared)));
        }
        Request::StatsV2 => {
            let quarantined = shared
                .rt
                .quarantined_with_ttl()
                .into_iter()
                .map(|(sig, ttl)| (sig.0, ttl))
                .collect();
            write_response(
                shared,
                conn,
                &Response::StatsV2(StatsV2 {
                    counters: stats_pairs(shared),
                    hists: shared.rt.telemetry().registry().summaries(),
                    quarantined,
                }),
            );
        }
        Request::Metrics => {
            let body = shared.rt.telemetry().registry().render_prometheus();
            if conn.binary() {
                write_raw(shared, conn, &wire2::encode_metrics_frame(body.as_bytes()));
            } else {
                // The exposition is multi-line, so it rides a
                // length-prefixed frame (`metrics <len>\n` + raw bytes)
                // rather than a `Response` line — the text protocol's
                // one framed reply.
                let mut frame = format!("metrics {}\n", body.len()).into_bytes();
                frame.extend_from_slice(body.as_bytes());
                write_raw(shared, conn, &frame);
            }
        }
        Request::Drain => {
            // The barrier closes when in_flight hits zero.  Order
            // matters: arm the flag first, then check, so a completion
            // racing this request either sees the flag or leaves
            // in_flight nonzero for us to see.
            conn.drain_pending.store(true, Ordering::SeqCst);
            if conn.in_flight.load(Ordering::SeqCst) == 0
                && conn.drain_pending.swap(false, Ordering::SeqCst)
            {
                write_response(
                    shared,
                    conn,
                    &Response::Drained(conn.completed.load(Ordering::Relaxed)),
                );
            }
        }
        Request::Unquarantine(sig) => {
            let found = shared.rt.unquarantine(PatternSignature(sig));
            write_response(shared, conn, &Response::Unquarantined(found));
        }
        Request::Explain(target) => {
            let sig = match target {
                ExplainTarget::Signature(sig) => PatternSignature(sig),
                // An uploaded pattern's class is the signature `submit`
                // would queue it under; resolve through the same path.
                ExplainTarget::Handle(h) => match shared.rt.patterns().get(h) {
                    Some(p) => shared.rt.signature_of(&p),
                    None => {
                        protocol_error(shared, conn, &format!("unknown pattern handle {h:016x}"));
                        return;
                    }
                },
            };
            let info = shared.rt.explain(sig).map(|rec| explain_info(&rec));
            write_response(shared, conn, &Response::Explained(info));
        }
        Request::Slowlog(n) => {
            let entries = shared
                .rt
                .slowlog(n.min(MAX_SLOWLOG))
                .into_iter()
                .map(slowlog_entry)
                .collect();
            write_response(shared, conn, &Response::Slowlog(entries));
        }
    }
}

/// Render one decision record in the wire's `explained` shape: every
/// token (`scheme`, `backend`, gate reasons, the domain label) is
/// already wire-safe (`[a-z0-9._-]`), and the feature vector flattens
/// to ordered `name=value` pairs.
fn explain_info(rec: &DecisionRecord) -> ExplainInfo {
    let gate = |g: &GateVerdict| WireGate {
        fired: g.fired,
        reason: g.reason.to_string(),
    };
    let f = &rec.features;
    ExplainInfo {
        signature: rec.signature,
        domain: domain_label(&rec.domain),
        winner: rec.winner.abbrev().to_string(),
        backend: rec.backend.to_string(),
        explored: rec.explored,
        rechecked: rec.rechecked,
        flips: rec.flips,
        fusion: gate(&rec.fusion),
        simplify: gate(&rec.simplify),
        quarantine: gate(&rec.quarantine),
        features: vec![
            ("references".into(), f.references as f64),
            ("elements".into(), f.num_elements as f64),
            ("distinct".into(), f.distinct as f64),
            ("iterations".into(), f.iterations as f64),
            ("sp".into(), f.sp),
            ("mo".into(), f.mo),
            ("con".into(), f.con),
            ("conflicting".into(), f.conflicting as f64),
            ("replication".into(), f.replication),
            ("threads".into(), f.threads as f64),
            ("fanout".into(), f.fanout as f64),
        ],
        candidates: rec
            .candidates
            .iter()
            .map(|c| WireCandidate {
                scheme: c.scheme.abbrev().to_string(),
                analytic: c.analytic,
                corrected: c.corrected,
                feasible: c.feasible,
            })
            .collect(),
    }
}

/// Render one slowlog exemplar: the trace event's stage attribution
/// plus the decision winner in force when the job completed.  `-`
/// stands in for "no scheme chosen" / "no decision recorded".
fn slowlog_entry(ex: smartapps_telemetry::Exemplar<smartapps_runtime::SlowJob>) -> SlowlogEntry {
    let e = &ex.payload.event;
    SlowlogEntry {
        class: ex.class,
        latency_ns: ex.latency_ns,
        scheme: scheme_from_code(e.scheme).map_or_else(|| "-".to_string(), |s| s.abbrev().into()),
        backend: e.backend.label().to_string(),
        error: e.error.label().to_string(),
        fused: e.fused,
        queue_ns: e.stage_queue(),
        decide_ns: e.stage_decide(),
        simplify_ns: e.stage_simplify(),
        exec_ns: e.stage_exec(),
        completion_ns: e.stage_completion(),
        winner: ex
            .payload
            .record
            .as_ref()
            .map_or_else(|| "-".to_string(), |r| r.winner.abbrev().into()),
    }
}

/// The runtime's service counters as `(name, value)` pairs, sorted by
/// name — both `stats` and `stats v2` carry them, and the sort keeps the
/// wire encoding deterministic for identical server state.
fn stats_pairs(shared: &ServerShared) -> Vec<(String, u64)> {
    let s = shared.rt.stats();
    let mut pairs = vec![
        ("submitted".to_string(), s.submitted),
        ("completed".to_string(), s.completed),
        ("batches".to_string(), s.batches),
        ("coalesced".to_string(), s.coalesced),
        ("profile_hits".to_string(), s.profile_hits),
        ("inspections".to_string(), s.inspections),
        ("evictions".to_string(), s.evictions),
        ("steals".to_string(), s.steals),
        ("fused_sweeps".to_string(), s.fused_sweeps),
        ("fused_jobs".to_string(), s.fused_jobs),
        ("pclr_offloads".to_string(), s.pclr_offloads),
        ("sim_cycles".to_string(), s.sim_cycles),
        ("simd_offloads".to_string(), s.simd_offloads),
        ("calibration_updates".to_string(), s.calibration_updates),
        ("explored".to_string(), s.explored),
        ("fuse_probes".to_string(), s.fuse_probes),
        ("quarantined".to_string(), s.quarantined),
        ("simplified_jobs".to_string(), s.simplified_jobs),
        ("simplify_rejects".to_string(), s.simplify_rejects),
    ];
    pairs.sort();
    pairs
}

/// Validate and intern one uploaded CSR structure; reply with the
/// handle, or fail the upload (not the connection) on a bad structure.
fn handle_upload(shared: &ServerShared, conn: &Arc<Conn>, args: UploadArgs) {
    if args.indices.len() > shared.cfg.max_refs_per_job {
        shared.uploads_rejected.fetch_add(1, Ordering::Relaxed);
        reject(
            shared,
            conn,
            args.token,
            &format!(
                "upload of {} references exceeds the {}-reference admission cap",
                args.indices.len(),
                shared.cfg.max_refs_per_job
            ),
        );
        return;
    }
    let pattern = AccessPattern {
        num_elements: args.num_elements,
        iter_ptr: args.iter_ptr,
        indices: args.indices,
    };
    match shared.rt.patterns().intern(pattern) {
        Ok(interned) => {
            let counter = if interned.fresh {
                &shared.uploads_fresh
            } else {
                &shared.uploads_dedup
            };
            counter.fetch_add(1, Ordering::Relaxed);
            write_response(
                shared,
                conn,
                &Response::Uploaded {
                    token: args.token,
                    handle: interned.handle,
                },
            );
        }
        Err(e) => {
            shared.uploads_rejected.fetch_add(1, Ordering::Relaxed);
            reject(shared, conn, args.token, &e.to_string());
        }
    }
}

/// Validate, admit, and submit a group of jobs as one runtime batch.
/// Invalid members fail with `done … err rejected` without reaching the
/// runtime; valid members ride `submit_batch_tagged` so same-class
/// members coalesce (and same-pattern members can fuse) server-side.
fn submit_jobs(shared: &ServerShared, conn: &Arc<Conn>, jobs: Vec<SubmitArgs>) {
    let mut accepted: Vec<(u64, JobSpec)> = Vec::with_capacity(jobs.len());
    for args in jobs {
        let pattern = match args.source {
            WireSource::Gen(spec) => {
                if let Err(e) = spec.validate() {
                    reject(shared, conn, args.token, &e);
                    continue;
                }
                if spec.total_refs() > shared.cfg.max_refs_per_job {
                    reject(
                        shared,
                        conn,
                        args.token,
                        &format!(
                            "job of {} references exceeds the {}-reference admission cap",
                            spec.total_refs(),
                            shared.cfg.max_refs_per_job
                        ),
                    );
                    continue;
                }
                shared.pattern_for(&spec)
            }
            // Uploaded patterns were validated and admission-checked at
            // upload time; resolving the handle is all that remains.
            WireSource::Handle(h) => match shared.rt.patterns().get(h) {
                Some(p) => p,
                None => {
                    reject(
                        shared,
                        conn,
                        args.token,
                        &format!("unknown pattern handle {h:016x}"),
                    );
                    continue;
                }
            },
        };
        let spec = match args.body {
            crate::wire::WireBody::Sum => {
                JobSpec::i64(pattern, |_i, r| smartapps_workloads::contribution_i64(r))
            }
            crate::wire::WireBody::Mul(k) => JobSpec::i64(pattern, move |_i, r| {
                smartapps_workloads::contribution_i64(r).wrapping_mul(k)
            }),
            crate::wire::WireBody::FSum => {
                JobSpec::f64(pattern, |_i, r| smartapps_workloads::contribution(r))
            }
            crate::wire::WireBody::Panic => JobSpec::i64(pattern, |_i, _r| -> i64 {
                panic!("wire-requested panic body")
            }),
            // The uniform bodies carry the caller's declaration through to
            // the runtime, making scan/window-shaped patterns eligible for
            // the simplification pass (docs/MODEL.md).
            crate::wire::WireBody::Usum => {
                JobSpec::i64(pattern, |i, _r| smartapps_workloads::contribution_i64(i))
                    .with_uniform_body(true)
            }
            crate::wire::WireBody::Fusum => {
                JobSpec::f64(pattern, |i, _r| smartapps_workloads::contribution(i))
                    .with_uniform_body(true)
            }
        };
        let global = shared.next_global.fetch_add(1, Ordering::Relaxed);
        shared
            .pending
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(
                global,
                PendingReply {
                    conn: conn.id,
                    token: args.token,
                    reply: args.reply,
                    f64body: args.body.is_f64(),
                    submitted_at: Instant::now(),
                },
            );
        conn.in_flight.fetch_add(1, Ordering::SeqCst);
        accepted.push((global, spec));
    }
    if !accepted.is_empty() {
        shared.rt.submit_batch_tagged(accepted, &shared.set);
    }
}

/// Fail one submission (or upload) before it reaches the runtime.
fn reject(shared: &ServerShared, conn: &Arc<Conn>, token: u64, message: &str) {
    write_response(
        shared,
        conn,
        &Response::Done(DoneMsg {
            token,
            outcome: DoneOutcome::Err {
                kind: "rejected".into(),
                signature: 0,
                message: message.to_string(),
            },
        }),
    );
    conn.completed.fetch_add(1, Ordering::Relaxed);
}

/// Route one completion from the shared set back to its socket.
fn deliver(shared: &ServerShared, completion: Completion) {
    let Some(PendingReply {
        conn,
        token,
        reply,
        f64body,
        submitted_at,
    }) = shared
        .pending
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .remove(&completion.token)
    else {
        return; // unknown global token: nothing to route
    };
    let Some(conn) = shared.conn(conn) else {
        return; // connection was reaped; drop the response
    };
    let request_ns = submitted_at.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    conn.request_ns.record(request_ns);
    conn.request_ns_all.record(request_ns);
    let r = completion.result;
    let outcome = match r.error {
        Some(e) => DoneOutcome::Err {
            kind: e.kind.as_str().to_string(),
            signature: completion.signature.0,
            message: e.message,
        },
        None if f64body => {
            let values = r.output.as_f64().map(<[f64]>::to_vec).unwrap_or_default();
            DoneOutcome::Ok {
                scheme: r.scheme.abbrev().to_string(),
                elapsed_ns: r.elapsed.as_nanos().min(u64::MAX as u128) as u64,
                profile_hit: r.profile_hit,
                fused_with: r.fused_with,
                batched_with: r.batched_with,
                payload: match reply {
                    ReplyMode::Ack => Payload::ChecksumF64 {
                        len: values.len(),
                        sum: checksum_f64(&values),
                    },
                    ReplyMode::Full => Payload::FullF64(values),
                },
            }
        }
        None => {
            let values = r.output.as_i64().map(<[i64]>::to_vec).unwrap_or_default();
            DoneOutcome::Ok {
                scheme: r.scheme.abbrev().to_string(),
                elapsed_ns: r.elapsed.as_nanos().min(u64::MAX as u128) as u64,
                profile_hit: r.profile_hit,
                fused_with: r.fused_with,
                batched_with: r.batched_with,
                payload: match reply {
                    ReplyMode::Ack => Payload::Checksum {
                        len: values.len(),
                        sum: checksum(&values),
                    },
                    ReplyMode::Full => Payload::Full(values),
                },
            }
        }
    };
    if !conn.is_dead() {
        // The server-side tail the runtime's trace cannot see: completion
        // popped off the set → reply bytes handed to the socket/buffer.
        let write_t0 = Instant::now();
        write_response(shared, &conn, &Response::Done(DoneMsg { token, outcome }));
        shared.rt.telemetry().record_stage(
            Stage::Write,
            write_t0.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        );
    }
    conn.completed.fetch_add(1, Ordering::Relaxed);
    let left = conn.in_flight.fetch_sub(1, Ordering::SeqCst) - 1;
    if left == 0 {
        if conn.drain_pending.swap(false, Ordering::SeqCst) && !conn.is_dead() {
            write_response(
                shared,
                &conn,
                &Response::Drained(conn.completed.load(Ordering::Relaxed)),
            );
        }
        if conn.is_dead() {
            // Its owner may be parked with nothing left to wake it;
            // nudge so the conn is reaped promptly.
            shared.nudge_owner(conn.id);
        }
    }
}

/// Protocol-level failure: tell the client why, then fail the connection.
fn protocol_error(shared: &ServerShared, conn: &Arc<Conn>, message: &str) {
    write_response(shared, conn, &Response::Error(message.to_string()));
    conn.mark_dead();
}

/// Encode one response in the connection's negotiated protocol and hand
/// it to [`write_raw`].
fn write_response(shared: &ServerShared, conn: &Conn, response: &Response) {
    if conn.binary() {
        write_raw(shared, conn, &wire2::encode_response(response));
    } else {
        let mut line = response.encode();
        line.push('\n');
        write_raw(shared, conn, line.as_bytes());
    }
}

/// Write one outbound message, never blocking the calling reactor: as
/// much as the socket takes goes out directly; an unwritable tail is
/// appended to the connection's outbound buffer and the owning reactor
/// is nudged to arm `EPOLLOUT` and flush on writability.  Stall time
/// (buffer-resident time) is charged against the connection's
/// cumulative [`write_stall_budget`](ServerConfig::write_stall_budget);
/// exceeding it fails the connection instead of wedging reactors — any
/// reactor may deliver to any socket, so unbounded per-message grace
/// would let one slow reader stall completion draining service-wide.
fn write_raw(shared: &ServerShared, conn: &Conn, bytes: &[u8]) {
    if conn.is_dead() {
        return;
    }
    let mut out = conn.out.lock().unwrap_or_else(|p| p.into_inner());
    let mut written = 0usize;
    if out.buf.is_empty() {
        // Fast path: the socket usually takes the whole message.
        while written < bytes.len() {
            match (&out.stream).write(&bytes[written..]) {
                Ok(0) => {
                    drop(out);
                    conn.mark_dead();
                    return;
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    drop(out);
                    conn.mark_dead();
                    return;
                }
            }
        }
        if written > 0 {
            conn.bytes_out.fetch_add(written as u64, Ordering::Relaxed);
        }
        if written == bytes.len() {
            drop(out);
            // A stall-free message halves the accumulated debt, so a
            // briefly slow but otherwise healthy peer recovers; a
            // trickle-reader that stalls every message cannot reset it
            // and dies within the budget no matter how it paces reads.
            let debt = conn.stall_debt_micros.load(Ordering::Relaxed);
            if debt > 0 {
                conn.stall_debt_micros.store(debt / 2, Ordering::Relaxed);
            }
            return;
        }
    }
    // Slow path: buffer the tail for the owner to flush on EPOLLOUT.
    if out.buf.len() + (bytes.len() - written) > OUTBUF_LIMIT_BYTES {
        drop(out);
        conn.mark_dead();
        return;
    }
    out.buf.extend_from_slice(&bytes[written..]);
    if out.stall_since.is_none() {
        out.stall_since = Some(Instant::now());
    }
    drop(out);
    shared.nudge_owner(conn.id);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: usize) -> SpecKey {
        (n, 0, 0, 0, 0, 0, 0)
    }

    fn pat(n: usize) -> Arc<AccessPattern> {
        Arc::new(AccessPattern {
            num_elements: n.max(1),
            iter_ptr: vec![0],
            indices: vec![],
        })
    }

    #[test]
    fn pattern_cache_hits_share_the_allocation() {
        let mut cache = PatternCache::new();
        let first = cache.get_or_insert_with(key(1), 4, || pat(1));
        let again = cache.get_or_insert_with(key(1), 4, || panic!("hit must not regenerate"));
        assert!(Arc::ptr_eq(&first, &again));
    }

    #[test]
    fn pattern_cache_evicts_the_lru_entry_deterministically() {
        let mut cache = PatternCache::new();
        for n in 0..4 {
            cache.get_or_insert_with(key(n), 4, || pat(n));
        }
        // Touch everything but key(2), then overflow: the victim must be
        // exactly the least-recently-used entry, never an arbitrary one.
        for n in [0usize, 1, 3] {
            cache.get_or_insert_with(key(n), 4, || panic!("hit must not regenerate"));
        }
        cache.get_or_insert_with(key(4), 4, || pat(4));
        assert!(!cache.entries.contains_key(&key(2)), "LRU entry evicted");
        for n in [0usize, 1, 3, 4] {
            assert!(cache.entries.contains_key(&key(n)), "key {n} survives");
        }
    }

    #[test]
    fn repeatedly_hit_entry_survives_churn_at_capacity() {
        let mut cache = PatternCache::new();
        let hot = cache.get_or_insert_with(key(1000), 4, || pat(1000));
        // A long parade of one-shot specs churns the cache far past its
        // capacity; the hot entry is re-hit between misses and must
        // survive the whole run with its allocation intact.
        for n in 0..64 {
            cache.get_or_insert_with(key(n), 4, || pat(n));
            let again = cache.get_or_insert_with(key(1000), 4, || panic!("hot entry was evicted"));
            assert!(Arc::ptr_eq(&hot, &again));
        }
        assert!(cache.entries.len() <= 4, "capacity must hold under churn");
    }
}
