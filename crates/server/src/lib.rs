//! # smartapps-server — the reduction service as a network service
//!
//! `smartapps-runtime` is an in-process library: its submission API stops
//! at the process boundary.  This crate opens the first out-of-process
//! workload scenario — a TCP front end over the runtime's
//! completion-driven frontend, where
//! [`Runtime::submit_tagged`](smartapps_runtime::Runtime::submit_tagged)
//! routes every finished job onto one shared
//! [`CompletionSet`](smartapps_runtime::CompletionSet) — with a thread
//! count **independent of the client count**: one acceptor plus a small
//! fixed set of reactor threads serve any number of connections, because
//! no thread ever parks on an individual job.
//!
//! Four modules:
//!
//! * [`wire`] — the line-oriented protocol grammar (`submit` / `batch` /
//!   `upload` / `stats` / `stats v2` / `metrics` / `drain` /
//!   `unquarantine` / `explain` / `slowlog` / `upgrade bin` requests,
//!   `done` / `stats` / `stats2` / `drained` / `uploaded` / `explained`
//!   / `slowlog` / `upgraded` responses plus the length-prefixed
//!   `metrics` exposition frame), with explicit `encode`/`parse` pairs;
//!   see `docs/SERVER.md` for the full grammar and
//!   `docs/OBSERVABILITY.md` for the metric catalog.
//! * [`wire2`] — the opt-in **binary wire v2**: the same request and
//!   response types as length-prefixed frames with exact i64/f64
//!   bodies, negotiated per connection via `upgrade bin`.
//! * [`server`] — the [`Server`]: an epoll-blocked acceptor plus a
//!   small fixed set of epoll-blocked reactor threads (readable,
//!   writable, and completion-wake events; no sleep-polling), buffered
//!   nonblocking writes under a write-stall budget, and the pending
//!   table demultiplexing completions back to sockets.
//! * [`client`] — the blocking [`Client`] library the `netload` loadgen
//!   and the examples drive, speaking either protocol.
//!
//! ## Example
//!
//! ```
//! use smartapps_runtime::Runtime;
//! use smartapps_server::{Client, ReplyMode, Server, ServerConfig, SubmitArgs};
//! use smartapps_server::{DoneOutcome, WireBody, WireDist, WireSpec};
//! use std::sync::Arc;
//!
//! let rt = Arc::new(Runtime::with_workers(2));
//! let server = Server::start(rt, ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client
//!     .submit(SubmitArgs {
//!         token: 1,
//!         reply: ReplyMode::Ack,
//!         body: WireBody::Sum,
//!         source: smartapps_server::WireSource::Gen(WireSpec {
//!             elements: 256,
//!             iterations: 400,
//!             refs_per_iter: 2,
//!             coverage: 0.9,
//!             dist: WireDist::Uniform,
//!             seed: 11,
//!         }),
//!     })
//!     .unwrap();
//! let done = client.next_done().unwrap();
//! assert_eq!(done.token, 1);
//! assert!(matches!(done.outcome, DoneOutcome::Ok { .. }));
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod server;
pub mod wire;
pub mod wire2;

pub use client::Client;
pub use server::{Server, ServerConfig};
pub use smartapps_telemetry::HistSummary;
pub use wire::{
    checksum, checksum_f64, DoneMsg, DoneOutcome, ExplainInfo, ExplainTarget, Payload, ReplyMode,
    Request, Response, SlowlogEntry, StatsV2, SubmitArgs, UploadArgs, WireBody, WireCandidate,
    WireDist, WireGate, WireSource, WireSpec, DEFAULT_SLOWLOG, MAX_SLOWLOG,
};
pub use wire2::{BinMsg, FrameBuf, FrameStep, DEFAULT_MAX_FRAME_BYTES};
