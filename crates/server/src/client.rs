//! The client side of the wire protocol: a thin blocking library over
//! one TCP connection, used by `examples/network_service.rs` and the
//! `netload` loadgen.  A connection starts in the text protocol;
//! [`upgrade_binary`](Client::upgrade_binary) negotiates binary wire v2
//! and every later request and response rides length-prefixed frames
//! with exact i64/f64 bodies.
//!
//! Responses to control requests (`stats`, `stats v2`, `metrics`,
//! `drain`, `unquarantine`, `upload`) interleave with asynchronous
//! `done` messages on the same socket; the client stashes `done`
//! messages it reads while waiting for a control response, and
//! [`next_done`](Client::next_done) consumes the stash before touching
//! the socket — no message is ever dropped or reordered within its
//! kind.

use crate::wire::{
    DoneMsg, DoneOutcome, ExplainInfo, ExplainTarget, Request, Response, SlowlogEntry, StatsV2,
    SubmitArgs, UploadArgs,
};
use crate::wire2::{self, BinMsg};
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking client for one `smartapps-server` connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    stashed: VecDeque<DoneMsg>,
    binary: bool,
}

impl Client {
    /// Connect to a server (e.g. the address from
    /// [`Server::local_addr`](crate::Server::local_addr)).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            stashed: VecDeque::new(),
            binary: false,
        })
    }

    /// Whether this connection has negotiated binary wire v2.
    pub fn is_binary(&self) -> bool {
        self.binary
    }

    fn send(&mut self, request: &Request) -> io::Result<()> {
        if self.binary {
            self.writer.write_all(&wire2::encode_request(request))
        } else {
            let mut line = request.encode();
            line.push('\n');
            self.writer.write_all(line.as_bytes())
        }
    }

    /// Read one binary frame off the socket (blocking).
    fn read_frame(&mut self) -> io::Result<BinMsg> {
        let mut head = [0u8; wire2::FRAME_HEADER_BYTES];
        self.reader.read_exact(&mut head)?;
        let len = u32::from_le_bytes(head);
        if len == 0 || len > wire2::DEFAULT_MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad frame length {len}"),
            ));
        }
        let mut frame = vec![0u8; len as usize];
        self.reader.read_exact(&mut frame)?;
        wire2::decode_response(frame[0], &frame[1..]).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("unparsable frame: {e}"))
        })
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let response = if self.binary {
            loop {
                match self.read_frame()? {
                    BinMsg::Response(r) => break *r,
                    // An unsolicited metrics frame nobody is waiting for.
                    BinMsg::Metrics(_) => continue,
                }
            }
        } else {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            Response::parse(&line).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unparsable response: {e} (line: {})", line.trim_end()),
                )
            })?
        };
        match response {
            Response::Error(msg) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("server protocol error: {msg}"),
            )),
            r => Ok(r),
        }
    }

    /// Negotiate binary wire v2 for the rest of this connection.
    ///
    /// Call only with no jobs in flight (the server refuses otherwise:
    /// a `done` racing the upgrade could interleave text and frames).
    /// The request and its `upgraded bin` acknowledgment are the
    /// connection's last text lines.
    pub fn upgrade_binary(&mut self) -> io::Result<()> {
        if self.binary {
            return Ok(());
        }
        self.send(&Request::UpgradeBin)?;
        loop {
            match self.read_response()? {
                Response::Upgraded => {
                    self.binary = true;
                    return Ok(());
                }
                Response::Done(d) => self.stashed.push_back(d),
                _ => continue,
            }
        }
    }

    /// Upload a CSR access pattern; returns the server's handle for it,
    /// usable in [`WireSource::Handle`](crate::WireSource::Handle)
    /// submissions on any connection.  Re-uploading an identical
    /// structure returns the same handle (the server interns by
    /// content).  A rejected upload (invalid CSR, admission cap, intern
    /// table full) fails with `InvalidData` and leaves the connection
    /// usable.
    ///
    /// Give the upload a token distinct from any in-flight job's: the
    /// rejection reply is a `done … err` for that token.
    pub fn upload(&mut self, args: UploadArgs) -> io::Result<u64> {
        let token = args.token;
        self.send(&Request::Upload(args))?;
        loop {
            match self.read_response()? {
                Response::Uploaded { token: t, handle } if t == token => return Ok(handle),
                Response::Done(d) => {
                    if d.token == token {
                        if let DoneOutcome::Err { message, .. } = d.outcome {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("upload rejected: {message}"),
                            ));
                        }
                    }
                    self.stashed.push_back(d);
                }
                _ => continue,
            }
        }
    }

    /// Submit one job; its `done` arrives asynchronously via
    /// [`next_done`](Client::next_done).
    pub fn submit(&mut self, args: SubmitArgs) -> io::Result<()> {
        self.send(&Request::Submit(args))
    }

    /// Submit several jobs in one request (they coalesce — and same-spec
    /// members can fuse — server-side).
    pub fn submit_batch(&mut self, jobs: Vec<SubmitArgs>) -> io::Result<()> {
        self.send(&Request::Batch(jobs))
    }

    /// Block for the next finished job (stash first, then socket).
    pub fn next_done(&mut self) -> io::Result<DoneMsg> {
        if let Some(d) = self.stashed.pop_front() {
            return Ok(d);
        }
        loop {
            match self.read_response()? {
                Response::Done(d) => return Ok(d),
                // A control response nobody is waiting for (e.g. a
                // drained barrier read late) is dropped; done messages
                // are never dropped.
                _ => continue,
            }
        }
    }

    /// Request and return the runtime's service counters as ordered
    /// `(name, value)` pairs.
    pub fn stats(&mut self) -> io::Result<Vec<(String, u64)>> {
        self.send(&Request::Stats)?;
        loop {
            match self.read_response()? {
                Response::Stats(pairs) => return Ok(pairs),
                Response::Done(d) => self.stashed.push_back(d),
                _ => continue,
            }
        }
    }

    /// Request the richer `stats v2` snapshot: sorted service counters,
    /// per-series latency-histogram digests, and quarantined workload
    /// classes with their remaining TTLs.
    pub fn stats_v2(&mut self) -> io::Result<StatsV2> {
        self.send(&Request::StatsV2)?;
        loop {
            match self.read_response()? {
                Response::StatsV2(v2) => return Ok(v2),
                Response::Done(d) => self.stashed.push_back(d),
                _ => continue,
            }
        }
    }

    /// Request the Prometheus-style text exposition of every histogram
    /// and counter in the process (runtime and server series alike).
    ///
    /// In the text protocol the reply is its one length-prefixed frame
    /// (`metrics <len>` header line, then `<len>` raw bytes); in binary
    /// mode it is an ordinary metrics frame.  `done` messages read while
    /// waiting are stashed for [`next_done`](Client::next_done) as
    /// usual.
    pub fn metrics(&mut self) -> io::Result<String> {
        self.send(&Request::Metrics)?;
        if self.binary {
            loop {
                match self.read_frame()? {
                    BinMsg::Metrics(body) => {
                        return String::from_utf8(body).map_err(|e| {
                            io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("metrics body is not UTF-8: {e}"),
                            )
                        })
                    }
                    BinMsg::Response(r) => match *r {
                        Response::Done(d) => self.stashed.push_back(d),
                        Response::Error(msg) => {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("server protocol error: {msg}"),
                            ))
                        }
                        _ => continue,
                    },
                }
            }
        }
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if let Some(len) = line.trim_end().strip_prefix("metrics ") {
                let len: usize = len.trim().parse().map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad metrics frame length: {e}"),
                    )
                })?;
                let mut body = vec![0u8; len];
                self.reader.read_exact(&mut body)?;
                return String::from_utf8(body).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("metrics body is not UTF-8: {e}"),
                    )
                });
            }
            match Response::parse(&line) {
                Ok(Response::Done(d)) => self.stashed.push_back(d),
                Ok(Response::Error(msg)) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("server protocol error: {msg}"),
                    ))
                }
                _ => continue,
            }
        }
    }

    /// Flush barrier: block until every job submitted on this connection
    /// has produced its `done` line (all of which are stashed for
    /// [`next_done`](Client::next_done)); returns the connection's total
    /// completed-job count.
    pub fn drain(&mut self) -> io::Result<u64> {
        self.send(&Request::Drain)?;
        loop {
            match self.read_response()? {
                Response::Drained(n) => return Ok(n),
                Response::Done(d) => self.stashed.push_back(d),
                _ => continue,
            }
        }
    }

    /// Lift the quarantine of a workload class (the signature reported on
    /// `quarantined` error responses).  Returns whether the server found
    /// ledger state to clear.
    pub fn unquarantine(&mut self, signature: u64) -> io::Result<bool> {
        self.send(&Request::Unquarantine(signature))?;
        loop {
            match self.read_response()? {
                Response::Unquarantined(found) => return Ok(found),
                Response::Done(d) => self.stashed.push_back(d),
                _ => continue,
            }
        }
    }

    /// Fetch the latest decision record for a workload class — the full
    /// "why" behind its scheme choice: feature vector, the
    /// analytic-vs-corrected candidate cost table with feasibility
    /// masks, gate verdicts, and the winning scheme/backend.  `Ok(None)`
    /// means the server has not ranked that class yet.  Target a class
    /// by its signature (as reported on `done` errors or in `stats v2`
    /// quarantine rows) or by an uploaded pattern's handle
    /// ([`ExplainTarget::Handle`]).
    pub fn explain(&mut self, target: ExplainTarget) -> io::Result<Option<ExplainInfo>> {
        self.send(&Request::Explain(target))?;
        loop {
            match self.read_response()? {
                Response::Explained(info) => return Ok(info),
                Response::Done(d) => self.stashed.push_back(d),
                _ => continue,
            }
        }
    }

    /// Fetch the server's slowest retained jobs, slowest first — at most
    /// `n` entries (the server clamps to its own cap), each with
    /// per-stage latency attribution (queue / decide / simplify-probe /
    /// exec / completion) and the decision winner in force when the job
    /// completed.
    pub fn slowlog(&mut self, n: usize) -> io::Result<Vec<SlowlogEntry>> {
        self.send(&Request::Slowlog(n))?;
        loop {
            match self.read_response()? {
                Response::Slowlog(entries) => return Ok(entries),
                Response::Done(d) => self.stashed.push_back(d),
                _ => continue,
            }
        }
    }

    /// Finished jobs read ahead of schedule while waiting for a control
    /// response.
    pub fn stashed(&self) -> usize {
        self.stashed.len()
    }
}
