//! The client side of the wire protocol: a thin blocking library over
//! one TCP connection, used by `examples/network_service.rs` and the
//! `netload` loadgen.
//!
//! Responses to control requests (`stats`, `stats v2`, `metrics`,
//! `drain`, `unquarantine`) interleave with asynchronous `done` lines
//! on the same socket; the
//! client stashes `done` messages it reads while waiting for a control
//! response, and [`next_done`](Client::next_done) consumes the stash
//! before touching the socket — no message is ever dropped or reordered
//! within its kind.

use crate::wire::{DoneMsg, Request, Response, StatsV2, SubmitArgs};
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking client for one `smartapps-server` connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    stashed: VecDeque<DoneMsg>,
}

impl Client {
    /// Connect to a server (e.g. the address from
    /// [`Server::local_addr`](crate::Server::local_addr)).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            stashed: VecDeque::new(),
        })
    }

    fn send(&mut self, request: &Request) -> io::Result<()> {
        let mut line = request.encode();
        line.push('\n');
        self.writer.write_all(line.as_bytes())
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        match Response::parse(&line) {
            Ok(Response::Error(msg)) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("server protocol error: {msg}"),
            )),
            Ok(r) => Ok(r),
            Err(e) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unparsable response: {e} (line: {})", line.trim_end()),
            )),
        }
    }

    /// Submit one job; its `done` arrives asynchronously via
    /// [`next_done`](Client::next_done).
    pub fn submit(&mut self, args: SubmitArgs) -> io::Result<()> {
        self.send(&Request::Submit(args))
    }

    /// Submit several jobs in one request (they coalesce — and same-spec
    /// members can fuse — server-side).
    pub fn submit_batch(&mut self, jobs: Vec<SubmitArgs>) -> io::Result<()> {
        self.send(&Request::Batch(jobs))
    }

    /// Block for the next finished job (stash first, then socket).
    pub fn next_done(&mut self) -> io::Result<DoneMsg> {
        if let Some(d) = self.stashed.pop_front() {
            return Ok(d);
        }
        loop {
            match self.read_response()? {
                Response::Done(d) => return Ok(d),
                // A control response nobody is waiting for (e.g. a
                // drained barrier read late) is dropped; done messages
                // are never dropped.
                _ => continue,
            }
        }
    }

    /// Request and return the runtime's service counters as ordered
    /// `(name, value)` pairs.
    pub fn stats(&mut self) -> io::Result<Vec<(String, u64)>> {
        self.send(&Request::Stats)?;
        loop {
            match self.read_response()? {
                Response::Stats(pairs) => return Ok(pairs),
                Response::Done(d) => self.stashed.push_back(d),
                _ => continue,
            }
        }
    }

    /// Request the richer `stats v2` snapshot: sorted service counters,
    /// per-series latency-histogram digests, and quarantined workload
    /// classes with their remaining TTLs.
    pub fn stats_v2(&mut self) -> io::Result<StatsV2> {
        self.send(&Request::StatsV2)?;
        loop {
            match self.read_response()? {
                Response::StatsV2(v2) => return Ok(v2),
                Response::Done(d) => self.stashed.push_back(d),
                _ => continue,
            }
        }
    }

    /// Request the Prometheus-style text exposition of every histogram
    /// and counter in the process (runtime and server series alike).
    ///
    /// The reply is the protocol's one length-prefixed frame (`metrics
    /// <len>` header line, then `<len>` raw bytes) rather than a single
    /// response line; `done` messages read while waiting for the header
    /// are stashed for [`next_done`](Client::next_done) as usual.
    pub fn metrics(&mut self) -> io::Result<String> {
        self.send(&Request::Metrics)?;
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if let Some(len) = line.trim_end().strip_prefix("metrics ") {
                let len: usize = len.trim().parse().map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad metrics frame length: {e}"),
                    )
                })?;
                let mut body = vec![0u8; len];
                self.reader.read_exact(&mut body)?;
                return String::from_utf8(body).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("metrics body is not UTF-8: {e}"),
                    )
                });
            }
            match Response::parse(&line) {
                Ok(Response::Done(d)) => self.stashed.push_back(d),
                Ok(Response::Error(msg)) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("server protocol error: {msg}"),
                    ))
                }
                _ => continue,
            }
        }
    }

    /// Flush barrier: block until every job submitted on this connection
    /// has produced its `done` line (all of which are stashed for
    /// [`next_done`](Client::next_done)); returns the connection's total
    /// completed-job count.
    pub fn drain(&mut self) -> io::Result<u64> {
        self.send(&Request::Drain)?;
        loop {
            match self.read_response()? {
                Response::Drained(n) => return Ok(n),
                Response::Done(d) => self.stashed.push_back(d),
                _ => continue,
            }
        }
    }

    /// Lift the quarantine of a workload class (the signature reported on
    /// `quarantined` error responses).  Returns whether the server found
    /// ledger state to clear.
    pub fn unquarantine(&mut self, signature: u64) -> io::Result<bool> {
        self.send(&Request::Unquarantine(signature))?;
        loop {
            match self.read_response()? {
                Response::Unquarantined(found) => return Ok(found),
                Response::Done(d) => self.stashed.push_back(d),
                _ => continue,
            }
        }
    }

    /// Finished jobs read ahead of schedule while waiting for a control
    /// response.
    pub fn stashed(&self) -> usize {
        self.stashed.len()
    }
}
