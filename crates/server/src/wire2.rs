//! Binary wire v2: the length-prefixed framed encoding of the same
//! [`Request`]/[`Response`] types the text protocol speaks.
//!
//! The text protocol renders every output value in decimal, which PR 5/6
//! measured as the dominant cost of `full`-payload traffic — and it has
//! no i64/f64-exact representation cheaper than printing.  Wire v2
//! replaces lines with frames:
//!
//! ```text
//! frame    := len:u32le  kind:u8  body:bytes       (len = 1 + |body|)
//! ```
//!
//! `len` counts the kind byte plus the body, so an empty-bodied message
//! (`stats`) is `01 00 00 00` + kind.  All integers are little-endian;
//! floats are IEEE-754 bit patterns (`f64::to_le_bits` — exact, no
//! decimal round-trip); strings and byte blobs are `u32` length +
//! contents; vectors are `u32` count + elements.  Request kinds occupy
//! `0x01..=0x0b`, response kinds `0x81..=0x8b` (high bit = response), so
//! a desynchronized peer is detected by kind byte, not by guessing.
//!
//! A connection *starts* in text and negotiates the switch: `upgrade
//! bin` line → `upgraded bin` line → frames both ways (see
//! `docs/SERVER.md`).  The [`Upgrade`](crate::wire::Request::UpgradeBin)
//! / [`Upgraded`](crate::wire::Response::Upgraded) messages therefore
//! never legitimately appear *inside* a binary stream, but the codec is
//! total over both enums so round-trip properties can quantify over
//! every variant.
//!
//! **Robustness contract** (proptest-enforced in `tests/prop_wire_v2.rs`):
//! decoding never panics — arbitrary byte soup, truncated frames, and
//! declared lengths past the cap all surface as `Err`/`NeedMore`, and the
//! server fails only the one connection that sent them.

use crate::wire::{
    DoneMsg, DoneOutcome, ExplainInfo, ExplainTarget, Payload, ReplyMode, Request, Response,
    SlowlogEntry, StatsV2, SubmitArgs, UploadArgs, WireBody, WireCandidate, WireDist, WireGate,
    WireSource, WireSpec,
};
use smartapps_telemetry::HistSummary;

/// Frame header size: the `u32` little-endian length prefix.
pub const FRAME_HEADER_BYTES: usize = 4;

/// Default cap a peer enforces on one frame's declared length (kind +
/// body).  Large enough for a `full` payload over the server's biggest
/// admissible pattern or a multi-megabyte CSR upload; small enough that
/// a corrupt length prefix cannot make the receiver buffer gigabytes.
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

// Request frame kinds.
const K_SUBMIT: u8 = 0x01;
const K_BATCH: u8 = 0x02;
const K_STATS: u8 = 0x03;
const K_STATS_V2: u8 = 0x04;
const K_METRICS: u8 = 0x05;
const K_DRAIN: u8 = 0x06;
const K_UNQUARANTINE: u8 = 0x07;
const K_UPLOAD: u8 = 0x08;
const K_UPGRADE: u8 = 0x09;
const K_EXPLAIN: u8 = 0x0a;
const K_SLOWLOG: u8 = 0x0b;

// Response frame kinds (high bit set).
const K_DONE: u8 = 0x81;
const K_R_STATS: u8 = 0x82;
const K_R_STATS_V2: u8 = 0x83;
const K_DRAINED: u8 = 0x84;
const K_UNQUARANTINED: u8 = 0x85;
const K_ERROR: u8 = 0x86;
const K_METRICS_BODY: u8 = 0x87;
const K_UPLOADED: u8 = 0x88;
const K_UPGRADED: u8 = 0x89;
const K_EXPLAINED: u8 = 0x8a;
const K_R_SLOWLOG: u8 = 0x8b;

/// A decoded server→client frame: either a [`Response`] or the raw
/// Prometheus exposition bytes (the one reply that is not a `Response`
/// variant, mirroring the text protocol's out-of-band metrics frame).
#[derive(Debug, Clone, PartialEq)]
pub enum BinMsg {
    /// An ordinary response (boxed: the `Explained` variant's candidate
    /// table makes `Response` much larger than the metrics arm).
    Response(Box<Response>),
    /// The metrics exposition body, raw.
    Metrics(Vec<u8>),
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// Wrap a finished body in its `[len][kind]` header.
fn frame(kind: u8, body: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + 1 + body.len());
    put_u32(&mut out, 1 + body.len() as u32);
    out.push(kind);
    out.extend_from_slice(&body);
    out
}

fn put_spec(out: &mut Vec<u8>, spec: &WireSpec) {
    put_u64(out, spec.elements as u64);
    put_u64(out, spec.iterations as u64);
    put_u64(out, spec.refs_per_iter as u64);
    put_f64(out, spec.coverage);
    match spec.dist {
        WireDist::Uniform => out.push(0),
        WireDist::Zipf(s) => {
            out.push(1);
            put_f64(out, s);
        }
        WireDist::Clustered(w) => {
            out.push(2);
            put_u32(out, w);
        }
    }
    put_u64(out, spec.seed);
}

fn put_submit(out: &mut Vec<u8>, a: &SubmitArgs) {
    put_u64(out, a.token);
    out.push(match a.reply {
        ReplyMode::Ack => 0,
        ReplyMode::Full => 1,
    });
    match a.body {
        WireBody::Sum => out.push(0),
        WireBody::Mul(k) => {
            out.push(1);
            put_i64(out, k);
        }
        WireBody::Panic => out.push(2),
        WireBody::FSum => out.push(3),
        WireBody::Usum => out.push(4),
        WireBody::Fusum => out.push(5),
    }
    match a.source {
        WireSource::Gen(spec) => {
            out.push(0);
            put_spec(out, &spec);
        }
        WireSource::Handle(h) => {
            out.push(1);
            put_u64(out, h);
        }
    }
}

/// Encode one client→server request as a complete frame.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut body = Vec::new();
    let kind = match req {
        Request::Submit(a) => {
            put_submit(&mut body, a);
            K_SUBMIT
        }
        Request::Batch(jobs) => {
            put_u32(&mut body, jobs.len() as u32);
            for j in jobs {
                put_submit(&mut body, j);
            }
            K_BATCH
        }
        Request::Stats => K_STATS,
        Request::StatsV2 => K_STATS_V2,
        Request::Metrics => K_METRICS,
        Request::Drain => K_DRAIN,
        Request::Unquarantine(sig) => {
            put_u64(&mut body, *sig);
            K_UNQUARANTINE
        }
        Request::Upload(u) => {
            put_u64(&mut body, u.token);
            put_u64(&mut body, u.num_elements as u64);
            put_u32(&mut body, u.iter_ptr.len() as u32);
            for v in &u.iter_ptr {
                put_u32(&mut body, *v);
            }
            put_u32(&mut body, u.indices.len() as u32);
            for v in &u.indices {
                put_u32(&mut body, *v);
            }
            K_UPLOAD
        }
        Request::UpgradeBin => K_UPGRADE,
        Request::Explain(target) => {
            match target {
                ExplainTarget::Signature(sig) => {
                    body.push(0);
                    put_u64(&mut body, *sig);
                }
                ExplainTarget::Handle(h) => {
                    body.push(1);
                    put_u64(&mut body, *h);
                }
            }
            K_EXPLAIN
        }
        Request::Slowlog(n) => {
            put_u64(&mut body, *n as u64);
            K_SLOWLOG
        }
    };
    frame(kind, body)
}

fn put_gate(out: &mut Vec<u8>, g: &WireGate) {
    out.push(u8::from(g.fired));
    put_str(out, &g.reason);
}

fn put_explain_info(out: &mut Vec<u8>, info: &ExplainInfo) {
    put_u64(out, info.signature);
    put_str(out, &info.domain);
    put_str(out, &info.winner);
    put_str(out, &info.backend);
    out.push(u8::from(info.explored));
    out.push(u8::from(info.rechecked));
    put_u64(out, info.flips);
    put_gate(out, &info.fusion);
    put_gate(out, &info.simplify);
    put_gate(out, &info.quarantine);
    put_u32(out, info.features.len() as u32);
    for (name, value) in &info.features {
        put_str(out, name);
        put_f64(out, *value);
    }
    put_u32(out, info.candidates.len() as u32);
    for WireCandidate {
        scheme,
        analytic,
        corrected,
        feasible,
    } in &info.candidates
    {
        put_str(out, scheme);
        put_f64(out, *analytic);
        put_f64(out, *corrected);
        out.push(u8::from(*feasible));
    }
}

fn put_slowlog_entry(out: &mut Vec<u8>, e: &SlowlogEntry) {
    put_u64(out, e.class);
    put_u64(out, e.latency_ns);
    put_str(out, &e.scheme);
    put_str(out, &e.backend);
    put_str(out, &e.error);
    put_u32(out, u32::from(e.fused));
    for ns in [
        e.queue_ns,
        e.decide_ns,
        e.simplify_ns,
        e.exec_ns,
        e.completion_ns,
    ] {
        put_u64(out, ns);
    }
    put_str(out, &e.winner);
}

fn put_payload(out: &mut Vec<u8>, p: &Payload) {
    match p {
        Payload::Checksum { len, sum } => {
            out.push(0);
            put_u64(out, *len as u64);
            put_i64(out, *sum);
        }
        Payload::Full(values) => {
            out.push(1);
            put_u32(out, values.len() as u32);
            for v in values {
                put_i64(out, *v);
            }
        }
        Payload::ChecksumF64 { len, sum } => {
            out.push(2);
            put_u64(out, *len as u64);
            put_f64(out, *sum);
        }
        Payload::FullF64(values) => {
            out.push(3);
            put_u32(out, values.len() as u32);
            for v in values {
                put_f64(out, *v);
            }
        }
    }
}

fn put_counters(out: &mut Vec<u8>, pairs: &[(String, u64)]) {
    put_u32(out, pairs.len() as u32);
    for (k, v) in pairs {
        put_str(out, k);
        put_u64(out, *v);
    }
}

/// Encode one server→client response as a complete frame.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut body = Vec::new();
    let kind = match resp {
        Response::Done(DoneMsg { token, outcome }) => {
            put_u64(&mut body, *token);
            match outcome {
                DoneOutcome::Ok {
                    scheme,
                    elapsed_ns,
                    profile_hit,
                    fused_with,
                    batched_with,
                    payload,
                } => {
                    body.push(0);
                    put_str(&mut body, scheme);
                    put_u64(&mut body, *elapsed_ns);
                    body.push(u8::from(*profile_hit));
                    put_u32(&mut body, *fused_with as u32);
                    put_u32(&mut body, *batched_with as u32);
                    put_payload(&mut body, payload);
                }
                DoneOutcome::Err {
                    kind,
                    signature,
                    message,
                } => {
                    body.push(1);
                    put_str(&mut body, kind);
                    put_u64(&mut body, *signature);
                    put_str(&mut body, message);
                }
            }
            K_DONE
        }
        Response::Stats(pairs) => {
            put_counters(&mut body, pairs);
            K_R_STATS
        }
        Response::StatsV2(v2) => {
            put_counters(&mut body, &v2.counters);
            put_u32(&mut body, v2.hists.len() as u32);
            for h in &v2.hists {
                put_str(&mut body, &h.name);
                put_str(&mut body, &h.label_key);
                put_str(&mut body, &h.label_value);
                for v in [h.count, h.p50, h.p95, h.p99, h.max] {
                    put_u64(&mut body, v);
                }
            }
            put_u32(&mut body, v2.quarantined.len() as u32);
            for (sig, ttl) in &v2.quarantined {
                put_u64(&mut body, *sig);
                put_u64(&mut body, *ttl);
            }
            K_R_STATS_V2
        }
        Response::Drained(n) => {
            put_u64(&mut body, *n);
            K_DRAINED
        }
        Response::Unquarantined(found) => {
            body.push(u8::from(*found));
            K_UNQUARANTINED
        }
        Response::Uploaded { token, handle } => {
            put_u64(&mut body, *token);
            put_u64(&mut body, *handle);
            K_UPLOADED
        }
        Response::Upgraded => K_UPGRADED,
        Response::Explained(info) => {
            match info {
                None => body.push(0),
                Some(info) => {
                    body.push(1);
                    put_explain_info(&mut body, info);
                }
            }
            K_EXPLAINED
        }
        Response::Slowlog(entries) => {
            put_u32(&mut body, entries.len() as u32);
            for e in entries {
                put_slowlog_entry(&mut body, e);
            }
            K_R_SLOWLOG
        }
        Response::Error(msg) => {
            put_str(&mut body, msg);
            K_ERROR
        }
    };
    frame(kind, body)
}

/// Encode the metrics-exposition reply (raw bytes) as a complete frame.
pub fn encode_metrics_frame(exposition: &[u8]) -> Vec<u8> {
    frame(K_METRICS_BODY, exposition.to_vec())
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Bounds-checked little-endian reader over one frame body.  Every
/// accessor returns `Err` past the end — a truncated or lying frame is a
/// decode error, never a panic.
struct Cur<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Self {
        Cur { b, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.b.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "frame truncated: need {n} bytes, have {}",
                self.remaining()
            ));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn i64(&mut self) -> Result<i64, String> {
        Ok(self.u64()? as i64)
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn usize(&mut self) -> Result<usize, String> {
        usize::try_from(self.u64()?).map_err(|_| "value exceeds usize".to_string())
    }

    fn bool(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(format!("bad bool byte {t}")),
        }
    }

    fn str(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| "invalid utf-8 string".to_string())
    }

    /// A vector count whose elements occupy at least `min_elem_bytes`
    /// each: rejects counts the remaining body cannot possibly hold, so
    /// a lying count cannot drive a giant allocation.
    fn vec_len(&mut self, min_elem_bytes: usize) -> Result<usize, String> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes) > self.remaining() {
            return Err(format!(
                "frame declares {n} elements but only {} bytes remain",
                self.remaining()
            ));
        }
        Ok(n)
    }

    fn done(&self) -> Result<(), String> {
        if self.remaining() != 0 {
            return Err(format!("frame has {} trailing bytes", self.remaining()));
        }
        Ok(())
    }
}

fn get_spec(c: &mut Cur<'_>) -> Result<WireSpec, String> {
    let elements = c.usize()?;
    let iterations = c.usize()?;
    let refs_per_iter = c.usize()?;
    let coverage = c.f64()?;
    let dist = match c.u8()? {
        0 => WireDist::Uniform,
        1 => WireDist::Zipf(c.f64()?),
        2 => WireDist::Clustered(c.u32()?),
        t => return Err(format!("unknown dist tag {t}")),
    };
    let seed = c.u64()?;
    Ok(WireSpec {
        elements,
        iterations,
        refs_per_iter,
        coverage,
        dist,
        seed,
    })
}

fn get_submit(c: &mut Cur<'_>) -> Result<SubmitArgs, String> {
    let token = c.u64()?;
    let reply = match c.u8()? {
        0 => ReplyMode::Ack,
        1 => ReplyMode::Full,
        t => return Err(format!("unknown reply tag {t}")),
    };
    let body = match c.u8()? {
        0 => WireBody::Sum,
        1 => WireBody::Mul(c.i64()?),
        2 => WireBody::Panic,
        3 => WireBody::FSum,
        4 => WireBody::Usum,
        5 => WireBody::Fusum,
        t => return Err(format!("unknown body tag {t}")),
    };
    let source = match c.u8()? {
        0 => WireSource::Gen(get_spec(c)?),
        1 => WireSource::Handle(c.u64()?),
        t => return Err(format!("unknown source tag {t}")),
    };
    Ok(SubmitArgs {
        token,
        reply,
        body,
        source,
    })
}

/// Decode one request frame (kind byte + body, header already split off
/// by [`FrameBuf`]).
pub fn decode_request(kind: u8, body: &[u8]) -> Result<Request, String> {
    let mut c = Cur::new(body);
    let req = match kind {
        K_SUBMIT => Request::Submit(get_submit(&mut c)?),
        K_BATCH => {
            // A submit is ≥ 11 bytes; 1 guards allocation, parsing guards
            // the rest.
            let n = c.vec_len(1)?;
            if n == 0 {
                return Err("batch count must be >= 1".into());
            }
            let mut jobs = Vec::with_capacity(n);
            for _ in 0..n {
                jobs.push(get_submit(&mut c)?);
            }
            Request::Batch(jobs)
        }
        K_STATS => Request::Stats,
        K_STATS_V2 => Request::StatsV2,
        K_METRICS => Request::Metrics,
        K_DRAIN => Request::Drain,
        K_UNQUARANTINE => Request::Unquarantine(c.u64()?),
        K_UPLOAD => {
            let token = c.u64()?;
            let num_elements = c.usize()?;
            let np = c.vec_len(4)?;
            let mut iter_ptr = Vec::with_capacity(np);
            for _ in 0..np {
                iter_ptr.push(c.u32()?);
            }
            let ni = c.vec_len(4)?;
            let mut indices = Vec::with_capacity(ni);
            for _ in 0..ni {
                indices.push(c.u32()?);
            }
            Request::Upload(UploadArgs {
                token,
                num_elements,
                iter_ptr,
                indices,
            })
        }
        K_UPGRADE => Request::UpgradeBin,
        K_EXPLAIN => {
            let target = match c.u8()? {
                0 => ExplainTarget::Signature(c.u64()?),
                1 => ExplainTarget::Handle(c.u64()?),
                t => return Err(format!("unknown explain target tag {t}")),
            };
            Request::Explain(target)
        }
        K_SLOWLOG => Request::Slowlog(c.usize()?),
        other => return Err(format!("unknown request kind 0x{other:02x}")),
    };
    c.done()?;
    Ok(req)
}

fn get_gate(c: &mut Cur<'_>) -> Result<WireGate, String> {
    Ok(WireGate {
        fired: c.bool()?,
        reason: c.str()?,
    })
}

fn get_explain_info(c: &mut Cur<'_>) -> Result<ExplainInfo, String> {
    let signature = c.u64()?;
    let domain = c.str()?;
    let winner = c.str()?;
    let backend = c.str()?;
    let explored = c.bool()?;
    let rechecked = c.bool()?;
    let flips = c.u64()?;
    let fusion = get_gate(c)?;
    let simplify = get_gate(c)?;
    let quarantine = get_gate(c)?;
    // Each feature is ≥ 12 bytes (empty name + f64 value).
    let nf = c.vec_len(12)?;
    let mut features = Vec::with_capacity(nf);
    for _ in 0..nf {
        let name = c.str()?;
        let value = c.f64()?;
        features.push((name, value));
    }
    // Each candidate is ≥ 21 bytes (empty scheme + 2 f64 + flag).
    let nc = c.vec_len(21)?;
    let mut candidates = Vec::with_capacity(nc);
    for _ in 0..nc {
        candidates.push(WireCandidate {
            scheme: c.str()?,
            analytic: c.f64()?,
            corrected: c.f64()?,
            feasible: c.bool()?,
        });
    }
    Ok(ExplainInfo {
        signature,
        domain,
        winner,
        backend,
        explored,
        rechecked,
        flips,
        fusion,
        simplify,
        quarantine,
        features,
        candidates,
    })
}

fn get_slowlog_entry(c: &mut Cur<'_>) -> Result<SlowlogEntry, String> {
    let class = c.u64()?;
    let latency_ns = c.u64()?;
    let scheme = c.str()?;
    let backend = c.str()?;
    let error = c.str()?;
    let fused = u16::try_from(c.u32()?).map_err(|_| "fused count exceeds u16".to_string())?;
    let mut stages = [0u64; 5];
    for s in &mut stages {
        *s = c.u64()?;
    }
    let winner = c.str()?;
    Ok(SlowlogEntry {
        class,
        latency_ns,
        scheme,
        backend,
        error,
        fused,
        queue_ns: stages[0],
        decide_ns: stages[1],
        simplify_ns: stages[2],
        exec_ns: stages[3],
        completion_ns: stages[4],
        winner,
    })
}

fn get_payload(c: &mut Cur<'_>) -> Result<Payload, String> {
    Ok(match c.u8()? {
        0 => Payload::Checksum {
            len: c.usize()?,
            sum: c.i64()?,
        },
        1 => {
            let n = c.vec_len(8)?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(c.i64()?);
            }
            Payload::Full(values)
        }
        2 => Payload::ChecksumF64 {
            len: c.usize()?,
            sum: c.f64()?,
        },
        3 => {
            let n = c.vec_len(8)?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(c.f64()?);
            }
            Payload::FullF64(values)
        }
        t => return Err(format!("unknown payload tag {t}")),
    })
}

fn get_counters(c: &mut Cur<'_>) -> Result<Vec<(String, u64)>, String> {
    // Each pair is ≥ 12 bytes (empty key + value).
    let n = c.vec_len(12)?;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        let k = c.str()?;
        let v = c.u64()?;
        pairs.push((k, v));
    }
    Ok(pairs)
}

/// Decode one response frame (kind byte + body).
pub fn decode_response(kind: u8, body: &[u8]) -> Result<BinMsg, String> {
    let mut c = Cur::new(body);
    let resp = match kind {
        K_DONE => {
            let token = c.u64()?;
            let outcome = match c.u8()? {
                0 => {
                    let scheme = c.str()?;
                    let elapsed_ns = c.u64()?;
                    let profile_hit = match c.u8()? {
                        0 => false,
                        1 => true,
                        t => return Err(format!("bad profile_hit {t}")),
                    };
                    let fused_with = c.u32()? as usize;
                    let batched_with = c.u32()? as usize;
                    let payload = get_payload(&mut c)?;
                    DoneOutcome::Ok {
                        scheme,
                        elapsed_ns,
                        profile_hit,
                        fused_with,
                        batched_with,
                        payload,
                    }
                }
                1 => DoneOutcome::Err {
                    kind: c.str()?,
                    signature: c.u64()?,
                    message: c.str()?,
                },
                t => return Err(format!("unknown done status {t}")),
            };
            Response::Done(DoneMsg { token, outcome })
        }
        K_R_STATS => Response::Stats(get_counters(&mut c)?),
        K_R_STATS_V2 => {
            let counters = get_counters(&mut c)?;
            // Each digest is ≥ 52 bytes (3 empty strings + 5 u64).
            let m = c.vec_len(52)?;
            let mut hists = Vec::with_capacity(m);
            for _ in 0..m {
                let name = c.str()?;
                let label_key = c.str()?;
                let label_value = c.str()?;
                let mut nums = [0u64; 5];
                for n in &mut nums {
                    *n = c.u64()?;
                }
                hists.push(HistSummary {
                    name,
                    label_key,
                    label_value,
                    count: nums[0],
                    p50: nums[1],
                    p95: nums[2],
                    p99: nums[3],
                    max: nums[4],
                });
            }
            let q = c.vec_len(16)?;
            let mut quarantined = Vec::with_capacity(q);
            for _ in 0..q {
                let sig = c.u64()?;
                let ttl = c.u64()?;
                quarantined.push((sig, ttl));
            }
            Response::StatsV2(StatsV2 {
                counters,
                hists,
                quarantined,
            })
        }
        K_DRAINED => Response::Drained(c.u64()?),
        K_UNQUARANTINED => match c.u8()? {
            0 => Response::Unquarantined(false),
            1 => Response::Unquarantined(true),
            t => return Err(format!("bad unquarantined flag {t}")),
        },
        K_UPLOADED => Response::Uploaded {
            token: c.u64()?,
            handle: c.u64()?,
        },
        K_UPGRADED => Response::Upgraded,
        K_EXPLAINED => match c.u8()? {
            0 => Response::Explained(None),
            1 => Response::Explained(Some(get_explain_info(&mut c)?)),
            t => return Err(format!("bad explained presence byte {t}")),
        },
        K_R_SLOWLOG => {
            // Each entry is ≥ 76 bytes (3 empty strings + fixed fields +
            // empty winner).
            let n = c.vec_len(76)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push(get_slowlog_entry(&mut c)?);
            }
            Response::Slowlog(entries)
        }
        K_ERROR => Response::Error(c.str()?),
        K_METRICS_BODY => {
            return Ok(BinMsg::Metrics(body.to_vec()));
        }
        other => return Err(format!("unknown response kind 0x{other:02x}")),
    };
    c.done()?;
    Ok(BinMsg::Response(Box::new(resp)))
}

// ---------------------------------------------------------------------
// Incremental frame splitting
// ---------------------------------------------------------------------

/// What [`FrameBuf::next_frame`] found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameStep {
    /// A complete frame: kind byte and body.
    Frame {
        /// The kind byte.
        kind: u8,
        /// The frame body (everything after the kind byte).
        body: Vec<u8>,
    },
    /// The buffer holds only part of a frame; feed more bytes.
    NeedMore,
}

/// Incremental frame splitter: feed arbitrary byte chunks (a nonblocking
/// read may deliver half a header, or three frames and a half), pop
/// complete frames.  One `FrameBuf` per connection per direction;
/// protocol errors (zero or over-cap declared length) are sticky — the
/// caller must fail the connection, matching the text protocol's
/// close-on-error behavior.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by popped frames (compacted
    /// lazily so a trickle of tiny frames does not memmove per frame).
    pos: usize,
}

impl FrameBuf {
    /// An empty splitter.
    pub fn new() -> Self {
        FrameBuf::default()
    }

    /// Append raw bytes received from the peer.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing once the dead prefix dominates.
        if self.pos > 0 && (self.pos >= 4096 || self.pos * 2 >= self.buf.len()) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pop the next complete frame, if the buffer holds one.  `Err` is a
    /// protocol violation (declared length zero or beyond `max_frame`):
    /// the stream cannot be resynchronized and the connection must be
    /// failed.
    pub fn next_frame(&mut self, max_frame: u32) -> Result<FrameStep, String> {
        let avail = &self.buf[self.pos..];
        if avail.len() < FRAME_HEADER_BYTES {
            return Ok(FrameStep::NeedMore);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]);
        if len == 0 {
            return Err("frame length 0 (missing kind byte)".into());
        }
        if len > max_frame {
            return Err(format!("frame length {len} exceeds cap {max_frame}"));
        }
        let total = FRAME_HEADER_BYTES + len as usize;
        if avail.len() < total {
            return Ok(FrameStep::NeedMore);
        }
        let kind = avail[FRAME_HEADER_BYTES];
        let body = avail[FRAME_HEADER_BYTES + 1..total].to_vec();
        self.pos += total;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        Ok(FrameStep::Frame { kind, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_submit() -> SubmitArgs {
        SubmitArgs {
            token: 77,
            reply: ReplyMode::Full,
            body: WireBody::FSum,
            source: WireSource::Gen(WireSpec {
                elements: 512,
                iterations: 900,
                refs_per_iter: 2,
                coverage: 0.75,
                dist: WireDist::Zipf(1.1),
                seed: 7,
            }),
        }
    }

    fn feed_whole(frame: &[u8]) -> (u8, Vec<u8>) {
        let mut fb = FrameBuf::new();
        fb.extend(frame);
        match fb.next_frame(DEFAULT_MAX_FRAME_BYTES).unwrap() {
            FrameStep::Frame { kind, body } => {
                assert_eq!(fb.pending(), 0);
                (kind, body)
            }
            FrameStep::NeedMore => panic!("whole frame must split"),
        }
    }

    #[test]
    fn requests_round_trip_binary() {
        for req in [
            Request::Submit(sample_submit()),
            Request::Batch(vec![
                sample_submit(),
                SubmitArgs {
                    token: 78,
                    reply: ReplyMode::Ack,
                    body: WireBody::Mul(-3),
                    source: WireSource::Handle(0x2a),
                },
                SubmitArgs {
                    token: 79,
                    reply: ReplyMode::Ack,
                    body: WireBody::Usum,
                    source: WireSource::Handle(0x2b),
                },
                SubmitArgs {
                    token: 80,
                    reply: ReplyMode::Full,
                    body: WireBody::Fusum,
                    source: WireSource::Handle(0x2c),
                },
            ]),
            Request::Stats,
            Request::StatsV2,
            Request::Metrics,
            Request::Drain,
            Request::Unquarantine(0xdead_beef),
            Request::Upload(UploadArgs {
                token: 5,
                num_elements: 4,
                iter_ptr: vec![0, 2, 2, 3],
                indices: vec![1, 3, 0],
            }),
            Request::UpgradeBin,
            Request::Explain(ExplainTarget::Signature(0xfeed_0007)),
            Request::Explain(ExplainTarget::Handle(0x2a)),
            Request::Slowlog(32),
        ] {
            let (kind, body) = feed_whole(&encode_request(&req));
            assert_eq!(decode_request(kind, &body).as_ref(), Ok(&req));
        }
    }

    fn sample_explain() -> ExplainInfo {
        ExplainInfo {
            signature: 0xfeed_0007,
            domain: "d11r2s10m2".into(),
            winner: "hash".into(),
            backend: "simd".into(),
            explored: true,
            rechecked: false,
            flips: 2,
            fusion: WireGate {
                fired: false,
                reason: "group-of-one".into(),
            },
            simplify: WireGate {
                fired: true,
                reason: "prefix".into(),
            },
            quarantine: WireGate {
                fired: false,
                reason: "clear".into(),
            },
            features: vec![("references".into(), 1800.0), ("sp".into(), 0.734)],
            candidates: vec![
                WireCandidate {
                    scheme: "hash".into(),
                    analytic: 1234.5,
                    corrected: 987.25,
                    feasible: true,
                },
                WireCandidate {
                    scheme: "pclr".into(),
                    analytic: f64::INFINITY,
                    corrected: f64::INFINITY,
                    feasible: false,
                },
            ],
        }
    }

    fn sample_slowlog() -> SlowlogEntry {
        SlowlogEntry {
            class: 0xfeed_0007,
            latency_ns: 1_250_000,
            scheme: "hash".into(),
            backend: "software".into(),
            error: "none".into(),
            fused: 4,
            queue_ns: 10_000,
            decide_ns: 40_000,
            simplify_ns: 0,
            exec_ns: 1_100_000,
            completion_ns: 100_000,
            winner: "hash".into(),
        }
    }

    #[test]
    fn responses_round_trip_binary() {
        for resp in [
            Response::Done(DoneMsg {
                token: 9,
                outcome: DoneOutcome::Ok {
                    scheme: "hash".into(),
                    elapsed_ns: 123_456,
                    profile_hit: true,
                    fused_with: 5,
                    batched_with: 7,
                    payload: Payload::FullF64(vec![1.5, -2.25, f64::MIN_POSITIVE]),
                },
            }),
            Response::Done(DoneMsg {
                token: 11,
                outcome: DoneOutcome::Err {
                    kind: "panic".into(),
                    signature: 0xabc,
                    message: "bad row 7 of 9".into(),
                },
            }),
            Response::Stats(vec![("submitted".into(), 12)]),
            Response::StatsV2(StatsV2 {
                counters: vec![("completed".into(), 12)],
                hists: vec![HistSummary {
                    name: "smartapps_exec_ns".into(),
                    label_key: "scheme".into(),
                    label_value: "hash".into(),
                    count: 40,
                    p50: 1023,
                    p95: 8191,
                    p99: 16383,
                    max: 12345,
                }],
                quarantined: vec![(0xabc, 17)],
            }),
            Response::Drained(40),
            Response::Unquarantined(true),
            Response::Uploaded {
                token: 12,
                handle: 3,
            },
            Response::Upgraded,
            Response::Explained(None),
            Response::Explained(Some(sample_explain())),
            Response::Slowlog(vec![]),
            Response::Slowlog(vec![sample_slowlog(), sample_slowlog()]),
            Response::Error("line too long".into()),
        ] {
            let (kind, body) = feed_whole(&encode_response(&resp));
            assert_eq!(
                decode_response(kind, &body).as_ref(),
                Ok(&BinMsg::Response(Box::new(resp.clone()))),
                "resp: {resp:?}"
            );
        }
    }

    #[test]
    fn metrics_frame_round_trips_raw() {
        let text = b"# TYPE smartapps_request_ns histogram\n...";
        let (kind, body) = feed_whole(&encode_metrics_frame(text));
        assert_eq!(
            decode_response(kind, &body),
            Ok(BinMsg::Metrics(text.to_vec()))
        );
    }

    #[test]
    fn framebuf_reassembles_byte_trickle() {
        let a = encode_request(&Request::Submit(sample_submit()));
        let b = encode_request(&Request::Drain);
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let mut fb = FrameBuf::new();
        let mut got = Vec::new();
        for &byte in &all {
            fb.extend(&[byte]);
            while let FrameStep::Frame { kind, body } =
                fb.next_frame(DEFAULT_MAX_FRAME_BYTES).unwrap()
            {
                got.push(decode_request(kind, &body).unwrap());
            }
        }
        assert_eq!(got, vec![Request::Submit(sample_submit()), Request::Drain]);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn framebuf_rejects_zero_and_oversized_lengths() {
        let mut fb = FrameBuf::new();
        fb.extend(&[0, 0, 0, 0]);
        assert!(fb.next_frame(DEFAULT_MAX_FRAME_BYTES).is_err());
        let mut fb = FrameBuf::new();
        fb.extend(&u32::MAX.to_le_bytes());
        assert!(fb.next_frame(1024).is_err());
    }

    #[test]
    fn truncated_bodies_error_not_panic() {
        let full = encode_request(&Request::Submit(sample_submit()));
        let kind = full[FRAME_HEADER_BYTES];
        let body = &full[FRAME_HEADER_BYTES + 1..];
        for cut in 0..body.len() {
            assert!(
                decode_request(kind, &body[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
        // Trailing garbage is also rejected.
        let mut long = body.to_vec();
        long.push(0);
        assert!(decode_request(kind, &long).is_err());
    }

    #[test]
    fn lying_vec_counts_cannot_allocate() {
        // A batch frame declaring u32::MAX jobs with a 4-byte body must
        // fail fast on the count check, not try to reserve gigabytes.
        let body = u32::MAX.to_le_bytes();
        assert!(decode_request(0x02, &body).is_err());
    }
}
