//! The sharded job queue feeding N shard-affine dispatchers.
//!
//! Jobs land in `shards` independent FIFO lanes selected by pattern
//! signature, so concurrent client threads submitting different workload
//! classes never contend on one lock, while jobs of the *same* class
//! always share a shard — which is what makes batch coalescing a cheap
//! single-shard drain instead of a global scan.
//!
//! **Shard affinity.**  The queue is built for a fixed number of `owners`
//! (dispatcher threads); shard `s` belongs to dispatcher `s % owners`.
//! Each dispatcher pops from its own shards in round-robin order (no class
//! it owns can starve another) and receives, in one pop, up to `max_batch`
//! queued jobs carrying the first job's signature.  Affinity keeps a
//! workload class on one dispatcher — its inspection cache stays warm and
//! two dispatchers never race to decide the same class.
//!
//! **Work stealing.**  When a dispatcher's own shards drain while work
//! remains queued elsewhere, it steals one batch from the *longest*
//! foreign shard — the overloaded-peer heuristic — so a single flooded
//! class cannot leave N-1 dispatchers idle.  With `owners == 1` every
//! shard is owned and stealing never happens, which is exactly the
//! single-dispatcher configuration the throughput bench compares against.

use crate::completion::CompletionSink;
use crate::job::{JobSpec, PatternSignature};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// One queued job: the spec, its signature, the completion sink the
/// finished result is routed through (handle slot, completion queue, or
/// callback — see [`CompletionSink`]), and the submission instant the
/// telemetry layer measures queue-wait from.
pub(crate) struct QueuedJob {
    pub spec: JobSpec,
    pub sig: PatternSignature,
    pub sink: CompletionSink,
    pub submitted_at: Instant,
}

/// One successful pop: a same-signature batch plus whether it was taken
/// from a foreign shard (a steal).
pub(crate) struct Pop {
    pub jobs: Vec<QueuedJob>,
    pub stolen: bool,
}

/// Signature-sharded multi-producer queue with coalescing batch pops,
/// shard-affine ownership, and cross-owner stealing.
pub(crate) struct ShardedQueue {
    shards: Vec<Mutex<VecDeque<QueuedJob>>>,
    /// Per-shard queued-job counts (updated under the shard lock; read
    /// without it by the steal heuristic, which only needs a hint).
    lens: Vec<AtomicUsize>,
    /// Count of queued jobs plus the wakeup channel for the dispatchers.
    pending: Mutex<usize>,
    cv: Condvar,
    closed: AtomicBool,
    /// Per-owner round-robin cursors over that owner's shards.
    cursors: Vec<Mutex<usize>>,
    /// Precomputed shard partition per owner (ownership is fixed at
    /// construction; the pop path must not allocate).
    owned_of: Vec<Vec<usize>>,
    foreign_of: Vec<Vec<usize>>,
    owners: usize,
}

impl ShardedQueue {
    /// A queue of `shards` lanes owned by `owners` dispatchers (shard `s`
    /// belongs to owner `s % owners`).
    pub(crate) fn new(shards: usize, owners: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(owners >= 1, "need at least one owner");
        ShardedQueue {
            shards: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            lens: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
            pending: Mutex::new(0),
            cv: Condvar::new(),
            closed: AtomicBool::new(false),
            cursors: (0..owners).map(|_| Mutex::new(0)).collect(),
            owned_of: (0..owners)
                .map(|o| (0..shards).filter(|s| s % owners == o).collect())
                .collect(),
            foreign_of: (0..owners)
                .map(|o| (0..shards).filter(|s| s % owners != o).collect())
                .collect(),
            owners,
        }
    }

    fn shard_of(&self, sig: PatternSignature) -> usize {
        (sig.0 % self.shards.len() as u64) as usize
    }

    /// Enqueue a job.  After [`close`](Self::close) the job is handed
    /// back (`Err`) so the caller can complete its sink with a shutdown
    /// error instead of losing it.
    pub(crate) fn push(&self, job: QueuedJob) -> Result<(), QueuedJob> {
        if self.closed.load(Ordering::Acquire) {
            return Err(job);
        }
        let shard = self.shard_of(job.sig);
        // The pending increment happens while the shard lock is held:
        // a popper that drains this job from the shard is then guaranteed
        // to observe its increment too, so the counter can never go
        // negative when a batch coalesces a just-inserted job.
        let mut q = self.shards[shard].lock().unwrap_or_else(|p| p.into_inner());
        q.push_back(job);
        self.lens[shard].fetch_add(1, Ordering::Relaxed);
        let mut pending = self.pending.lock().unwrap_or_else(|p| p.into_inner());
        *pending += 1;
        drop(pending);
        drop(q);
        self.cv.notify_one();
        Ok(())
    }

    /// Drain one coalesced batch from `shard` if it is non-empty: the
    /// oldest job plus every other job of the same signature in the
    /// shard's FIFO, up to `max_batch` total.
    fn drain_shard(&self, shard: usize, max_batch: usize) -> Option<Vec<QueuedJob>> {
        let mut q = self.shards[shard].lock().unwrap_or_else(|p| p.into_inner());
        let first = q.pop_front()?;
        let sig = first.sig;
        let mut batch = vec![first];
        if max_batch > 1 {
            // Coalesce same-signature jobs wherever they sit in this
            // shard's FIFO; other signatures keep their order.
            let mut rest = VecDeque::with_capacity(q.len());
            while let Some(job) = q.pop_front() {
                if batch.len() < max_batch && job.sig == sig {
                    batch.push(job);
                } else {
                    rest.push_back(job);
                }
            }
            *q = rest;
        }
        self.lens[shard].fetch_sub(batch.len(), Ordering::Relaxed);
        // Settle the counter before releasing the shard so a concurrent
        // push to this shard (which orders its increment after our drain)
        // still sees consistent state.
        let mut pending = self.pending.lock().unwrap_or_else(|p| p.into_inner());
        *pending -= batch.len();
        drop(pending);
        drop(q);
        Some(batch)
    }

    /// Block until `owner` can pop a batch (or the queue is closed and
    /// drained — then `None`).
    ///
    /// Owned shards are scanned first, round-robin from the owner's
    /// cursor.  When they are all empty but jobs remain queued, the owner
    /// *steals* one batch from the longest foreign shard (`stolen: true`).
    pub(crate) fn pop_batch_for(&self, owner: usize, max_batch: usize) -> Option<Pop> {
        assert!(max_batch >= 1);
        assert!(owner < self.owners, "unknown owner {owner}");
        let owned = &self.owned_of[owner];
        let foreign = &self.foreign_of[owner];
        loop {
            {
                let mut pending = self.pending.lock().unwrap_or_else(|p| p.into_inner());
                loop {
                    if *pending > 0 {
                        break;
                    }
                    if self.closed.load(Ordering::Acquire) {
                        return None;
                    }
                    pending = self.cv.wait(pending).unwrap_or_else(|p| p.into_inner());
                }
            }
            // Own shards first, round-robin so no owned class starves.
            if !owned.is_empty() {
                let start = {
                    let mut cur = self.cursors[owner]
                        .lock()
                        .unwrap_or_else(|p| p.into_inner());
                    let s = *cur;
                    *cur = (*cur + 1) % owned.len();
                    s
                };
                for k in 0..owned.len() {
                    let shard = owned[(start + k) % owned.len()];
                    if let Some(jobs) = self.drain_shard(shard, max_batch) {
                        return Some(Pop {
                            jobs,
                            stolen: false,
                        });
                    }
                }
            }
            // Own shards drained: steal from the most overloaded peer
            // shard.  Lengths are racy hints; the drain itself re-checks
            // under the shard lock, and a missed steal just loops.  Pick
            // the current longest shard each attempt (no allocation on
            // this hot path); a failed drain updates the hint, so the
            // bounded retry loop converges.
            for _ in 0..foreign.len() {
                let victim = foreign
                    .iter()
                    .copied()
                    .max_by_key(|&s| self.lens[s].load(Ordering::Relaxed));
                let Some(shard) = victim else { break };
                if self.lens[shard].load(Ordering::Relaxed) == 0 {
                    break; // longest shard empty: nothing left to steal
                }
                if let Some(jobs) = self.drain_shard(shard, max_batch) {
                    return Some(Pop { jobs, stolen: true });
                }
            }
            // Raced with other poppers that drained every shard between
            // our counter read and the scan; go back to waiting.
        }
    }

    /// Close the queue: rejects new pushes and wakes every dispatcher so
    /// they can drain what remains and exit.
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::Release);
        let _g = self.pending.lock().unwrap_or_else(|p| p.into_inner());
        self.cv.notify_all();
    }

    /// Jobs currently queued.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        *self.pending.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobBody, JobOutput, JobResult, JobState};
    use smartapps_reductions::Scheme;
    use smartapps_workloads::pattern::AccessPattern;
    use std::sync::Arc;
    use std::time::Duration;

    fn job(sig: u64) -> QueuedJob {
        let pattern = Arc::new(AccessPattern::from_iters(4, &[vec![0u32, 1]]));
        QueuedJob {
            spec: JobSpec {
                pattern,
                body: JobBody::I64(Arc::new(|_i, _r| 1)),
                threads: None,
                lw_feasible: false,
                uniform_body: false,
            },
            sig: PatternSignature(sig),
            sink: CompletionSink::Handle(JobState::new()),
            submitted_at: Instant::now(),
        }
    }

    /// Single-owner pop, as the old single-dispatcher runtime did it.
    fn pop(q: &ShardedQueue, max_batch: usize) -> Option<Vec<QueuedJob>> {
        q.pop_batch_for(0, max_batch).map(|p| {
            assert!(!p.stolen, "single owner can never steal");
            p.jobs
        })
    }

    #[test]
    fn coalesces_same_signature_within_shard() {
        let q = ShardedQueue::new(4, 1);
        for sig in [8u64, 8, 12, 8, 8] {
            assert!(q.push(job(sig)).is_ok());
        }
        // Shard 0 holds sigs 8 (x4) and 12 (x1); first pop batches all 8s.
        let batch = pop(&q, 16).unwrap();
        assert_eq!(batch.len(), 4);
        assert!(batch.iter().all(|j| j.sig == PatternSignature(8)));
        let batch = pop(&q, 16).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].sig, PatternSignature(12));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn max_batch_caps_coalescing() {
        let q = ShardedQueue::new(2, 1);
        for _ in 0..5 {
            assert!(q.push(job(6)).is_ok());
        }
        assert_eq!(pop(&q, 2).unwrap().len(), 2);
        assert_eq!(pop(&q, 2).unwrap().len(), 2);
        assert_eq!(pop(&q, 2).unwrap().len(), 1);
    }

    #[test]
    fn round_robin_across_shards() {
        let q = ShardedQueue::new(2, 1);
        assert!(q.push(job(0)).is_ok()); // shard 0
        assert!(q.push(job(1)).is_ok()); // shard 1
        assert!(q.push(job(2)).is_ok()); // shard 0
        let sigs: Vec<u64> = (0..3).map(|_| pop(&q, 1).unwrap()[0].sig.0).collect();
        // Each shard gets a turn before shard 0 is revisited.
        assert_eq!(sigs, vec![0, 1, 2]);
    }

    #[test]
    fn owners_prefer_their_own_shards() {
        let q = ShardedQueue::new(4, 2);
        assert!(q.push(job(0)).is_ok()); // shard 0 → owner 0
        assert!(q.push(job(1)).is_ok()); // shard 1 → owner 1
        let p0 = q.pop_batch_for(0, 4).unwrap();
        assert!(!p0.stolen);
        assert_eq!(p0.jobs[0].sig.0, 0);
        let p1 = q.pop_batch_for(1, 4).unwrap();
        assert!(!p1.stolen);
        assert_eq!(p1.jobs[0].sig.0, 1);
    }

    #[test]
    fn owner_with_empty_shards_steals_the_longest_foreign_shard() {
        let q = ShardedQueue::new(4, 2);
        // Owner 0 owns shards 0 and 2; owner 1 owns 1 and 3.  Flood
        // shard 2 and put one job on shard 0 — owner 1 has nothing of its
        // own and must steal, picking the longer shard 2 first.
        assert!(q.push(job(0)).is_ok());
        for _ in 0..3 {
            assert!(q.push(job(2)).is_ok());
        }
        let p = q.pop_batch_for(1, 16).unwrap();
        assert!(p.stolen, "foreign shard pop must count as a steal");
        assert_eq!(p.jobs.len(), 3, "steal takes the overloaded shard");
        assert!(p.jobs.iter().all(|j| j.sig.0 == 2));
        // The remaining job is still owner 0's to take, unstolen.
        let p = q.pop_batch_for(0, 16).unwrap();
        assert!(!p.stolen);
        assert_eq!(p.jobs[0].sig.0, 0);
    }

    #[test]
    fn steal_happens_only_when_own_shards_drain() {
        let q = ShardedQueue::new(4, 2);
        assert!(q.push(job(1)).is_ok()); // owner 1's own shard
        assert!(q.push(job(0)).is_ok()); // owner 0's shard
        let p = q.pop_batch_for(1, 4).unwrap();
        assert!(!p.stolen, "own work must win over a steal");
        assert_eq!(p.jobs[0].sig.0, 1);
        let p = q.pop_batch_for(1, 4).unwrap();
        assert!(p.stolen, "now only foreign work remains");
        assert_eq!(p.jobs[0].sig.0, 0);
    }

    #[test]
    fn close_rejects_pushes_and_unblocks_pop() {
        let q = Arc::new(ShardedQueue::new(2, 2));
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.pop_batch_for(1, 4));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(t.join().unwrap().is_none());
        assert!(q.push(job(0)).is_err());
    }

    #[test]
    fn close_still_drains_queued_jobs() {
        let q = ShardedQueue::new(2, 1);
        assert!(q.push(job(0)).is_ok());
        assert!(q.push(job(1)).is_ok());
        q.close();
        assert!(pop(&q, 4).is_some());
        assert!(pop(&q, 4).is_some());
        assert!(q.pop_batch_for(0, 4).is_none());
    }

    #[test]
    fn more_owners_than_shards_still_drain_by_stealing() {
        // Owners 2 and 3 own no shard of a 2-shard queue; they must be
        // able to steal everything rather than deadlock.
        let q = ShardedQueue::new(2, 4);
        assert!(q.push(job(0)).is_ok());
        assert!(q.push(job(1)).is_ok());
        let p = q.pop_batch_for(3, 4).unwrap();
        assert!(p.stolen);
        let p = q.pop_batch_for(2, 4).unwrap();
        assert!(p.stolen);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn completing_a_popped_job_wakes_its_handle() {
        let q = ShardedQueue::new(1, 1);
        let j = job(3);
        let CompletionSink::Handle(state) = &j.sink else {
            unreachable!()
        };
        let handle = crate::job::JobHandle {
            state: state.clone(),
            signature: j.sig,
        };
        assert!(q.push(j).is_ok());
        let batch = pop(&q, 1).unwrap();
        batch[0].sink.complete(
            batch[0].sig,
            JobResult {
                output: JobOutput::I64(vec![]),
                scheme: Scheme::Seq,
                elapsed: Duration::ZERO,
                sim_cycles: None,
                profile_hit: false,
                batched_with: 0,
                fused_with: 0,
                error: None,
            },
        );
        assert!(handle.try_wait().is_some());
    }
}
