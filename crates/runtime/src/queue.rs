//! The sharded job queue feeding the dispatcher.
//!
//! Jobs land in `shards` independent FIFO lanes selected by pattern
//! signature, so concurrent client threads submitting different workload
//! classes never contend on one lock, while jobs of the *same* class
//! always share a shard — which is what makes batch coalescing a cheap
//! single-shard drain instead of a global scan.  The dispatcher pops in
//! round-robin shard order (no class can starve another) and receives, in
//! one pop, up to `max_batch` queued jobs carrying the first job's
//! signature.

use crate::job::{JobSpec, JobState, PatternSignature};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// One queued job: the spec, its signature, and the handle's shared state.
pub(crate) struct QueuedJob {
    pub spec: JobSpec,
    pub sig: PatternSignature,
    pub state: Arc<JobState>,
}

/// Signature-sharded multi-producer queue with coalescing batch pops.
pub(crate) struct ShardedQueue {
    shards: Vec<Mutex<VecDeque<QueuedJob>>>,
    /// Count of queued jobs plus the wakeup channel for the dispatcher.
    pending: Mutex<usize>,
    cv: Condvar,
    closed: AtomicBool,
    /// Round-robin scan cursor (only the dispatcher advances it).
    cursor: Mutex<usize>,
}

impl ShardedQueue {
    pub(crate) fn new(shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        ShardedQueue {
            shards: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: Mutex::new(0),
            cv: Condvar::new(),
            closed: AtomicBool::new(false),
            cursor: Mutex::new(0),
        }
    }

    fn shard_of(&self, sig: PatternSignature) -> usize {
        (sig.0 % self.shards.len() as u64) as usize
    }

    /// Enqueue a job.  Returns `false` (job not queued) after
    /// [`close`](Self::close).
    pub(crate) fn push(&self, job: QueuedJob) -> bool {
        if self.closed.load(Ordering::Acquire) {
            return false;
        }
        let shard = self.shard_of(job.sig);
        // The pending increment happens while the shard lock is held:
        // a popper that drains this job from the shard is then guaranteed
        // to observe its increment too, so the counter can never go
        // negative when a batch coalesces a just-inserted job.
        let mut q = self.shards[shard].lock().unwrap_or_else(|p| p.into_inner());
        q.push_back(job);
        let mut pending = self.pending.lock().unwrap_or_else(|p| p.into_inner());
        *pending += 1;
        drop(pending);
        drop(q);
        self.cv.notify_one();
        true
    }

    /// Block until at least one job is queued (or the queue is closed and
    /// drained — then `None`).  Returns the oldest job of the next
    /// non-empty shard in round-robin order, together with every other
    /// job of the same signature in that shard, up to `max_batch` total.
    pub(crate) fn pop_batch(&self, max_batch: usize) -> Option<Vec<QueuedJob>> {
        assert!(max_batch >= 1);
        loop {
            {
                let mut pending = self.pending.lock().unwrap_or_else(|p| p.into_inner());
                loop {
                    if *pending > 0 {
                        break;
                    }
                    if self.closed.load(Ordering::Acquire) {
                        return None;
                    }
                    pending = self.cv.wait(pending).unwrap_or_else(|p| p.into_inner());
                }
            }
            let n = self.shards.len();
            let start = {
                let mut cur = self.cursor.lock().unwrap_or_else(|p| p.into_inner());
                let s = *cur;
                *cur = (*cur + 1) % n;
                s
            };
            for k in 0..n {
                let mut shard = self.shards[(start + k) % n]
                    .lock()
                    .unwrap_or_else(|p| p.into_inner());
                let Some(first) = shard.pop_front() else {
                    continue;
                };
                let sig = first.sig;
                let mut batch = vec![first];
                if max_batch > 1 {
                    // Coalesce same-signature jobs wherever they sit in
                    // this shard's FIFO; other signatures keep their order.
                    let mut rest = VecDeque::with_capacity(shard.len());
                    while let Some(job) = shard.pop_front() {
                        if batch.len() < max_batch && job.sig == sig {
                            batch.push(job);
                        } else {
                            rest.push_back(job);
                        }
                    }
                    *shard = rest;
                }
                // Settle the counter before releasing the shard so a
                // concurrent push to this shard (which orders its
                // increment after our drain) still sees consistent state.
                let mut pending = self.pending.lock().unwrap_or_else(|p| p.into_inner());
                *pending -= batch.len();
                drop(pending);
                drop(shard);
                return Some(batch);
            }
            // Raced with another popper that drained every shard between
            // our counter read and the scan; go back to waiting.
        }
    }

    /// Close the queue: rejects new pushes and wakes the dispatcher so it
    /// can drain what remains and exit.
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::Release);
        let _g = self.pending.lock().unwrap_or_else(|p| p.into_inner());
        self.cv.notify_all();
    }

    /// Jobs currently queued.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        *self.pending.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobBody, JobOutput, JobResult};
    use smartapps_reductions::Scheme;
    use smartapps_workloads::pattern::AccessPattern;
    use std::time::Duration;

    fn job(sig: u64) -> QueuedJob {
        let pattern = Arc::new(AccessPattern::from_iters(4, &[vec![0u32, 1]]));
        QueuedJob {
            spec: JobSpec {
                pattern,
                body: JobBody::I64(Arc::new(|_i, _r| 1)),
                threads: None,
                lw_feasible: false,
            },
            sig: PatternSignature(sig),
            state: JobState::new(),
        }
    }

    #[test]
    fn coalesces_same_signature_within_shard() {
        let q = ShardedQueue::new(4);
        for sig in [8u64, 8, 12, 8, 8] {
            assert!(q.push(job(sig)));
        }
        // Shard 0 holds sigs 8 (x4) and 12 (x1); first pop batches all 8s.
        let batch = q.pop_batch(16).unwrap();
        assert_eq!(batch.len(), 4);
        assert!(batch.iter().all(|j| j.sig == PatternSignature(8)));
        let batch = q.pop_batch(16).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].sig, PatternSignature(12));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn max_batch_caps_coalescing() {
        let q = ShardedQueue::new(2);
        for _ in 0..5 {
            q.push(job(6));
        }
        assert_eq!(q.pop_batch(2).unwrap().len(), 2);
        assert_eq!(q.pop_batch(2).unwrap().len(), 2);
        assert_eq!(q.pop_batch(2).unwrap().len(), 1);
    }

    #[test]
    fn round_robin_across_shards() {
        let q = ShardedQueue::new(2);
        q.push(job(0)); // shard 0
        q.push(job(1)); // shard 1
        q.push(job(2)); // shard 0
        let sigs: Vec<u64> = (0..3).map(|_| q.pop_batch(1).unwrap()[0].sig.0).collect();
        // Each shard gets a turn before shard 0 is revisited.
        assert_eq!(sigs, vec![0, 1, 2]);
    }

    #[test]
    fn close_rejects_pushes_and_unblocks_pop() {
        let q = Arc::new(ShardedQueue::new(2));
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.pop_batch(4));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(t.join().unwrap().map(|b| b.len()), None);
        assert!(!q.push(job(0)));
    }

    #[test]
    fn close_still_drains_queued_jobs() {
        let q = ShardedQueue::new(2);
        q.push(job(0));
        q.push(job(1));
        q.close();
        assert!(q.pop_batch(4).is_some());
        assert!(q.pop_batch(4).is_some());
        assert!(q.pop_batch(4).is_none());
    }

    #[test]
    fn completing_a_popped_job_wakes_its_handle() {
        let q = ShardedQueue::new(1);
        let j = job(3);
        let handle = crate::job::JobHandle {
            state: j.state.clone(),
            signature: j.sig,
        };
        q.push(j);
        let batch = q.pop_batch(1).unwrap();
        batch[0].state.complete(JobResult {
            output: JobOutput::I64(vec![]),
            scheme: Scheme::Seq,
            elapsed: Duration::ZERO,
            profile_hit: false,
            batched_with: 0,
            error: None,
        });
        assert!(handle.try_wait().is_some());
    }
}
