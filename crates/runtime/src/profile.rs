//! The cross-run profile store: pattern signature → best known scheme +
//! calibration, surviving process restarts.
//!
//! The paper's ToolBox keeps "data bases specific to the application and
//! the system" so optimization decisions improve across runs; the seed
//! threw that state away at process exit.  [`ProfileStore`] persists it:
//! a restarted service that sees a known workload class skips the full
//! inspection and goes straight to the remembered scheme, paying only the
//! (cheap) signature sampling.
//!
//! The on-disk format is a deliberately simple line-oriented text file —
//! the workspace's serde is a no-op stand-in (see `vendor/serde`), and a
//! format this small is easier to audit than a binary blob:
//!
//! ```text
//! smartapps-profile-v1
//! <sig:016x> <scheme> <threads> <ns_per_ref:e> <runs> <best_ns>
//! ```

use crate::job::PatternSignature;
use smartapps_core::toolbox::PerformanceDb;
use smartapps_reductions::Scheme;
use std::collections::HashMap;
use std::io::{self, Write as _};
use std::path::Path;
use std::time::Duration;

/// Magic first line of the on-disk format.
const HEADER: &str = "smartapps-profile-v1";

/// Calibration EMA weight for new measurements.
const CALIB_ALPHA: f64 = 0.3;

/// What the store remembers about one workload class.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEntry {
    /// Best known scheme for the class.
    pub scheme: Scheme,
    /// SPMD width the scheme was measured at.
    pub threads: usize,
    /// Calibration: EMA of wall-nanoseconds per reduction reference —
    /// the predictor the dispatcher checks measurements against.
    pub ns_per_ref: f64,
    /// Executions folded into this entry.
    pub runs: u64,
    /// Fastest observed execution, nanoseconds.
    pub best_ns: u64,
}

impl ProfileEntry {
    /// Predicted wall time for a pattern with `refs` references.
    pub fn predict(&self, refs: usize) -> Duration {
        Duration::from_nanos((self.ns_per_ref * refs as f64).max(0.0) as u64)
    }
}

/// A serializable signature → [`ProfileEntry`] map.
#[derive(Debug, Default, Clone)]
pub struct ProfileStore {
    entries: HashMap<u64, ProfileEntry>,
    /// Malformed lines skipped by the most recent parse (not persisted).
    skipped: usize,
}

impl ProfileStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of remembered workload classes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a signature.
    pub fn get(&self, sig: PatternSignature) -> Option<&ProfileEntry> {
        self.entries.get(&sig.0)
    }

    /// Fold one measured execution into the store.  A first observation
    /// creates the entry; repeats update the calibration EMA and best
    /// time, and a different scheme takes the entry over only when it
    /// beats the incumbent's best.
    pub fn record(
        &mut self,
        sig: PatternSignature,
        scheme: Scheme,
        threads: usize,
        refs: usize,
        elapsed: Duration,
    ) {
        let ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        let per_ref = ns as f64 / (refs.max(1)) as f64;
        match self.entries.get_mut(&sig.0) {
            None => {
                self.entries.insert(
                    sig.0,
                    ProfileEntry {
                        scheme,
                        threads,
                        ns_per_ref: per_ref,
                        runs: 1,
                        best_ns: ns,
                    },
                );
            }
            Some(e) => {
                if scheme == e.scheme {
                    e.ns_per_ref = (1.0 - CALIB_ALPHA) * e.ns_per_ref + CALIB_ALPHA * per_ref;
                    e.best_ns = e.best_ns.min(ns);
                    e.runs += 1;
                } else if ns < e.best_ns {
                    *e = ProfileEntry {
                        scheme,
                        threads,
                        ns_per_ref: per_ref,
                        runs: e.runs + 1,
                        best_ns: ns,
                    };
                } else {
                    e.runs += 1;
                }
            }
        }
    }

    /// Drop a signature (the dispatcher evicts entries whose predictions
    /// have drifted far from measurements — a phase change).
    pub fn evict(&mut self, sig: PatternSignature) -> bool {
        self.entries.remove(&sig.0).is_some()
    }

    /// Absorb the best measured scheme per functioning domain from an
    /// adaptive loop's [`PerformanceDb`], so a restarted service inherits
    /// what the feedback loop learned.
    pub fn absorb_performance_db(&mut self, db: &PerformanceDb) {
        for ((loop_id, domain), samples) in db.entries() {
            let Some(best) = samples.iter().min_by_key(|s| s.elapsed) else {
                continue;
            };
            let sig = PatternSignature::of_domain(loop_id, &domain);
            // The db doesn't carry reference counts; persist the scheme
            // choice and best time with a unit calibration basis.
            self.record(sig, best.scheme, 0, 1, best.elapsed);
        }
    }

    /// Serialize to the versioned text format.
    pub fn to_text(&self) -> String {
        let mut lines: Vec<String> = self
            .entries
            .iter()
            .map(|(sig, e)| {
                format!(
                    "{:016x} {} {} {:e} {} {}",
                    sig,
                    e.scheme.abbrev(),
                    e.threads,
                    e.ns_per_ref,
                    e.runs,
                    e.best_ns
                )
            })
            .collect();
        lines.sort(); // deterministic output
        let mut out = String::with_capacity(lines.len() * 48 + HEADER.len() + 1);
        out.push_str(HEADER);
        out.push('\n');
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }

    /// Parse the versioned text format.
    ///
    /// A missing header is a hard error (the file is not a profile
    /// store).  A **malformed line** — truncated fields, an unknown
    /// scheme, unparsable numbers, a non-finite calibration — is
    /// *skipped*, not fatal: one corrupt line (a torn write, a partial
    /// edit) must not poison every valid profile around it.  The number
    /// of skipped lines is available via [`last_load_skipped`]
    /// (diagnostics only).
    ///
    /// [`last_load_skipped`]: ProfileStore::last_load_skipped
    pub fn from_text(text: &str) -> io::Result<Self> {
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("profile store missing `{HEADER}` header"),
            ));
        }
        let mut entries = HashMap::new();
        let mut skipped = 0usize;
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            match Self::parse_line(line) {
                Some((sig, entry)) => {
                    entries.insert(sig, entry);
                }
                None => skipped += 1,
            }
        }
        Ok(ProfileStore { entries, skipped })
    }

    /// Parse one `<sig> <scheme> <threads> <ns_per_ref> <runs> <best_ns>`
    /// line; `None` if any field is missing, trailing junk follows, or a
    /// field fails validation.
    fn parse_line(line: &str) -> Option<(u64, ProfileEntry)> {
        let mut f = line.split_ascii_whitespace();
        let (sig, scheme, threads, calib, runs, best) = (
            f.next()?,
            f.next()?,
            f.next()?,
            f.next()?,
            f.next()?,
            f.next()?,
        );
        if f.next().is_some() {
            return None; // trailing fields: not our format
        }
        let sig = u64::from_str_radix(sig, 16).ok()?;
        let scheme = Scheme::from_abbrev(scheme)?;
        let ns_per_ref: f64 = calib.parse().ok()?;
        if !ns_per_ref.is_finite() || ns_per_ref < 0.0 {
            return None;
        }
        Some((
            sig,
            ProfileEntry {
                scheme,
                threads: threads.parse().ok()?,
                ns_per_ref,
                runs: runs.parse().ok()?,
                best_ns: best.parse().ok()?,
            },
        ))
    }

    /// How many malformed lines the most recent [`from_text`] /
    /// [`load`](ProfileStore::load) skipped.
    ///
    /// [`from_text`]: ProfileStore::from_text
    pub fn last_load_skipped(&self) -> usize {
        self.skipped
    }

    /// Write to `path` (atomically via a sibling temp file).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.to_text().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Read from `path`.
    pub fn load(path: &Path) -> io::Result<Self> {
        Self::from_text(&std::fs::read_to_string(path)?)
    }

    /// Merge another store in, keeping the faster entry per signature.
    pub fn merge(&mut self, other: &ProfileStore) {
        for (sig, e) in &other.entries {
            match self.entries.get(sig) {
                Some(mine) if mine.best_ns <= e.best_ns => {}
                _ => {
                    self.entries.insert(*sig, e.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(n: u64) -> PatternSignature {
        PatternSignature(n)
    }

    #[test]
    fn record_creates_updates_and_switches() {
        let mut s = ProfileStore::new();
        s.record(sig(1), Scheme::Rep, 4, 1000, Duration::from_micros(100));
        assert_eq!(s.len(), 1);
        let e = s.get(sig(1)).unwrap();
        assert_eq!(e.scheme, Scheme::Rep);
        assert_eq!(e.runs, 1);
        assert!((e.ns_per_ref - 100.0).abs() < 1e-9);

        // Same scheme: EMA + best update.
        s.record(sig(1), Scheme::Rep, 4, 1000, Duration::from_micros(50));
        let e = s.get(sig(1)).unwrap();
        assert_eq!(e.runs, 2);
        assert_eq!(e.best_ns, 50_000);
        assert!(e.ns_per_ref < 100.0);

        // Slower different scheme: incumbent keeps the entry.
        s.record(sig(1), Scheme::Hash, 4, 1000, Duration::from_micros(500));
        assert_eq!(s.get(sig(1)).unwrap().scheme, Scheme::Rep);

        // Faster different scheme: takeover.
        s.record(sig(1), Scheme::Sel, 4, 1000, Duration::from_micros(10));
        let e = s.get(sig(1)).unwrap();
        assert_eq!(e.scheme, Scheme::Sel);
        assert_eq!(e.best_ns, 10_000);
    }

    #[test]
    fn text_round_trip_preserves_entries() {
        let mut s = ProfileStore::new();
        s.record(
            sig(0xdead_beef),
            Scheme::Ll,
            8,
            123_456,
            Duration::from_millis(3),
        );
        s.record(sig(42), Scheme::Hash, 2, 10, Duration::from_nanos(777));
        s.record(sig(42), Scheme::Hash, 2, 10, Duration::from_nanos(555));
        let text = s.to_text();
        let back = ProfileStore::from_text(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(sig(42)).unwrap(), s.get(sig(42)).unwrap());
        assert_eq!(
            back.get(sig(0xdead_beef)).unwrap(),
            s.get(sig(0xdead_beef)).unwrap()
        );
        // Deterministic serialization.
        assert_eq!(text, back.to_text());
    }

    #[test]
    fn missing_header_is_fatal_but_bad_lines_are_skipped() {
        // Not a profile store at all: hard error.
        assert!(ProfileStore::from_text("").is_err());
        assert!(ProfileStore::from_text("wrong-header\n").is_err());
        // Malformed lines are dropped without poisoning valid neighbors.
        let text = format!(
            "{HEADER}\n\
             zzzz rep 4\n\
             00000000000000ff nope 4 1.0 1 10\n\
             0000000000000001 rep 4 1.5e2 3 77\n\
             0000000000000002 pclr 8 nan 1 10\n\
             0000000000000002 pclr 8 2e0 1 10\n\
             0000000000000003 hash 2 1e0 1 10 trailing-junk\n"
        );
        let s = ProfileStore::from_text(&text).unwrap();
        assert_eq!(s.len(), 2, "both valid lines survive");
        assert_eq!(s.get(sig(1)).unwrap().scheme, Scheme::Rep);
        assert_eq!(s.get(sig(2)).unwrap().scheme, Scheme::Pclr);
        assert!(s.get(sig(3)).is_none(), "trailing junk is not our format");
        assert_eq!(s.last_load_skipped(), 4);
        let ok_empty = ProfileStore::from_text(&format!("{HEADER}\n")).unwrap();
        assert!(ok_empty.is_empty());
        assert_eq!(ok_empty.last_load_skipped(), 0);
    }

    #[test]
    fn save_load_round_trip_on_disk() {
        let dir = std::env::temp_dir().join("smartapps-profile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("store-{}.txt", std::process::id()));
        let mut s = ProfileStore::new();
        s.record(sig(5), Scheme::Lw, 16, 9999, Duration::from_micros(250));
        s.save(&path).unwrap();
        let back = ProfileStore::load(&path).unwrap();
        assert_eq!(back.get(sig(5)), s.get(sig(5)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn eviction_forgets_a_class() {
        let mut s = ProfileStore::new();
        s.record(sig(9), Scheme::Rep, 4, 100, Duration::from_micros(1));
        assert!(s.evict(sig(9)));
        assert!(!s.evict(sig(9)));
        assert!(s.get(sig(9)).is_none());
    }

    #[test]
    fn prediction_scales_with_refs() {
        let mut s = ProfileStore::new();
        s.record(sig(2), Scheme::Rep, 4, 1000, Duration::from_micros(100));
        let e = s.get(sig(2)).unwrap();
        assert_eq!(e.predict(1000), Duration::from_micros(100));
        assert_eq!(e.predict(2000), Duration::from_micros(200));
    }
}
