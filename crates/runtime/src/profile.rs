//! The cross-run profile store: pattern signature → best known scheme +
//! calibration, surviving process restarts.
//!
//! The paper's ToolBox keeps "data bases specific to the application and
//! the system" so optimization decisions improve across runs; the seed
//! threw that state away at process exit.  [`ProfileStore`] persists it:
//! a restarted service that sees a known workload class skips the full
//! inspection and goes straight to the remembered scheme, paying only the
//! (cheap) signature sampling.
//!
//! The on-disk format is a deliberately simple line-oriented text file —
//! the workspace's serde is a no-op stand-in (see `vendor/serde`), and a
//! format this small is easier to audit than a binary blob.  Three record
//! kinds share the file (each line self-identifies; a reader that knows
//! only one kind skips the others as malformed, which the lossy parser
//! tolerates by design):
//!
//! ```text
//! smartapps-profile-v1
//! <sig:016x> <scheme> <threads> <ns_per_ref:e> <runs> <best_ns>
//! corr <scheme|*> <domain:08x|*> <s|f> <ns_per_unit:e> <updates>
//! simp <sig:016x> <0|1>
//! cyc <cycle_ns:e> <updates>
//! ```
//!
//! `corr` records persist the online calibrator's learned state (see
//! `smartapps_core::calibrate` and `docs/MODEL.md`): `*` in the scheme
//! column is the global ns-per-unit scale, `*` in the domain column a
//! per-scheme estimate, and `s`/`f` marks split vs fused execution.
//! `simp` records persist the simplification pass's *structural*
//! recognizer verdict per workload class (`docs/MODEL.md`,
//! "Simplification pass"): a `0` short-circuits recognition on sight —
//! the class provably lacks scan structure, so declared-uniform jobs
//! skip the row walk — while a `1` (or no record) still requires the
//! full structural walk before any rewrite, so a signature collision can
//! downgrade performance but never correctness.  `cyc` persists the
//! fitted PCLR cycle→nanosecond conversion.

use crate::job::PatternSignature;
use smartapps_core::calibrate::{CorrLevel, Correction};
use smartapps_core::toolbox::{DomainKey, PerformanceDb};
use smartapps_reductions::Scheme;
use std::collections::HashMap;
use std::io::{self, Write as _};
use std::path::Path;
use std::time::Duration;

/// Magic first line of the on-disk format.
const HEADER: &str = "smartapps-profile-v1";

/// Calibration EMA weight for new measurements.
const CALIB_ALPHA: f64 = 0.3;

/// What the store remembers about one workload class.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEntry {
    /// Best known scheme for the class.
    pub scheme: Scheme,
    /// SPMD width the scheme was measured at.
    pub threads: usize,
    /// Calibration: EMA of wall-nanoseconds per reduction reference —
    /// the predictor the dispatcher checks measurements against.
    pub ns_per_ref: f64,
    /// Executions folded into this entry.
    pub runs: u64,
    /// Fastest observed execution, nanoseconds.
    pub best_ns: u64,
}

impl ProfileEntry {
    /// Predicted wall time for a pattern with `refs` references.
    pub fn predict(&self, refs: usize) -> Duration {
        Duration::from_nanos((self.ns_per_ref * refs as f64).max(0.0) as u64)
    }
}

/// A serializable signature → [`ProfileEntry`] map, plus the calibration
/// state (`corr`/`cyc` records) that rides along in the same file.
#[derive(Debug, Default, Clone)]
pub struct ProfileStore {
    entries: HashMap<u64, ProfileEntry>,
    calibration: HashMap<CorrLevel, Correction>,
    /// Simplification-pass recognizer verdicts per signature (`simp`
    /// records): `false` = structurally not a scan (safe to skip
    /// recognition), `true` = scan structure was seen here before (the
    /// structural walk still re-runs before any rewrite).
    scan_verdicts: HashMap<u64, bool>,
    cycle_fit: Option<Correction>,
    /// Consecutive suspected-drift samples per signature, for the
    /// dispatcher's phase-change guard (transient — never persisted).
    strikes: HashMap<u64, u8>,
    /// Malformed lines skipped by the most recent parse (not persisted).
    skipped: usize,
}

impl ProfileStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of remembered workload classes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a signature.
    pub fn get(&self, sig: PatternSignature) -> Option<&ProfileEntry> {
        self.entries.get(&sig.0)
    }

    /// Fold one measured execution into the store.  A first observation
    /// creates the entry; repeats update the calibration EMA and best
    /// time, and a different scheme takes the entry over only when it
    /// beats the incumbent's best.
    pub fn record(
        &mut self,
        sig: PatternSignature,
        scheme: Scheme,
        threads: usize,
        refs: usize,
        elapsed: Duration,
    ) {
        let ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        let per_ref = ns as f64 / (refs.max(1)) as f64;
        match self.entries.get_mut(&sig.0) {
            None => {
                self.entries.insert(
                    sig.0,
                    ProfileEntry {
                        scheme,
                        threads,
                        ns_per_ref: per_ref,
                        runs: 1,
                        best_ns: ns,
                    },
                );
            }
            Some(e) => {
                if scheme == e.scheme {
                    e.ns_per_ref = (1.0 - CALIB_ALPHA) * e.ns_per_ref + CALIB_ALPHA * per_ref;
                    e.best_ns = e.best_ns.min(ns);
                    e.runs += 1;
                } else if ns < e.best_ns {
                    *e = ProfileEntry {
                        scheme,
                        threads,
                        ns_per_ref: per_ref,
                        runs: e.runs + 1,
                        best_ns: ns,
                    };
                } else {
                    e.runs += 1;
                }
            }
        }
    }

    /// Drop a signature (the dispatcher evicts entries whose predictions
    /// have drifted far from measurements — a phase change).
    pub fn evict(&mut self, sig: PatternSignature) -> bool {
        self.strikes.remove(&sig.0);
        self.entries.remove(&sig.0).is_some()
    }

    /// Count one suspected-drift observation (a measurement far over the
    /// entry's prediction) against `sig`; returns the consecutive strike
    /// count including this one.  A healthy sample resets the count via
    /// [`clear_drift`](ProfileStore::clear_drift); eviction forgets it.
    pub fn drift_strike(&mut self, sig: PatternSignature) -> u8 {
        let n = self.strikes.entry(sig.0).or_insert(0);
        *n = n.saturating_add(1);
        *n
    }

    /// Reset the consecutive-drift count for `sig` (a healthy sample
    /// arrived; whatever looked like drift was noise).
    pub fn clear_drift(&mut self, sig: PatternSignature) {
        self.strikes.remove(&sig.0);
    }

    /// Absorb the best measured scheme per functioning domain from an
    /// adaptive loop's [`PerformanceDb`], so a restarted service inherits
    /// what the feedback loop learned.
    pub fn absorb_performance_db(&mut self, db: &PerformanceDb) {
        for ((loop_id, domain), samples) in db.entries() {
            let Some(best) = samples.iter().min_by_key(|s| s.elapsed) else {
                continue;
            };
            let sig = PatternSignature::of_domain(loop_id, &domain);
            // The db doesn't carry reference counts; persist the scheme
            // choice and best time with a unit calibration basis.
            self.record(sig, best.scheme, 0, 1, best.elapsed);
        }
    }

    /// Replace the stored calibration state with an exported calibrator
    /// snapshot (`Calibrator::export`).  Invalid estimates are dropped.
    pub fn set_calibration(&mut self, state: impl IntoIterator<Item = (CorrLevel, Correction)>) {
        self.calibration = state
            .into_iter()
            .filter(|(_, c)| c.ns_per_unit.is_finite() && c.ns_per_unit > 0.0)
            .collect();
    }

    /// The persisted calibration state, for seeding a fresh calibrator.
    pub fn calibration(&self) -> impl Iterator<Item = (CorrLevel, Correction)> + '_ {
        self.calibration.iter().map(|(k, v)| (*k, *v))
    }

    /// Number of persisted calibration records (excluding entries).
    pub fn calibration_len(&self) -> usize {
        self.calibration.len()
    }

    /// Record the simplification pass's structural verdict for a class
    /// (`simp` record): whether the pattern family behind `sig` has
    /// contiguous-interval scan structure.  Last writer wins — the
    /// verdict is a property of the pattern, re-derived whenever the
    /// recognizer actually walks one.
    pub fn set_scan_verdict(&mut self, sig: PatternSignature, is_scan: bool) {
        self.scan_verdicts.insert(sig.0, is_scan);
    }

    /// The persisted recognizer verdict for `sig`, if any.  `Some(false)`
    /// lets the dispatcher skip recognition outright; `Some(true)` only
    /// says a walk is worth paying — it never authorizes a rewrite by
    /// itself.
    pub fn scan_verdict(&self, sig: PatternSignature) -> Option<bool> {
        self.scan_verdicts.get(&sig.0).copied()
    }

    /// Number of persisted recognizer verdicts.
    pub fn scan_verdict_len(&self) -> usize {
        self.scan_verdicts.len()
    }

    /// Store the fitted PCLR cycle→nanosecond conversion (`cyc` record).
    pub fn set_cycle_fit(&mut self, fit: Correction) {
        if fit.ns_per_unit.is_finite() && fit.ns_per_unit > 0.0 && fit.updates > 0 {
            self.cycle_fit = Some(fit);
        }
    }

    /// The persisted PCLR cycle fit, if any.
    pub fn cycle_fit(&self) -> Option<Correction> {
        self.cycle_fit
    }

    /// Serialize to the versioned text format.
    pub fn to_text(&self) -> String {
        let mut lines: Vec<String> = self
            .entries
            .iter()
            .map(|(sig, e)| {
                format!(
                    "{:016x} {} {} {:e} {} {}",
                    sig,
                    e.scheme.abbrev(),
                    e.threads,
                    e.ns_per_ref,
                    e.runs,
                    e.best_ns
                )
            })
            .collect();
        lines.sort(); // deterministic output
        let mut corr_lines: Vec<String> = self
            .calibration
            .iter()
            .map(|(level, c)| {
                let (scheme, domain, fused) = match level {
                    CorrLevel::Global => ("*".to_string(), "*".to_string(), 's'),
                    CorrLevel::Scheme(s, fused) => {
                        (s.abbrev().to_string(), "*".to_string(), fused_tag(*fused))
                    }
                    CorrLevel::Class(s, d, fused) => (
                        s.abbrev().to_string(),
                        format!("{:08x}", d.pack()),
                        fused_tag(*fused),
                    ),
                };
                format!(
                    "corr {scheme} {domain} {fused} {:e} {}",
                    c.ns_per_unit, c.updates
                )
            })
            .collect();
        corr_lines.sort();
        let mut simp_lines: Vec<String> = self
            .scan_verdicts
            .iter()
            .map(|(sig, v)| format!("simp {sig:016x} {}", u8::from(*v)))
            .collect();
        simp_lines.sort();
        let mut out =
            String::with_capacity((lines.len() + corr_lines.len() + simp_lines.len()) * 48 + 64);
        out.push_str(HEADER);
        out.push('\n');
        for l in lines.into_iter().chain(corr_lines).chain(simp_lines) {
            out.push_str(&l);
            out.push('\n');
        }
        if let Some(fit) = &self.cycle_fit {
            out.push_str(&format!("cyc {:e} {}\n", fit.ns_per_unit, fit.updates));
        }
        out
    }

    /// Parse the versioned text format.
    ///
    /// A missing header is a hard error (the file is not a profile
    /// store).  A **malformed line** — truncated fields, an unknown
    /// scheme, unparsable numbers, a non-finite calibration — is
    /// *skipped*, not fatal: one corrupt line (a torn write, a partial
    /// edit) must not poison every valid profile around it.  The number
    /// of skipped lines is available via [`last_load_skipped`]
    /// (diagnostics only).
    ///
    /// [`last_load_skipped`]: ProfileStore::last_load_skipped
    pub fn from_text(text: &str) -> io::Result<Self> {
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("profile store missing `{HEADER}` header"),
            ));
        }
        let mut store = ProfileStore::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let parsed = match line.split_ascii_whitespace().next() {
                Some("corr") => Self::parse_corr_line(line)
                    .map(|(level, c)| {
                        store.calibration.insert(level, c);
                    })
                    .is_some(),
                Some("simp") => Self::parse_simp_line(line)
                    .map(|(sig, v)| {
                        store.scan_verdicts.insert(sig, v);
                    })
                    .is_some(),
                Some("cyc") => Self::parse_cyc_line(line)
                    .map(|c| store.cycle_fit = Some(c))
                    .is_some(),
                _ => Self::parse_line(line)
                    .map(|(sig, entry)| {
                        store.entries.insert(sig, entry);
                    })
                    .is_some(),
            };
            if !parsed {
                store.skipped += 1;
            }
        }
        Ok(store)
    }

    /// Parse one `<sig> <scheme> <threads> <ns_per_ref> <runs> <best_ns>`
    /// line; `None` if any field is missing, trailing junk follows, or a
    /// field fails validation.
    fn parse_line(line: &str) -> Option<(u64, ProfileEntry)> {
        let mut f = line.split_ascii_whitespace();
        let (sig, scheme, threads, calib, runs, best) = (
            f.next()?,
            f.next()?,
            f.next()?,
            f.next()?,
            f.next()?,
            f.next()?,
        );
        if f.next().is_some() {
            return None; // trailing fields: not our format
        }
        let sig = u64::from_str_radix(sig, 16).ok()?;
        let scheme = Scheme::from_abbrev(scheme)?;
        let ns_per_ref: f64 = calib.parse().ok()?;
        if !ns_per_ref.is_finite() || ns_per_ref < 0.0 {
            return None;
        }
        Some((
            sig,
            ProfileEntry {
                scheme,
                threads: threads.parse().ok()?,
                ns_per_ref,
                runs: runs.parse().ok()?,
                best_ns: best.parse().ok()?,
            },
        ))
    }

    /// Parse one `corr <scheme|*> <domain|*> <s|f> <ns_per_unit> <updates>`
    /// line; `None` on any malformed field (the lossy parser skips it).
    fn parse_corr_line(line: &str) -> Option<(CorrLevel, Correction)> {
        let mut f = line.split_ascii_whitespace();
        let (kind, scheme, domain, fused, value, updates) = (
            f.next()?,
            f.next()?,
            f.next()?,
            f.next()?,
            f.next()?,
            f.next()?,
        );
        if kind != "corr" || f.next().is_some() {
            return None;
        }
        let fused = match fused {
            "s" => false,
            "f" => true,
            _ => return None,
        };
        let ns_per_unit: f64 = value.parse().ok()?;
        if !ns_per_unit.is_finite() || ns_per_unit <= 0.0 {
            return None;
        }
        let updates: u64 = updates.parse().ok()?;
        let level = match (scheme, domain) {
            ("*", "*") if !fused => CorrLevel::Global,
            ("*", _) => return None, // a global row carries no domain/fused refinement
            (s, "*") => CorrLevel::Scheme(Scheme::from_abbrev(s)?, fused),
            (s, d) => {
                if d.len() != 8 {
                    return None;
                }
                let bits = u32::from_str_radix(d, 16).ok()?;
                CorrLevel::Class(Scheme::from_abbrev(s)?, DomainKey::unpack(bits), fused)
            }
        };
        Some((
            level,
            Correction {
                ns_per_unit,
                updates,
            },
        ))
    }

    /// Parse one `simp <sig> <0|1>` line.
    fn parse_simp_line(line: &str) -> Option<(u64, bool)> {
        let mut f = line.split_ascii_whitespace();
        let (kind, sig, verdict) = (f.next()?, f.next()?, f.next()?);
        if kind != "simp" || f.next().is_some() {
            return None;
        }
        let sig = u64::from_str_radix(sig, 16).ok()?;
        let verdict = match verdict {
            "0" => false,
            "1" => true,
            _ => return None,
        };
        Some((sig, verdict))
    }

    /// Parse one `cyc <cycle_ns> <updates>` line.
    fn parse_cyc_line(line: &str) -> Option<Correction> {
        let mut f = line.split_ascii_whitespace();
        let (kind, value, updates) = (f.next()?, f.next()?, f.next()?);
        if kind != "cyc" || f.next().is_some() {
            return None;
        }
        let ns_per_unit: f64 = value.parse().ok()?;
        if !ns_per_unit.is_finite() || ns_per_unit <= 0.0 {
            return None;
        }
        Some(Correction {
            ns_per_unit,
            updates: updates.parse().ok()?,
        })
    }

    /// How many malformed lines the most recent [`from_text`] /
    /// [`load`](ProfileStore::load) skipped.
    ///
    /// [`from_text`]: ProfileStore::from_text
    pub fn last_load_skipped(&self) -> usize {
        self.skipped
    }

    /// Write to `path` (atomically via a sibling temp file).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.to_text().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Read from `path`.
    pub fn load(path: &Path) -> io::Result<Self> {
        Self::from_text(&std::fs::read_to_string(path)?)
    }

    /// Merge another store in, keeping the faster entry per signature and
    /// the higher-confidence (more-samples) calibration record per level.
    pub fn merge(&mut self, other: &ProfileStore) {
        for (sig, e) in &other.entries {
            match self.entries.get(sig) {
                Some(mine) if mine.best_ns <= e.best_ns => {}
                _ => {
                    self.entries.insert(*sig, e.clone());
                }
            }
        }
        for (level, c) in &other.calibration {
            match self.calibration.get(level) {
                Some(mine) if mine.updates >= c.updates => {}
                _ => {
                    self.calibration.insert(*level, *c);
                }
            }
        }
        // Recognizer verdicts: local knowledge wins (it is at least as
        // fresh); absent classes adopt the imported verdict.
        for (sig, v) in &other.scan_verdicts {
            self.scan_verdicts.entry(*sig).or_insert(*v);
        }
        if let Some(theirs) = other.cycle_fit {
            match self.cycle_fit {
                Some(mine) if mine.updates >= theirs.updates => {}
                _ => self.cycle_fit = Some(theirs),
            }
        }
    }
}

/// The one-character split/fused tag of a `corr` record.
fn fused_tag(fused: bool) -> char {
    if fused {
        'f'
    } else {
        's'
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(n: u64) -> PatternSignature {
        PatternSignature(n)
    }

    #[test]
    fn record_creates_updates_and_switches() {
        let mut s = ProfileStore::new();
        s.record(sig(1), Scheme::Rep, 4, 1000, Duration::from_micros(100));
        assert_eq!(s.len(), 1);
        let e = s.get(sig(1)).unwrap();
        assert_eq!(e.scheme, Scheme::Rep);
        assert_eq!(e.runs, 1);
        assert!((e.ns_per_ref - 100.0).abs() < 1e-9);

        // Same scheme: EMA + best update.
        s.record(sig(1), Scheme::Rep, 4, 1000, Duration::from_micros(50));
        let e = s.get(sig(1)).unwrap();
        assert_eq!(e.runs, 2);
        assert_eq!(e.best_ns, 50_000);
        assert!(e.ns_per_ref < 100.0);

        // Slower different scheme: incumbent keeps the entry.
        s.record(sig(1), Scheme::Hash, 4, 1000, Duration::from_micros(500));
        assert_eq!(s.get(sig(1)).unwrap().scheme, Scheme::Rep);

        // Faster different scheme: takeover.
        s.record(sig(1), Scheme::Sel, 4, 1000, Duration::from_micros(10));
        let e = s.get(sig(1)).unwrap();
        assert_eq!(e.scheme, Scheme::Sel);
        assert_eq!(e.best_ns, 10_000);
    }

    #[test]
    fn text_round_trip_preserves_entries() {
        let mut s = ProfileStore::new();
        s.record(
            sig(0xdead_beef),
            Scheme::Ll,
            8,
            123_456,
            Duration::from_millis(3),
        );
        s.record(sig(42), Scheme::Hash, 2, 10, Duration::from_nanos(777));
        s.record(sig(42), Scheme::Hash, 2, 10, Duration::from_nanos(555));
        let text = s.to_text();
        let back = ProfileStore::from_text(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(sig(42)).unwrap(), s.get(sig(42)).unwrap());
        assert_eq!(
            back.get(sig(0xdead_beef)).unwrap(),
            s.get(sig(0xdead_beef)).unwrap()
        );
        // Deterministic serialization.
        assert_eq!(text, back.to_text());
    }

    #[test]
    fn missing_header_is_fatal_but_bad_lines_are_skipped() {
        // Not a profile store at all: hard error.
        assert!(ProfileStore::from_text("").is_err());
        assert!(ProfileStore::from_text("wrong-header\n").is_err());
        // Malformed lines are dropped without poisoning valid neighbors.
        let text = format!(
            "{HEADER}\n\
             zzzz rep 4\n\
             00000000000000ff nope 4 1.0 1 10\n\
             0000000000000001 rep 4 1.5e2 3 77\n\
             0000000000000002 pclr 8 nan 1 10\n\
             0000000000000002 pclr 8 2e0 1 10\n\
             0000000000000003 hash 2 1e0 1 10 trailing-junk\n"
        );
        let s = ProfileStore::from_text(&text).unwrap();
        assert_eq!(s.len(), 2, "both valid lines survive");
        assert_eq!(s.get(sig(1)).unwrap().scheme, Scheme::Rep);
        assert_eq!(s.get(sig(2)).unwrap().scheme, Scheme::Pclr);
        assert!(s.get(sig(3)).is_none(), "trailing junk is not our format");
        assert_eq!(s.last_load_skipped(), 4);
        let ok_empty = ProfileStore::from_text(&format!("{HEADER}\n")).unwrap();
        assert!(ok_empty.is_empty());
        assert_eq!(ok_empty.last_load_skipped(), 0);
    }

    #[test]
    fn save_load_round_trip_on_disk() {
        let dir = std::env::temp_dir().join("smartapps-profile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("store-{}.txt", std::process::id()));
        let mut s = ProfileStore::new();
        s.record(sig(5), Scheme::Lw, 16, 9999, Duration::from_micros(250));
        s.save(&path).unwrap();
        let back = ProfileStore::load(&path).unwrap();
        assert_eq!(back.get(sig(5)), s.get(sig(5)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn eviction_forgets_a_class() {
        let mut s = ProfileStore::new();
        s.record(sig(9), Scheme::Rep, 4, 100, Duration::from_micros(1));
        assert!(s.evict(sig(9)));
        assert!(!s.evict(sig(9)));
        assert!(s.get(sig(9)).is_none());
    }

    #[test]
    fn drift_strikes_accumulate_reset_and_die_with_the_entry() {
        let mut s = ProfileStore::new();
        s.record(sig(4), Scheme::Rep, 4, 100, Duration::from_micros(1));
        assert_eq!(s.drift_strike(sig(4)), 1);
        assert_eq!(s.drift_strike(sig(4)), 2);
        s.clear_drift(sig(4));
        assert_eq!(s.drift_strike(sig(4)), 1, "a healthy sample resets");
        s.evict(sig(4));
        assert_eq!(s.drift_strike(sig(4)), 1, "eviction forgets the count");
    }

    #[test]
    fn calibration_records_round_trip() {
        let mut s = ProfileStore::new();
        s.record(sig(7), Scheme::Hash, 4, 500, Duration::from_micros(40));
        let d = DomainKey {
            dim_bucket: 12,
            reuse_bucket: 4,
            sparsity_decile: 10,
            mo: 2,
        };
        s.set_calibration([
            (CorrLevel::Global, Correction::seeded(2.5, 40)),
            (
                CorrLevel::Scheme(Scheme::Hash, false),
                Correction::seeded(7.25, 12),
            ),
            (
                CorrLevel::Class(Scheme::Ll, d, true),
                Correction::seeded(1.5e-1, 3),
            ),
            // Invalid estimates are filtered out at set time.
            (
                CorrLevel::Scheme(Scheme::Rep, true),
                Correction::seeded(f64::NAN, 9),
            ),
        ]);
        s.set_cycle_fit(Correction::seeded(0.8, 5));
        assert_eq!(s.calibration_len(), 3);
        let text = s.to_text();
        assert!(text.contains("corr * * s"), "{text}");
        assert!(text.contains("corr ll 0c040a02 f"), "{text}");
        assert!(text.contains("cyc "), "{text}");
        let back = ProfileStore::from_text(&text).unwrap();
        assert_eq!(back.last_load_skipped(), 0);
        assert_eq!(back.calibration_len(), 3);
        assert_eq!(back.cycle_fit(), Some(Correction::seeded(0.8, 5)));
        let levels: std::collections::HashMap<_, _> = back.calibration().collect();
        assert_eq!(levels[&CorrLevel::Global], Correction::seeded(2.5, 40));
        assert_eq!(
            levels[&CorrLevel::Class(Scheme::Ll, d, true)],
            Correction::seeded(0.15, 3)
        );
        // Deterministic: the second save reproduces the first.
        assert_eq!(back.to_text(), text);
        // Entry count is unaffected by calibration records.
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn malformed_calibration_lines_are_skipped_not_fatal() {
        let text = format!(
            "{HEADER}\n\
             corr * * s 2.5e0 40\n\
             corr hash * s nope 12\n\
             corr hash * x 1.0 12\n\
             corr * 0c040a02 s 1.0 12\n\
             corr warp * s 1.0 12\n\
             corr ll zz040a02 f 1.0 12\n\
             corr ll 0c040a02 f -1.0 12\n\
             corr ll 0c040a02 f 1.0 12 extra\n\
             cyc 1.5e0 3\n\
             cyc inf 3\n\
             cyc 1.0\n\
             0000000000000001 rep 4 1.5e2 3 77\n"
        );
        let s = ProfileStore::from_text(&text).unwrap();
        assert_eq!(s.calibration_len(), 1, "only the valid corr line lands");
        assert_eq!(s.cycle_fit(), Some(Correction::seeded(1.5, 3)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.last_load_skipped(), 9);
    }

    #[test]
    fn scan_verdicts_round_trip_and_merge() {
        let mut s = ProfileStore::new();
        s.record(sig(7), Scheme::Hash, 4, 500, Duration::from_micros(40));
        s.set_scan_verdict(sig(0xabc), true);
        s.set_scan_verdict(sig(0xdef), false);
        // Last writer wins.
        s.set_scan_verdict(sig(0xabc), false);
        s.set_scan_verdict(sig(0xabc), true);
        assert_eq!(s.scan_verdict(sig(0xabc)), Some(true));
        assert_eq!(s.scan_verdict(sig(0xdef)), Some(false));
        assert_eq!(s.scan_verdict(sig(0x123)), None);
        assert_eq!(s.scan_verdict_len(), 2);
        let text = s.to_text();
        assert!(text.contains("simp 0000000000000abc 1"), "{text}");
        assert!(text.contains("simp 0000000000000def 0"), "{text}");
        let back = ProfileStore::from_text(&text).unwrap();
        assert_eq!(back.last_load_skipped(), 0);
        assert_eq!(back.scan_verdict(sig(0xabc)), Some(true));
        assert_eq!(back.scan_verdict(sig(0xdef)), Some(false));
        // Deterministic serialization, entries unaffected.
        assert_eq!(back.to_text(), text);
        assert_eq!(back.len(), 1);
        // Merge: local verdicts win, absent ones are adopted.
        let mut other = ProfileStore::new();
        other.set_scan_verdict(sig(0xabc), false);
        other.set_scan_verdict(sig(0x999), true);
        let mut merged = back.clone();
        merged.merge(&other);
        assert_eq!(merged.scan_verdict(sig(0xabc)), Some(true));
        assert_eq!(merged.scan_verdict(sig(0x999)), Some(true));
    }

    #[test]
    fn malformed_simp_lines_are_skipped_not_fatal() {
        let text = format!(
            "{HEADER}\n\
             simp 0000000000000abc 1\n\
             simp zzzz 1\n\
             simp 0000000000000abc 2\n\
             simp 0000000000000abc\n\
             simp 0000000000000abc 1 extra\n"
        );
        let s = ProfileStore::from_text(&text).unwrap();
        assert_eq!(s.scan_verdict_len(), 1);
        assert_eq!(s.scan_verdict(sig(0xabc)), Some(true));
        assert_eq!(s.last_load_skipped(), 4);
    }

    #[test]
    fn merge_keeps_higher_confidence_calibration() {
        let mut a = ProfileStore::new();
        a.set_calibration([(CorrLevel::Global, Correction::seeded(1.0, 10))]);
        a.set_cycle_fit(Correction::seeded(1.0, 2));
        let mut b = ProfileStore::new();
        b.set_calibration([
            (CorrLevel::Global, Correction::seeded(9.0, 3)),
            (
                CorrLevel::Scheme(Scheme::Sel, false),
                Correction::seeded(4.0, 7),
            ),
        ]);
        b.set_cycle_fit(Correction::seeded(2.0, 8));
        a.merge(&b);
        let levels: std::collections::HashMap<_, _> = a.calibration().collect();
        assert_eq!(
            levels[&CorrLevel::Global],
            Correction::seeded(1.0, 10),
            "10 samples beat 3"
        );
        assert_eq!(
            levels[&CorrLevel::Scheme(Scheme::Sel, false)],
            Correction::seeded(4.0, 7)
        );
        assert_eq!(a.cycle_fit(), Some(Correction::seeded(2.0, 8)));
    }

    #[test]
    fn prediction_scales_with_refs() {
        let mut s = ProfileStore::new();
        s.record(sig(2), Scheme::Rep, 4, 1000, Duration::from_micros(100));
        let e = s.get(sig(2)).unwrap();
        assert_eq!(e.predict(1000), Duration::from_micros(100));
        assert_eq!(e.predict(2000), Duration::from_micros(200));
    }
}
