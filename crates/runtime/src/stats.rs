//! Runtime service counters: cheap atomics the dispatcher bumps and
//! clients snapshot.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters describing service activity since startup.
#[derive(Debug, Default)]
pub struct RuntimeStats {
    pub(crate) submitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) coalesced: AtomicU64,
    pub(crate) profile_hits: AtomicU64,
    pub(crate) inspections: AtomicU64,
    pub(crate) evictions: AtomicU64,
    pub(crate) steals: AtomicU64,
    pub(crate) fused_sweeps: AtomicU64,
    pub(crate) fused_jobs: AtomicU64,
    pub(crate) pclr_offloads: AtomicU64,
    pub(crate) sim_cycles: AtomicU64,
    pub(crate) simd_offloads: AtomicU64,
    pub(crate) calibration_updates: AtomicU64,
    pub(crate) pred_err_sum_micros: AtomicU64,
    pub(crate) explored: AtomicU64,
    pub(crate) fuse_probes: AtomicU64,
    pub(crate) quarantined: AtomicU64,
    pub(crate) simplified_jobs: AtomicU64,
    pub(crate) simplify_rejects: AtomicU64,
}

/// A point-in-time copy of [`RuntimeStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Jobs accepted by `submit`/`submit_batch`.
    pub submitted: u64,
    /// Jobs whose handles have been completed.
    pub completed: u64,
    /// Dispatch batches executed.
    pub batches: u64,
    /// Jobs that rode along in a batch behind another job's decision
    /// (i.e. `submitted - batches` for the coalesced portion).
    pub coalesced: u64,
    /// Batches served straight from the profile store (no inspection).
    pub profile_hits: u64,
    /// Full inspector passes paid.
    pub inspections: u64,
    /// Profile entries evicted after calibration drift.
    pub evictions: u64,
    /// Batches a dispatcher stole from a peer's shards after draining its
    /// own (see the shard-affine dispatcher design in `queue`).
    pub steals: u64,
    /// Fused execution sweeps run (one traversal, multiple outputs).
    pub fused_sweeps: u64,
    /// Jobs whose output was produced by a fused sweep (each sweep
    /// accounts for ≥ 2 of these).
    pub fused_jobs: u64,
    /// Jobs executed on the PCLR hardware backend (the simulated
    /// machine) instead of the software library.
    pub pclr_offloads: u64,
    /// Total simulated cycles spent across all PCLR offloads.
    pub sim_cycles: u64,
    /// Jobs executed on the vectorized SIMD backend instead of the
    /// scalar software library.
    pub simd_offloads: u64,
    /// Predicted-vs-measured cost samples the online calibrator accepted
    /// (see `docs/MODEL.md`); 0 means the measure→correct loop never ran.
    pub calibration_updates: u64,
    /// Sum of per-sample absolute relative prediction errors, in
    /// millionths (µ-units) — divide by `calibration_updates` via
    /// [`mean_abs_prediction_error`](StatsSnapshot::mean_abs_prediction_error).
    pub pred_err_sum_micros: u64,
    /// Model decisions diverted to a runner-up scheme to gather
    /// calibration samples (`CalibrationConfig::explore_every`).
    pub explored: u64,
    /// Declined fusable groups executed fused anyway to gather fused-side
    /// calibration samples (`CalibrationConfig::probe_fused_every`).
    pub fuse_probes: u64,
    /// Jobs failed fast with
    /// [`JobErrorKind::Quarantined`](crate::JobErrorKind::Quarantined)
    /// because their workload class accumulated
    /// `RuntimeConfig::quarantine_after` consecutive panicking bodies.
    pub quarantined: u64,
    /// Jobs executed through the simplification pass's rewritten plan
    /// (difference-array scan) instead of a scheme sweep — see
    /// `docs/MODEL.md` ("Simplification pass").
    pub simplified_jobs: u64,
    /// Jobs that *declared* an iteration-uniform body but were declined
    /// by the pass (structural mismatch, cost guard, refuted declaration,
    /// or a persisted negative verdict) and executed unsimplified.
    /// Undeclared traffic is never counted here — it bypasses the pass.
    pub simplify_rejects: u64,
}

impl StatsSnapshot {
    /// Mean absolute relative error of calibrated cost predictions
    /// (`|estimate/measured − 1|` averaged over accepted samples) — the
    /// number that trends toward 0 as the calibration loop converges.
    /// `0.0` before any sample.
    pub fn mean_abs_prediction_error(&self) -> f64 {
        if self.calibration_updates == 0 {
            0.0
        } else {
            self.pred_err_sum_micros as f64 / 1e6 / self.calibration_updates as f64
        }
    }
}

impl RuntimeStats {
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Copy the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            profile_hits: self.profile_hits.load(Ordering::Relaxed),
            inspections: self.inspections.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            fused_sweeps: self.fused_sweeps.load(Ordering::Relaxed),
            fused_jobs: self.fused_jobs.load(Ordering::Relaxed),
            pclr_offloads: self.pclr_offloads.load(Ordering::Relaxed),
            sim_cycles: self.sim_cycles.load(Ordering::Relaxed),
            simd_offloads: self.simd_offloads.load(Ordering::Relaxed),
            calibration_updates: self.calibration_updates.load(Ordering::Relaxed),
            pred_err_sum_micros: self.pred_err_sum_micros.load(Ordering::Relaxed),
            explored: self.explored.load(Ordering::Relaxed),
            fuse_probes: self.fuse_probes.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            simplified_jobs: self.simplified_jobs.load(Ordering::Relaxed),
            simplify_rejects: self.simplify_rejects.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let s = RuntimeStats::default();
        RuntimeStats::add(&s.submitted, 3);
        RuntimeStats::add(&s.completed, 2);
        RuntimeStats::add(&s.coalesced, 1);
        let snap = s.snapshot();
        assert_eq!(snap.submitted, 3);
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.coalesced, 1);
        assert_eq!(snap.batches, 0);
    }

    #[test]
    fn mean_prediction_error_averages_micros() {
        let s = RuntimeStats::default();
        assert_eq!(s.snapshot().mean_abs_prediction_error(), 0.0);
        RuntimeStats::add(&s.calibration_updates, 4);
        RuntimeStats::add(&s.pred_err_sum_micros, 2_000_000); // 2.0 total error
        let snap = s.snapshot();
        assert!((snap.mean_abs_prediction_error() - 0.5).abs() < 1e-12);
    }
}
