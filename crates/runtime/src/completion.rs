//! Completion-driven job delivery: the poll/notify seam that lets one
//! consumer thread multiplex thousands of in-flight jobs.
//!
//! The original submission API is *handle-per-job*: every
//! [`JobHandle::wait`](crate::JobHandle::wait) parks its own thread on a
//! condvar, so a network server fronting the runtime would burn a thread
//! per outstanding client request.  This module inverts the flow:
//! [`Runtime::submit_tagged`](crate::Runtime::submit_tagged) attaches a
//! caller-chosen **token** to the job, and the dispatcher routes the
//! finished [`JobResult`] — fused, offloaded, quarantined, or failed, the
//! delivery path is the same — onto a bounded MPSC completion queue
//! instead of a per-handle slot.  A single consumer drains the shared
//! [`CompletionSet`] with [`poll`](CompletionSet::poll) /
//! [`wait_any`](CompletionSet::wait_any) /
//! [`wait_timeout`](CompletionSet::wait_timeout) /
//! [`drain`](CompletionSet::drain), matching each [`Completion`] back to
//! its submission by token.  Push-style consumers instead register an
//! `on_complete` callback at submission
//! ([`Runtime::submit_callback`](crate::Runtime::submit_callback)) and are
//! invoked inline on the dispatcher thread.
//!
//! **Delivery contract.**  Every accepted submission produces *exactly
//! one* completion event — including submissions rejected before
//! queueing, jobs failed by shutdown or quarantine, and members of fused
//! sweeps.  Events for one job are never duplicated and never dropped
//! while the set is alive; dropping the set releases any producer
//! blocked on a full queue and discards undeliverable events.
//!
//! **Backpressure.**  The queue is bounded ([`CompletionSet::capacity`]):
//! when the consumer falls behind, completing dispatchers block until
//! space frees, so an unbounded event pileup cannot outrun the consumer.
//! Size the capacity to the in-flight window the consumer sustains.
//! Events produced on the *submitting* thread — rejections and
//! shutdown races — are exempt from the bound (the submitter may be the
//! set's only consumer, and blocking it on a queue only it can drain
//! would deadlock); their transient overshoot is bounded by the
//! submitter's own burst.
//!
//! [`JobHandle`](crate::JobHandle) remains as a compatibility shim: it
//! still waits on the same per-job `JobState` slot, now reached through
//! the same internal `CompletionSink` seam the queue path uses.

use crate::job::{JobResult, JobState, PatternSignature};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One finished job, delivered on a [`CompletionSet`]: the submission's
/// token, the signature the job was queued under, and the full result.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The caller-chosen tag passed to
    /// [`submit_tagged`](crate::Runtime::submit_tagged) — the runtime
    /// treats it as opaque and never deduplicates it; reusing a live
    /// token yields two events with the same token.
    pub token: u64,
    /// The pattern signature the job was queued and profiled under
    /// (`PatternSignature(0)` for submissions rejected before queueing).
    pub signature: PatternSignature,
    /// The finished job's result, errors included.
    pub result: JobResult,
}

/// Shared state of one completion queue: the bounded event FIFO plus the
/// in-flight accounting that lets a consumer distinguish "nothing *yet*"
/// from "nothing *ever again*".
struct QueueState {
    events: VecDeque<Completion>,
    /// Jobs routed to this queue whose events have not been popped yet
    /// (events still queued count as in flight until consumed).
    in_flight: usize,
    /// Set when the consumer [`CompletionSet`] is dropped: producers stop
    /// blocking and discard events instead.
    abandoned: bool,
}

/// The bounded MPSC event channel between completing dispatchers and one
/// completion consumer.  Internal to the crate; consumers hold a
/// [`CompletionSet`].
pub(crate) struct CompletionQueue {
    state: Mutex<QueueState>,
    /// Wakes the consumer when an event arrives.
    consumer: Condvar,
    /// Wakes producers when the consumer frees queue space.
    producer: Condvar,
    capacity: usize,
    /// Optional out-of-band consumer wake-up, invoked after every
    /// enqueue *in addition to* the condvar notify.  Consumers that
    /// block somewhere other than [`wait_any`](CompletionSet::wait_any)
    /// — a server reactor parked in `epoll_wait` — register a hook
    /// ([`CompletionSet::set_wake_hook`]) that interrupts their blocking
    /// primitive (an eventfd write).  Runs on the completing thread with
    /// no locks held; keep it cheap and non-blocking.
    wake_hook: Mutex<Option<Arc<dyn Fn() + Send + Sync>>>,
}

impl CompletionQueue {
    fn new(capacity: usize) -> Arc<Self> {
        Arc::new(CompletionQueue {
            state: Mutex::new(QueueState {
                events: VecDeque::new(),
                in_flight: 0,
                abandoned: false,
            }),
            consumer: Condvar::new(),
            producer: Condvar::new(),
            capacity: capacity.max(1),
            wake_hook: Mutex::new(None),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Register one submission routed to this queue (pairs with the
    /// eventual [`push`](Self::push); keeps `wait_any` from reporting an
    /// empty set while jobs are still executing).
    pub(crate) fn register(&self) {
        self.lock().in_flight += 1;
    }

    /// Deliver one completion, blocking while the queue is full.  Called
    /// from dispatcher threads (and from the submitting thread for
    /// rejected-before-queueing submissions).  If the consumer abandoned
    /// the set, the event is discarded instead of blocking forever.
    pub(crate) fn push(&self, completion: Completion) {
        let mut g = self.lock();
        while g.events.len() >= self.capacity && !g.abandoned {
            g = self.producer.wait(g).unwrap_or_else(|p| p.into_inner());
        }
        if g.abandoned {
            g.in_flight = g.in_flight.saturating_sub(1);
            return;
        }
        g.events.push_back(completion);
        drop(g);
        self.consumer.notify_one();
        self.invoke_wake_hook();
    }

    /// Deliver one completion **without** blocking on the bound.  Used
    /// for completions produced on the *submitting* thread (rejections,
    /// shutdown races): that thread may itself be the set's only
    /// consumer, and parking it on a full queue it alone can drain
    /// would deadlock.  The transient overshoot past `capacity` is
    /// bounded by the submitter's own burst.
    pub(crate) fn push_now(&self, completion: Completion) {
        let mut g = self.lock();
        if g.abandoned {
            g.in_flight = g.in_flight.saturating_sub(1);
            return;
        }
        g.events.push_back(completion);
        drop(g);
        self.consumer.notify_one();
        self.invoke_wake_hook();
    }

    /// Run the registered wake hook, if any (after the state lock is
    /// released — the hook may itself touch the set).
    fn invoke_wake_hook(&self) {
        let hook = {
            let g = self.wake_hook.lock().unwrap_or_else(|p| p.into_inner());
            g.clone()
        };
        if let Some(hook) = hook {
            hook();
        }
    }
}

/// The consumer side of a completion queue: multiplexes every job
/// submitted with this set over one (or a few) consumer threads.
///
/// All methods take `&self`, so a set can be shared (`Arc`) between
/// several popping threads — each event is still delivered to exactly one
/// of them.  Dropping the set abandons the queue: blocked producers wake
/// and further events are discarded.
pub struct CompletionSet {
    queue: Arc<CompletionQueue>,
}

impl CompletionSet {
    /// A set whose queue holds at most `capacity` undelivered events
    /// (clamped to ≥ 1); producers block while it is full.
    pub fn with_capacity(capacity: usize) -> Self {
        CompletionSet {
            queue: CompletionQueue::new(capacity),
        }
    }

    /// The bounded queue capacity.
    pub fn capacity(&self) -> usize {
        self.queue.capacity
    }

    pub(crate) fn queue(&self) -> Arc<CompletionQueue> {
        self.queue.clone()
    }

    /// Jobs submitted with this set whose completions have not been
    /// consumed yet (queued-but-unpopped events count).
    pub fn in_flight(&self) -> usize {
        self.queue.lock().in_flight
    }

    /// Completions queued and ready to pop without blocking.
    pub fn ready(&self) -> usize {
        self.queue.lock().events.len()
    }

    /// Non-blocking pop: the oldest undelivered completion, if any.
    pub fn poll(&self) -> Option<Completion> {
        let mut g = self.queue.lock();
        let c = g.events.pop_front()?;
        g.in_flight = g.in_flight.saturating_sub(1);
        drop(g);
        self.queue.producer.notify_one();
        Some(c)
    }

    /// Block until any in-flight job completes.  Returns `None` only when
    /// nothing is in flight (then nothing could ever arrive — the
    /// "completion queue is dry" signal a consumer loop exits on).
    pub fn wait_any(&self) -> Option<Completion> {
        let mut g = self.queue.lock();
        loop {
            if let Some(c) = g.events.pop_front() {
                g.in_flight = g.in_flight.saturating_sub(1);
                drop(g);
                self.queue.producer.notify_one();
                return Some(c);
            }
            if g.in_flight == 0 {
                return None;
            }
            g = self
                .queue
                .consumer
                .wait(g)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Like [`wait_any`](Self::wait_any) with a deadline: `None` when
    /// nothing completed within `timeout` *or* nothing is in flight.
    /// Disambiguate with [`in_flight`](Self::in_flight) if needed.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Completion> {
        let deadline = Instant::now() + timeout;
        let mut g = self.queue.lock();
        loop {
            if let Some(c) = g.events.pop_front() {
                g.in_flight = g.in_flight.saturating_sub(1);
                drop(g);
                self.queue.producer.notify_one();
                return Some(c);
            }
            if g.in_flight == 0 {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            g = self
                .queue
                .consumer
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(|p| p.into_inner())
                .0;
        }
    }

    /// Register an out-of-band wake-up called after every completion is
    /// enqueued (in addition to the internal condvar notify), replacing
    /// any previous hook.  For consumers that block outside
    /// [`wait_any`](Self::wait_any) — a server reactor parked in
    /// `epoll_wait` registers an eventfd write here, then drains
    /// [`poll`](Self::poll) to empty on each wake-up.  The hook runs on
    /// the completing (dispatcher or submitting) thread with no queue
    /// locks held; it must be cheap and must not block.
    pub fn set_wake_hook(&self, hook: impl Fn() + Send + Sync + 'static) {
        let mut g = self
            .queue
            .wake_hook
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        *g = Some(Arc::new(hook));
    }

    /// Remove the registered wake hook, if any.
    pub fn clear_wake_hook(&self) {
        let mut g = self
            .queue
            .wake_hook
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        *g = None;
    }

    /// Pop every currently queued completion without blocking.
    pub fn drain(&self) -> Vec<Completion> {
        let mut g = self.queue.lock();
        let n = g.events.len();
        let out: Vec<Completion> = g.events.drain(..).collect();
        g.in_flight = g.in_flight.saturating_sub(n);
        drop(g);
        self.queue.producer.notify_all();
        out
    }
}

impl Drop for CompletionSet {
    fn drop(&mut self) {
        let mut g = self.queue.lock();
        g.abandoned = true;
        g.events.clear();
        drop(g);
        self.queue.producer.notify_all();
    }
}

impl std::fmt::Debug for CompletionSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.queue.lock();
        f.debug_struct("CompletionSet")
            .field("capacity", &self.queue.capacity)
            .field("ready", &g.events.len())
            .field("in_flight", &g.in_flight)
            .finish()
    }
}

/// Where a finished job's result goes — the one seam every completion in
/// the service flows through.  `Handle` is the original blocking shape
/// ([`JobHandle`](crate::JobHandle) waits on the shared `JobState`
/// slot); `Queue` routes a tagged event onto a [`CompletionSet`];
/// `Callback` invokes a push-style consumer inline on the completing
/// thread.
pub(crate) enum CompletionSink {
    /// Fill the per-job slot a [`JobHandle`](crate::JobHandle) waits on.
    Handle(Arc<JobState>),
    /// Deliver a tagged event onto the bounded completion queue.
    Queue {
        token: u64,
        queue: Arc<CompletionQueue>,
    },
    /// Invoke the registered callback (on the completing thread — keep it
    /// short; it runs inside the dispatcher loop).
    Callback {
        token: u64,
        f: Arc<dyn Fn(Completion) + Send + Sync>,
    },
}

impl CompletionSink {
    /// Deliver the finished result.  Exactly-once per job is the caller's
    /// invariant (each queued job completes once); this only routes.
    pub(crate) fn complete(&self, signature: PatternSignature, result: JobResult) {
        match self {
            CompletionSink::Handle(state) => state.complete(result),
            CompletionSink::Queue { token, queue } => queue.push(Completion {
                token: *token,
                signature,
                result,
            }),
            CompletionSink::Callback { token, f } => f(Completion {
                token: *token,
                signature,
                result,
            }),
        }
    }

    /// Deliver on the *submitting* thread (rejected-before-queueing and
    /// shutdown-raced submissions): like [`complete`](Self::complete)
    /// but never blocks on a full queue — the submitter may be the
    /// set's only consumer, and blocking it would deadlock the very
    /// thread that must drain the event.
    pub(crate) fn complete_inline(&self, signature: PatternSignature, result: JobResult) {
        match self {
            CompletionSink::Queue { token, queue } => queue.push_now(Completion {
                token: *token,
                signature,
                result,
            }),
            _ => self.complete(signature, result),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobOutput;
    use smartapps_reductions::Scheme;

    fn done(token: u64) -> Completion {
        Completion {
            token,
            signature: PatternSignature(9),
            result: JobResult {
                output: JobOutput::I64(vec![1]),
                scheme: Scheme::Seq,
                elapsed: Duration::ZERO,
                sim_cycles: None,
                profile_hit: false,
                batched_with: 0,
                fused_with: 0,
                error: None,
            },
        }
    }

    #[test]
    fn poll_and_wait_deliver_in_order() {
        let set = CompletionSet::with_capacity(8);
        let q = set.queue();
        assert!(set.poll().is_none());
        assert!(set.wait_any().is_none(), "nothing in flight: dry");
        q.register();
        q.register();
        q.push(done(1));
        q.push(done(2));
        assert_eq!(set.ready(), 2);
        assert_eq!(set.in_flight(), 2);
        assert_eq!(set.poll().unwrap().token, 1);
        assert_eq!(set.wait_any().unwrap().token, 2);
        assert_eq!(set.in_flight(), 0);
        assert!(set.poll().is_none());
    }

    #[test]
    fn wait_any_blocks_until_a_producer_pushes() {
        let set = Arc::new(CompletionSet::with_capacity(4));
        let q = set.queue();
        q.register();
        let consumer = {
            let set = set.clone();
            std::thread::spawn(move || set.wait_any())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.push(done(7));
        let c = consumer.join().unwrap().expect("must deliver");
        assert_eq!(c.token, 7);
    }

    #[test]
    fn wait_timeout_returns_none_on_deadline_with_work_in_flight() {
        let set = CompletionSet::with_capacity(4);
        let q = set.queue();
        q.register();
        let t0 = Instant::now();
        assert!(set.wait_timeout(Duration::from_millis(30)).is_none());
        assert!(t0.elapsed() >= Duration::from_millis(25));
        assert_eq!(set.in_flight(), 1, "job still owed an event");
        q.push(done(3));
        assert_eq!(
            set.wait_timeout(Duration::from_millis(30)).unwrap().token,
            3
        );
    }

    #[test]
    fn full_queue_blocks_the_producer_until_a_pop() {
        let set = Arc::new(CompletionSet::with_capacity(1));
        let q = set.queue();
        q.register();
        q.register();
        q.push(done(1));
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || {
                q.push(done(2)); // must block until the consumer pops
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(set.ready(), 1, "bounded queue holds capacity events");
        assert_eq!(set.poll().unwrap().token, 1);
        producer.join().unwrap();
        assert_eq!(set.wait_any().unwrap().token, 2);
    }

    #[test]
    fn dropping_the_set_releases_blocked_producers() {
        let set = CompletionSet::with_capacity(1);
        let q = set.queue();
        q.register();
        q.register();
        q.push(done(1));
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || q.push(done(2)))
        };
        std::thread::sleep(Duration::from_millis(20));
        drop(set);
        producer.join().unwrap(); // abandoned queue must not deadlock
        q.push(done(3)); // and further pushes are discarded, not stuck
    }

    #[test]
    fn wake_hook_fires_on_every_enqueue_path() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let set = CompletionSet::with_capacity(8);
        let hits = Arc::new(AtomicUsize::new(0));
        {
            let hits = hits.clone();
            set.set_wake_hook(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        let q = set.queue();
        q.register();
        q.register();
        q.push(done(1)); // dispatcher path
        q.push_now(done(2)); // submitting-thread path
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        set.clear_wake_hook();
        q.register();
        q.push(done(3));
        assert_eq!(hits.load(Ordering::SeqCst), 2, "cleared hook stays quiet");
        assert_eq!(set.drain().len(), 3);
    }

    #[test]
    fn drain_takes_everything_ready() {
        let set = CompletionSet::with_capacity(8);
        let q = set.queue();
        for t in 0..5 {
            q.register();
            q.push(done(t));
        }
        let all = set.drain();
        assert_eq!(all.len(), 5);
        assert_eq!(
            all.iter().map(|c| c.token).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(set.in_flight(), 0);
        assert!(set.drain().is_empty());
    }
}
