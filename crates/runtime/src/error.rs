//! Structured job failure channel.
//!
//! A job can fail for categorically different reasons — the body panicked
//! mid-execution, the submission was rejected up front, or the service was
//! shutting down — and clients react differently to each (retry elsewhere,
//! fix the spec, give up).  [`JobError`] carries the category as a typed
//! [`JobErrorKind`] next to the human-readable message, replacing the bare
//! string the first runtime iteration used.

use std::fmt;

/// Why a job failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobErrorKind {
    /// The job's contribution body (or the inspector running over its
    /// pattern) panicked during dispatch or execution.  The panic was
    /// contained — the service keeps draining — and the payload's message
    /// is preserved in [`JobError::message`].
    Panic,
    /// The submission was rejected before reaching the queue (for example,
    /// a structurally invalid access pattern).  Nothing was executed.
    Rejected,
    /// The service was shutting down and no longer accepts work.  Nothing
    /// was executed; resubmitting to a live runtime will succeed.
    Shutdown,
    /// The job's workload class is quarantined: previous bodies of the
    /// same [`PatternSignature`](crate::PatternSignature) panicked
    /// `quarantine_after` times in a row, so the class fails fast instead
    /// of burning a worker sweep on a body that panics every time.
    /// Nothing was executed.  The quarantine lifts on
    /// [`Runtime::unquarantine`](crate::Runtime::unquarantine) or when
    /// the configured TTL expires.
    Quarantined,
}

impl JobErrorKind {
    /// Stable lower-case name of the kind (`"panic"`, `"rejected"`,
    /// `"shutdown"`, `"quarantined"`).
    pub fn as_str(self) -> &'static str {
        match self {
            JobErrorKind::Panic => "panic",
            JobErrorKind::Rejected => "rejected",
            JobErrorKind::Shutdown => "shutdown",
            JobErrorKind::Quarantined => "quarantined",
        }
    }

    /// Parse the stable name back into the kind.
    pub fn from_str_name(s: &str) -> Option<JobErrorKind> {
        match s {
            "panic" => Some(JobErrorKind::Panic),
            "rejected" => Some(JobErrorKind::Rejected),
            "shutdown" => Some(JobErrorKind::Shutdown),
            "quarantined" => Some(JobErrorKind::Quarantined),
            _ => None,
        }
    }
}

impl fmt::Display for JobErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A failed job's error: the failure category plus a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// The failure category.
    pub kind: JobErrorKind,
    /// Human-readable detail (panic payload, validation error, ...).
    pub message: String,
}

impl JobError {
    /// A [`JobErrorKind::Panic`] error carrying the panic's message.
    pub fn panic(message: impl Into<String>) -> Self {
        JobError {
            kind: JobErrorKind::Panic,
            message: message.into(),
        }
    }

    /// A [`JobErrorKind::Rejected`] error carrying the validation detail.
    pub fn rejected(message: impl Into<String>) -> Self {
        JobError {
            kind: JobErrorKind::Rejected,
            message: message.into(),
        }
    }

    /// The [`JobErrorKind::Shutdown`] error.
    pub fn shutdown() -> Self {
        JobError {
            kind: JobErrorKind::Shutdown,
            message: "runtime is shutting down and no longer accepts jobs".into(),
        }
    }

    /// A [`JobErrorKind::Quarantined`] error naming the poisoned class.
    pub fn quarantined(consecutive_panics: usize) -> Self {
        JobError {
            kind: JobErrorKind::Quarantined,
            message: format!(
                "workload class quarantined after {consecutive_panics} consecutive \
                 panicking bodies; unquarantine it or wait out the TTL"
            ),
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

impl std::error::Error for JobError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_render_and_compare() {
        let p = JobError::panic("bad row 7");
        assert_eq!(p.kind, JobErrorKind::Panic);
        assert_eq!(p.message(), "bad row 7");
        assert_eq!(format!("{p}"), "panic: bad row 7");
        let r = JobError::rejected("invalid access pattern");
        assert_eq!(r.kind, JobErrorKind::Rejected);
        assert_eq!(format!("{}", r.kind), "rejected");
        let s = JobError::shutdown();
        assert_eq!(s.kind, JobErrorKind::Shutdown);
        let q = JobError::quarantined(3);
        assert_eq!(q.kind, JobErrorKind::Quarantined);
        assert!(q.message().contains("3 consecutive"));
        for k in [
            JobErrorKind::Panic,
            JobErrorKind::Rejected,
            JobErrorKind::Shutdown,
            JobErrorKind::Quarantined,
        ] {
            assert_eq!(JobErrorKind::from_str_name(k.as_str()), Some(k));
        }
        assert_eq!(JobErrorKind::from_str_name("bogus"), None);
        assert_ne!(p, r);
        // It is a real std error.
        let dynerr: &dyn std::error::Error = &s;
        assert!(dynerr.to_string().contains("shutting down"));
    }
}
