//! Uploaded-pattern interning: the handle registry behind CSR upload.
//!
//! The server's text protocol describes patterns as *generator specs* —
//! nine numbers a [`PatternSpec`](smartapps_workloads::PatternSpec)
//! expands into a synthetic CSR structure.  Real irregular applications
//! do not have a generator: they have the sparse structure itself (a
//! SuiteSparse matrix, a mesh adjacency), and shipping it inline with
//! every job would swamp the wire.  The [`PatternInterner`] is the seam
//! that fixes this: a client uploads an [`AccessPattern`] **once**, the
//! interner validates it, dedupes it by content, and hands back a small
//! opaque `u64` handle; every subsequent job references the handle and
//! the runtime resolves it to the same shared `Arc`.
//!
//! Content-hash deduplication matters beyond memory: jobs from
//! *different* connections that uploaded the *same* structure resolve to
//! one `Arc<AccessPattern>`, so the queue's same-pattern coalescing and
//! fused sweeps work across clients exactly as they do for spec-described
//! patterns (pointer identity is what the fusion gate keys on).
//!
//! The registry is bounded: interning past
//! [`capacity`](PatternInterner::capacity) fails with
//! [`InternError::Full`] rather than letting remote clients grow server
//! memory without limit.  Re-uploading an already-interned structure
//! never counts against the bound — it returns the existing handle.

use smartapps_workloads::AccessPattern;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Why an upload was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InternError {
    /// The structure failed [`AccessPattern::validate`] — the message is
    /// the validator's diagnosis (out-of-bounds index, non-monotone row
    /// pointers, ...).
    Invalid(String),
    /// The registry holds `capacity` distinct patterns and this one is
    /// new; the upload is refused rather than evicting a pattern some
    /// other connection may still reference by handle.
    Full {
        /// The configured bound that was hit.
        capacity: usize,
    },
}

impl std::fmt::Display for InternError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InternError::Invalid(msg) => write!(f, "invalid pattern: {msg}"),
            InternError::Full { capacity } => {
                write!(f, "pattern registry full ({capacity} patterns)")
            }
        }
    }
}

impl std::error::Error for InternError {}

/// A successful [`intern`](PatternInterner::intern): the handle jobs will
/// reference, the shared structure itself, and whether this upload
/// created the entry or deduplicated onto an existing one.
#[derive(Debug, Clone)]
pub struct Interned {
    /// Opaque nonzero handle; stable for the life of the runtime.
    pub handle: u64,
    /// The interned structure (the *one* `Arc` every same-content upload
    /// resolves to).
    pub pattern: Arc<AccessPattern>,
    /// `true` when this call created the entry, `false` when the content
    /// matched an existing pattern and its handle was returned instead.
    pub fresh: bool,
}

struct InternState {
    by_handle: HashMap<u64, Arc<AccessPattern>>,
    /// Content hash → handles with that hash (a chain, because a hash
    /// collision must not alias two distinct structures).
    by_hash: HashMap<u64, Vec<u64>>,
    next_handle: u64,
}

/// Bounded, content-deduplicating registry of uploaded access patterns.
///
/// Owned by the [`Runtime`](crate::Runtime) (one registry per service);
/// all methods take `&self` and are safe to call from any thread.
pub struct PatternInterner {
    state: Mutex<InternState>,
    capacity: usize,
}

impl PatternInterner {
    /// A registry holding at most `capacity` distinct patterns (clamped
    /// to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        PatternInterner {
            state: Mutex::new(InternState {
                by_handle: HashMap::new(),
                by_hash: HashMap::new(),
                next_handle: 1,
            }),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, InternState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The configured bound on distinct interned patterns.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Distinct patterns currently interned.
    pub fn len(&self) -> usize {
        self.lock().by_handle.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.lock().by_handle.is_empty()
    }

    /// Validate and intern `pattern`, returning its handle.  Content
    /// already in the registry — byte-identical `num_elements` /
    /// `iter_ptr` / `indices` — returns the existing handle and `Arc`
    /// with `fresh == false` and never counts against the capacity.
    pub fn intern(&self, pattern: AccessPattern) -> Result<Interned, InternError> {
        pattern.validate().map_err(InternError::Invalid)?;
        let hash = content_hash(&pattern);
        let mut g = self.lock();
        if let Some(handles) = g.by_hash.get(&hash) {
            for &h in handles {
                let existing = &g.by_handle[&h];
                if **existing == pattern {
                    return Ok(Interned {
                        handle: h,
                        pattern: existing.clone(),
                        fresh: false,
                    });
                }
            }
        }
        if g.by_handle.len() >= self.capacity {
            return Err(InternError::Full {
                capacity: self.capacity,
            });
        }
        let handle = g.next_handle;
        g.next_handle += 1;
        let arc = Arc::new(pattern);
        g.by_handle.insert(handle, arc.clone());
        g.by_hash.entry(hash).or_default().push(handle);
        Ok(Interned {
            handle,
            pattern: arc,
            fresh: true,
        })
    }

    /// Resolve a handle to its interned pattern (`None` for handles this
    /// registry never issued).
    pub fn get(&self, handle: u64) -> Option<Arc<AccessPattern>> {
        self.lock().by_handle.get(&handle).cloned()
    }
}

impl std::fmt::Debug for PatternInterner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.lock();
        f.debug_struct("PatternInterner")
            .field("len", &g.by_handle.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

/// FNV-1a over the pattern's structural content.  Stable within one
/// process run is all that is required (handles are never persisted).
fn content_hash(pattern: &AccessPattern) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    eat(&(pattern.num_elements as u64).to_le_bytes());
    eat(&(pattern.iter_ptr.len() as u64).to_le_bytes());
    for v in &pattern.iter_ptr {
        eat(&v.to_le_bytes());
    }
    for v in &pattern.indices {
        eat(&v.to_le_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartapps_workloads::{Distribution, PatternSpec};

    fn sample(seed: u64) -> AccessPattern {
        PatternSpec {
            num_elements: 64,
            iterations: 200,
            refs_per_iter: 3,
            coverage: 1.0,
            dist: Distribution::Uniform,
            seed,
        }
        .generate()
    }

    #[test]
    fn intern_then_get_round_trips() {
        let reg = PatternInterner::new(8);
        let a = reg.intern(sample(1)).unwrap();
        assert!(a.fresh);
        assert!(a.handle != 0);
        let got = reg.get(a.handle).expect("issued handle resolves");
        assert!(Arc::ptr_eq(&got, &a.pattern));
        assert!(reg.get(a.handle + 999).is_none());
    }

    #[test]
    fn same_content_dedupes_to_one_arc() {
        let reg = PatternInterner::new(8);
        let a = reg.intern(sample(7)).unwrap();
        let b = reg.intern(sample(7)).unwrap();
        assert!(!b.fresh);
        assert_eq!(a.handle, b.handle);
        assert!(
            Arc::ptr_eq(&a.pattern, &b.pattern),
            "cross-upload fusion needs pointer identity"
        );
        assert_eq!(reg.len(), 1);
        let c = reg.intern(sample(8)).unwrap();
        assert!(c.fresh);
        assert_ne!(c.handle, a.handle);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn invalid_patterns_are_refused() {
        let reg = PatternInterner::new(8);
        let mut bad = sample(1);
        bad.indices[0] = u32::MAX; // out of bounds for num_elements = 64
        match reg.intern(bad) {
            Err(InternError::Invalid(_)) => {}
            other => panic!("expected Invalid, got {other:?}"),
        }
        assert!(reg.is_empty());
    }

    #[test]
    fn malformed_csr_row_pointers_are_refused() {
        // Every way the row-pointer array can be malformed — not just an
        // out-of-bounds index — must be refused before interning, since a
        // handle resolves straight into dispatcher walks with no further
        // validation.
        let reg = PatternInterner::new(8);
        // Non-monotone row pointers.
        let mut bad = sample(1);
        let mid = bad.iter_ptr.len() / 2;
        bad.iter_ptr[mid] = bad.iter_ptr[mid - 1].wrapping_sub(1);
        assert!(matches!(reg.intern(bad), Err(InternError::Invalid(_))));
        // First pointer not zero.
        let mut bad = sample(2);
        bad.iter_ptr[0] = 1;
        assert!(matches!(reg.intern(bad), Err(InternError::Invalid(_))));
        // Last pointer disagrees with the reference count.
        let mut bad = sample(3);
        *bad.iter_ptr.last_mut().unwrap() += 1;
        assert!(matches!(reg.intern(bad), Err(InternError::Invalid(_))));
        // Empty row-pointer array (no leading 0 at all).
        let mut bad = sample(4);
        bad.iter_ptr.clear();
        bad.indices.clear();
        assert!(matches!(reg.intern(bad), Err(InternError::Invalid(_))));
        assert!(reg.is_empty(), "refused uploads must not consume capacity");
        // The registry still accepts well-formed structures afterwards.
        assert!(reg.intern(sample(5)).is_ok());
    }

    #[test]
    fn capacity_bounds_distinct_patterns_but_not_reuploads() {
        let reg = PatternInterner::new(2);
        let a = reg.intern(sample(1)).unwrap();
        reg.intern(sample(2)).unwrap();
        match reg.intern(sample(3)) {
            Err(InternError::Full { capacity: 2 }) => {}
            other => panic!("expected Full, got {other:?}"),
        }
        // A re-upload of existing content still succeeds at capacity.
        let again = reg.intern(sample(1)).unwrap();
        assert_eq!(again.handle, a.handle);
        assert!(!again.fresh);
    }

    #[test]
    fn hash_collisions_do_not_alias_distinct_patterns() {
        // Force the collision path by interning through the chain lookup:
        // two different patterns that happen to share a chain entry must
        // compare unequal and get distinct handles.  (A real FNV collision
        // is impractical to construct; instead verify the chain compares
        // content, not just hash, by checking distinct contents always get
        // distinct handles.)
        let reg = PatternInterner::new(64);
        let mut handles = std::collections::HashSet::new();
        for seed in 0..32 {
            let got = reg.intern(sample(seed)).unwrap();
            assert!(handles.insert(got.handle), "handle reused across contents");
        }
    }
}
