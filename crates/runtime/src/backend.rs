//! The execution-backend seam: where a decided job actually runs.
//!
//! The dispatcher decides *what* to run (a [`Scheme`], via profile store
//! or decision model) and this module decides *how*: a [`Backend`]
//! executes one decided job and reports a **cost sample** — the number
//! the profile store calibrates on.  Three implementations exist:
//!
//! * [`SoftwareBackend`] — the reduction library on the persistent
//!   [`WorkerPool`]; its cost sample is measured wall time.
//! * [`SimdBackend`] — the vectorized tree-reduction kernels
//!   (`smartapps_reductions::simd`) on the same worker pool; it executes
//!   only [`Scheme::Simd`] and its cost sample is measured wall time,
//!   directly comparable with the scalar software path.
//! * [`PclrBackend`] — the paper's hardware scheme: the job is lowered
//!   to per-processor PCLR instruction traces
//!   (`smartapps_workloads::tracegen`), run on the simulated CC-NUMA
//!   machine (`smartapps_sim`), and the result read back from simulated
//!   memory.  Its cost sample is *simulated machine time* (cycles scaled
//!   by [`PclrConfig::cycle_ns`]), which is what makes the hardware
//!   scheme comparable — and therefore a first-class competitor — in the
//!   same profile store the software schemes calibrate.
//!
//! Both backends are deterministic given their inputs; panics from job
//! bodies propagate to the caller (the dispatcher fences every execution
//! in `catch_unwind`).

use crate::job::{JobBody, JobOutput};
use crate::pool::WorkerPool;
use smartapps_core::calibrate::Correction;
use smartapps_reductions::{run_scheme_on, simd_reduce_on, Inspection, Scheme};
use smartapps_sim::offload::run_reduction;
use smartapps_sim::{MachineConfig, RedOp};
use smartapps_workloads::tracegen::{pclr_traces_with_values, TraceParams, ValueFn};
use smartapps_workloads::AccessPattern;
use std::sync::Arc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One decided job, ready for a backend to execute.
pub struct ExecRequest<'a> {
    /// The access pattern to reduce over.
    pub pattern: &'a Arc<AccessPattern>,
    /// The contribution body.
    pub body: &'a JobBody,
    /// SPMD width (software backend; the simulated machine uses its own
    /// configured node count).
    pub threads: usize,
    /// The decided scheme.
    pub scheme: Scheme,
    /// Inspector analysis, for schemes that need one (`sel`, `lw`).
    pub inspection: Option<&'a Inspection>,
}

/// What a backend reports back for one executed job.
pub struct ExecOutcome {
    /// The reduced array.
    pub output: JobOutput,
    /// The backend's cost sample, comparable across backends: wall time
    /// for software execution, simulated machine time for PCLR.  This is
    /// what the profile store records and drift-checks.
    pub cost: Duration,
    /// Simulated cycles, when the job ran on the PCLR machine.
    pub sim_cycles: Option<u64>,
}

/// An execution backend: runs one decided job and reports a cost sample.
pub trait Backend: Send + Sync {
    /// Short name for diagnostics (`"software"`, `"pclr"`).
    fn name(&self) -> &'static str;

    /// Whether this backend can execute `scheme`.
    fn supports(&self, scheme: Scheme) -> bool;

    /// Execute one decided job.  May panic if the job body panics (the
    /// dispatcher fences executions); must not be called with a scheme
    /// the backend does not [`support`](Backend::supports).
    fn execute(&self, req: &ExecRequest<'_>) -> ExecOutcome;
}

/// The software path: the reduction library's scheme kernels on the
/// persistent worker pool, timed with the host clock.
pub struct SoftwareBackend {
    pool: Arc<WorkerPool>,
}

impl SoftwareBackend {
    /// Build on a shared worker pool.
    pub fn new(pool: Arc<WorkerPool>) -> Self {
        SoftwareBackend { pool }
    }
}

impl Backend for SoftwareBackend {
    fn name(&self) -> &'static str {
        "software"
    }

    fn supports(&self, scheme: Scheme) -> bool {
        scheme.is_software()
    }

    fn execute(&self, req: &ExecRequest<'_>) -> ExecOutcome {
        let pool: &WorkerPool = &self.pool;
        let t0 = Instant::now();
        let output = match req.body {
            JobBody::F64(f) => JobOutput::F64(run_scheme_on(
                req.scheme,
                req.pattern,
                &|i, r| f(i, r),
                req.threads,
                req.inspection,
                pool,
            )),
            JobBody::I64(f) => JobOutput::I64(run_scheme_on(
                req.scheme,
                req.pattern,
                &|i, r| f(i, r),
                req.threads,
                req.inspection,
                pool,
            )),
        };
        ExecOutcome {
            output,
            cost: t0.elapsed(),
            sim_cycles: None,
        }
    }
}

/// The vector path: lane-striped tree-reduction kernels
/// (`smartapps_reductions::simd`) on the persistent worker pool, timed
/// with the host clock.  Supports only [`Scheme::Simd`]; the dispatcher
/// masks the scheme for patterns outside the dense/privatizing regime
/// (`simd_feasible`) before routing here.
pub struct SimdBackend {
    pool: Arc<WorkerPool>,
}

impl SimdBackend {
    /// Build on a shared worker pool.
    pub fn new(pool: Arc<WorkerPool>) -> Self {
        SimdBackend { pool }
    }
}

impl Backend for SimdBackend {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn supports(&self, scheme: Scheme) -> bool {
        scheme == Scheme::Simd
    }

    fn execute(&self, req: &ExecRequest<'_>) -> ExecOutcome {
        debug_assert_eq!(req.scheme, Scheme::Simd);
        let pool: &WorkerPool = &self.pool;
        let t0 = Instant::now();
        let output = match req.body {
            JobBody::F64(f) => JobOutput::F64(simd_reduce_on(
                req.pattern,
                &|i, r| f(i, r),
                req.threads,
                pool,
            )),
            JobBody::I64(f) => JobOutput::I64(simd_reduce_on(
                req.pattern,
                &|i, r| f(i, r),
                req.threads,
                pool,
            )),
        };
        ExecOutcome {
            output,
            cost: t0.elapsed(),
            sim_cycles: None,
        }
    }
}

/// Configuration of the PCLR offload backend.
#[derive(Debug, Clone)]
pub struct PclrConfig {
    /// Simulated node count (clamped to a power of two in `[1, 64]`).
    pub nodes: usize,
    /// Use the programmable (Flex/MAGIC-like) controller instead of the
    /// hardwired one.
    pub flex: bool,
    /// Largest job (total reduction references) the backend admits.
    /// Bigger jobs are re-decided onto the software path — the simulator
    /// stands in for real hardware and runs orders of magnitude slower
    /// than native execution, so this bounds dispatcher latency.
    pub max_sim_refs: usize,
    /// Host nanoseconds one simulated cycle converts to when reporting
    /// the cost sample (`1.0` models a 1 GHz machine).  This is only the
    /// *starting* assumption: the runtime fits the effective conversion
    /// online from classes observed on both backends
    /// ([`PclrBackend::fit_cycle_ns`]), and the fit persists across
    /// restarts as the profile store's `cyc` record.
    pub cycle_ns: f64,
}

impl Default for PclrConfig {
    fn default() -> Self {
        PclrConfig {
            nodes: 4,
            flex: false,
            max_sim_refs: 200_000,
            cycle_ns: 1.0,
        }
    }
}

/// The hardware path: lower the job to PCLR traces, run the simulated
/// machine, read the result back from simulated memory.
pub struct PclrBackend {
    config: PclrConfig,
    machine: MachineConfig,
    /// Online fit of the cycle→nanosecond conversion: an EWMA over
    /// observed (software wall-ns/ref, simulated cycles/ref) pairs for
    /// classes that executed on both backends.  Until the first pair the
    /// assumed [`PclrConfig::cycle_ns`] applies.
    cycle_fit: Mutex<Correction>,
}

impl PclrBackend {
    /// Build from a [`PclrConfig`] (node count normalized to a power of
    /// two, value tracking forced by the sim adapter at run time).
    pub fn new(mut config: PclrConfig) -> Self {
        let nodes = config.nodes.clamp(1, 64).next_power_of_two();
        config.nodes = nodes;
        let machine = if config.flex {
            MachineConfig::flex(nodes)
        } else {
            MachineConfig::table1(nodes)
        };
        let cycle_fit = Mutex::new(Correction::seeded(config.cycle_ns, 0));
        PclrBackend {
            config,
            machine,
            cycle_fit,
        }
    }

    /// The active configuration (after normalization).
    pub fn config(&self) -> &PclrConfig {
        &self.config
    }

    /// Fold one observed cycle→nanosecond sample into the fitted
    /// conversion (dispatcher-fed: `software wall-ns per reference /
    /// simulated cycles per reference` for a class seen on both
    /// backends).  Invalid samples are ignored.
    ///
    /// A large refit retroactively rescales every hardware-routed
    /// class's reported cost (cycles are deterministic; the conversion
    /// is not pinned), so profiled pclr entries calibrated under the old
    /// conversion may trip the dispatcher's drift guard once and
    /// re-record — deliberate: a new time base *is* a phase change for
    /// stored calibrations.
    pub fn fit_cycle_ns(&self, sample_ns_per_cycle: f64) {
        if !sample_ns_per_cycle.is_finite() || sample_ns_per_cycle <= 0.0 {
            return;
        }
        let mut fit = self.cycle_fit.lock().unwrap_or_else(|p| p.into_inner());
        fit.observe(sample_ns_per_cycle);
    }

    /// The fitted conversion and the number of samples behind it (0
    /// samples ⇒ the value is still the configured assumption).
    pub fn fitted_cycle_ns(&self) -> Correction {
        *self.cycle_fit.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Seed the fit from persisted state (the profile store's `cyc`
    /// record); a warmer in-memory fit is kept.
    pub fn seed_cycle_fit(&self, fit: Correction) {
        if !fit.ns_per_unit.is_finite() || fit.ns_per_unit <= 0.0 {
            return;
        }
        let mut mine = self.cycle_fit.lock().unwrap_or_else(|p| p.into_inner());
        if fit.updates > mine.updates {
            *mine = fit;
        }
    }

    /// Whether the backend admits a job over this pattern (reference
    /// count within [`PclrConfig::max_sim_refs`]).
    pub fn admits(&self, pat: &AccessPattern) -> bool {
        pat.num_references() <= self.config.max_sim_refs
    }
}

impl Backend for PclrBackend {
    fn name(&self) -> &'static str {
        "pclr"
    }

    fn supports(&self, scheme: Scheme) -> bool {
        scheme == Scheme::Pclr
    }

    fn execute(&self, req: &ExecRequest<'_>) -> ExecOutcome {
        debug_assert_eq!(req.scheme, Scheme::Pclr);
        // Lower the body into the trace's update values: the simulated
        // combine units apply the matching RedOp, so the machine computes
        // exactly the job's reduction (bit-exact for i64, reassociated
        // for f64 like every parallel scheme).
        let (op, vals): (RedOp, ValueFn) = match req.body {
            JobBody::F64(f) => {
                let f = f.clone();
                (RedOp::AddF64, Arc::new(move |i, r| f(i, r).to_bits()))
            }
            JobBody::I64(f) => {
                let f = f.clone();
                (RedOp::AddI64, Arc::new(move |i, r| f(i, r) as u64))
            }
        };
        let params = TraceParams {
            op,
            values: true,
            ..TraceParams::default()
        };
        let traces = pclr_traces_with_values(req.pattern, self.config.nodes, params, vals);
        let sim = run_reduction(self.machine.clone(), traces, req.pattern.num_elements);
        let output = match req.body {
            JobBody::F64(_) => {
                JobOutput::F64(sim.values.iter().map(|&v| f64::from_bits(v)).collect())
            }
            JobBody::I64(_) => JobOutput::I64(sim.values.iter().map(|&v| v as i64).collect()),
        };
        let cycles = sim.cycles();
        let cycle_ns = self.fitted_cycle_ns().ns_per_unit;
        let cost = Duration::from_nanos((cycles as f64 * cycle_ns).round() as u64);
        ExecOutcome {
            output,
            cost,
            sim_cycles: Some(cycles),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use smartapps_workloads::pattern::{sequential_reduce, sequential_reduce_i64};
    use smartapps_workloads::{contribution, contribution_i64, Distribution, PatternSpec};

    fn pattern(seed: u64) -> Arc<AccessPattern> {
        Arc::new(
            PatternSpec {
                num_elements: 300,
                iterations: 400,
                refs_per_iter: 3,
                coverage: 0.9,
                dist: Distribution::Uniform,
                seed,
            }
            .generate(),
        )
    }

    #[test]
    fn software_backend_supports_software_schemes_only() {
        let b = SoftwareBackend::new(Arc::new(WorkerPool::new(2)));
        assert_eq!(b.name(), "software");
        for s in Scheme::all_parallel() {
            assert!(b.supports(s));
        }
        assert!(b.supports(Scheme::Seq));
        assert!(!b.supports(Scheme::Pclr));
        assert!(!b.supports(Scheme::Simd));
    }

    #[test]
    fn simd_backend_matches_oracles() {
        let b = SimdBackend::new(Arc::new(WorkerPool::new(3)));
        assert_eq!(b.name(), "simd");
        assert!(b.supports(Scheme::Simd) && !b.supports(Scheme::Rep));
        let pat = pattern(8);
        // i64: bit-exact against the sequential oracle.
        let spec = JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r));
        let out = b.execute(&ExecRequest {
            pattern: &pat,
            body: &spec.body,
            threads: 3,
            scheme: Scheme::Simd,
            inspection: None,
        });
        assert_eq!(out.output.as_i64().unwrap(), sequential_reduce_i64(&pat));
        assert!(out.sim_cycles.is_none());
        // f64: within tolerance, and bit-identical across repeated runs.
        let spec = JobSpec::f64(pat.clone(), |_i, r| contribution(r));
        let req = ExecRequest {
            pattern: &pat,
            body: &spec.body,
            threads: 3,
            scheme: Scheme::Simd,
            inspection: None,
        };
        let a = b.execute(&req);
        let c = b.execute(&req);
        let oracle = sequential_reduce(&pat);
        for ((x, y), o) in a
            .output
            .as_f64()
            .unwrap()
            .iter()
            .zip(c.output.as_f64().unwrap())
            .zip(&oracle)
        {
            assert_eq!(x.to_bits(), y.to_bits());
            assert!((x - o).abs() <= 1e-9 * o.abs().max(1.0));
        }
    }

    #[test]
    fn pclr_backend_matches_i64_oracle_exactly() {
        let b = PclrBackend::new(PclrConfig::default());
        assert!(b.supports(Scheme::Pclr) && !b.supports(Scheme::Hash));
        let pat = pattern(5);
        let spec = JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r));
        let out = b.execute(&ExecRequest {
            pattern: &pat,
            body: &spec.body,
            threads: 4,
            scheme: Scheme::Pclr,
            inspection: None,
        });
        assert_eq!(out.output.as_i64().unwrap(), sequential_reduce_i64(&pat));
        let cycles = out.sim_cycles.expect("pclr reports cycles");
        assert!(cycles > 0);
        assert_eq!(out.cost, Duration::from_nanos(cycles)); // cycle_ns = 1.0
    }

    #[test]
    fn pclr_backend_matches_f64_oracle_within_tolerance() {
        let b = PclrBackend::new(PclrConfig {
            nodes: 2,
            ..PclrConfig::default()
        });
        let pat = pattern(6);
        let spec = JobSpec::f64(pat.clone(), |_i, r| contribution(r));
        let out = b.execute(&ExecRequest {
            pattern: &pat,
            body: &spec.body,
            threads: 2,
            scheme: Scheme::Pclr,
            inspection: None,
        });
        let oracle = sequential_reduce(&pat);
        for (a, b) in oracle.iter().zip(out.output.as_f64().unwrap()) {
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
        }
    }

    #[test]
    fn pclr_backend_uses_iteration_aware_bodies() {
        // The body depends on the iteration index, not just the slot —
        // the lowering must thread both through to the trace values.
        let b = PclrBackend::new(PclrConfig::default());
        let pat = pattern(7);
        let spec = JobSpec::i64(pat.clone(), |i, r| (i as i64) * 7 + contribution_i64(r));
        let out = b.execute(&ExecRequest {
            pattern: &pat,
            body: &spec.body,
            threads: 4,
            scheme: Scheme::Pclr,
            inspection: None,
        });
        let mut oracle = vec![0i64; pat.num_elements];
        for (i, r, x) in pat.iter_refs() {
            oracle[x as usize] += (i as i64) * 7 + contribution_i64(r);
        }
        assert_eq!(out.output.as_i64().unwrap(), oracle);
    }

    #[test]
    fn cycle_fit_refines_the_assumed_conversion() {
        let b = PclrBackend::new(PclrConfig::default());
        // No samples: the configured assumption stands.
        assert_eq!(b.fitted_cycle_ns(), Correction::seeded(1.0, 0));
        // Samples move it; invalid ones are ignored.
        b.fit_cycle_ns(0.5);
        b.fit_cycle_ns(f64::NAN);
        b.fit_cycle_ns(-3.0);
        let fit = b.fitted_cycle_ns();
        assert_eq!(fit.updates, 1);
        assert!((fit.ns_per_unit - 0.5).abs() < 1e-12);
        // The reported cost uses the fitted value, not the assumption.
        let pat = pattern(5);
        let spec = JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r));
        let out = b.execute(&ExecRequest {
            pattern: &pat,
            body: &spec.body,
            threads: 4,
            scheme: Scheme::Pclr,
            inspection: None,
        });
        let cycles = out.sim_cycles.unwrap();
        assert_eq!(
            out.cost,
            Duration::from_nanos((cycles as f64 * 0.5).round() as u64)
        );
        // Persisted state seeds only when warmer.
        b.seed_cycle_fit(Correction::seeded(2.0, 0));
        assert_eq!(b.fitted_cycle_ns().updates, 1);
        b.seed_cycle_fit(Correction::seeded(2.0, 10));
        assert_eq!(b.fitted_cycle_ns(), Correction::seeded(2.0, 10));
    }

    #[test]
    fn pclr_config_normalizes_nodes_and_gates_admission() {
        let b = PclrBackend::new(PclrConfig {
            nodes: 5,
            max_sim_refs: 100,
            ..PclrConfig::default()
        });
        assert_eq!(b.config().nodes, 8, "5 rounds up to a power of two");
        let small = pattern(9); // 1200 refs
        assert!(!b.admits(&small), "1200 refs exceed the 100-ref cap");
        let tiny = Arc::new(AccessPattern::from_iters(4, &[vec![0, 1], vec![2]]));
        assert!(b.admits(&tiny));
    }
}
