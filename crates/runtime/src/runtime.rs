//! The long-lived reduction service: submission API, shard-affine
//! dispatchers, and the glue between queue, pool, and profile store.
//!
//! N dispatcher threads own scheme decisions, each for its own subset of
//! signature shards (the `queue` module documents the affinity and
//! stealing protocol).  A dispatcher pops coalesced batches from its
//! shards, consults the [`ProfileStore`] (hit → no inspection), otherwise
//! pays one [`Inspector`] pass and asks the decision model, then executes
//! the batch on the persistent [`WorkerPool`] and folds the measurements
//! back into the store.  When a batch contains several jobs reducing over
//! the *same* pattern, they run as one **fused sweep** — one traversal
//! producing every output (see `smartapps_reductions::fused`) — instead of
//! merely sharing the decision.  The worker pool does the heavy lifting;
//! each dispatcher participates as `tid 0` of its own SPMD regions, so no
//! core idles while it "waits".

use crate::backend::{Backend, ExecRequest, PclrBackend, PclrConfig, SimdBackend, SoftwareBackend};
use crate::completion::{Completion, CompletionSet, CompletionSink};
use crate::error::JobError;
use crate::intern::PatternInterner;
use crate::job::{JobBody, JobHandle, JobOutput, JobResult, JobSpec, JobState, PatternSignature};
use crate::pool::WorkerPool;
use crate::profile::{ProfileEntry, ProfileStore};
use crate::queue::{QueuedJob, ShardedQueue};
use crate::stats::{RuntimeStats, StatsSnapshot};
use crate::telemetry::{domain_label, scheme_code, RuntimeTelemetry, SlowJob};
use smartapps_core::adaptive::AdaptiveReduction;
use smartapps_core::calibrate::Calibrator;
use smartapps_core::toolbox::DomainKey;
use smartapps_core::{DecisionRecord, GateVerdict};
use smartapps_reductions::{
    probe_uniform, recognize, run_fused_on, run_scan_group, simd_feasible, CostGuard,
    DecisionModel, FusedBody, Inspection, Inspector, ModelInput, ScanMatch, Scheme, SpmdExecutor,
};
use smartapps_telemetry::{Exemplar, TraceBackend, TraceError, TraceEvent};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Measured-over-predicted ratio beyond which a profile entry is treated
/// as stale (phase change) and evicted.
const DRIFT_EVICT_RATIO: f64 = 4.0;

/// Profile entries younger than this many runs are never drift-evicted
/// (their calibration is still settling).
const DRIFT_MIN_RUNS: u64 = 3;

/// Consecutive over-ratio samples required before the phase-change guard
/// evicts.  One wild sample is timing noise (a scheduler hiccup, a
/// cache-cold run — common on sub-millisecond jobs); a run of them is a
/// phase change.
const DRIFT_EVICT_STRIKES: u8 = 2;

/// Widest SPMD region a job may request (the inspector's supported limit);
/// `JobSpec::with_threads` beyond this is clamped at submission.
const MAX_SPMD_THREADS: usize = 250;

/// Cap on the per-signature cycle-pairing table (software wall time vs
/// simulated cycles for classes seen on both backends); the table resets
/// when it fills — pairing is opportunistic, not an index.
const MAX_CYCLE_PAIRS: usize = 1024;

/// Hysteresis of the calibration recheck: a profiled scheme is displaced
/// only when the corrected challenger undercuts it by at least this
/// factor, so photo-finish classes do not flip-flop between rechecks.
const RECHECK_MARGIN: f64 = 0.85;

/// Knobs of the online calibration loop (`docs/MODEL.md`).
///
/// The loop itself is always on: every clean execution with a known
/// characterization feeds a predicted-vs-measured cost sample to the
/// [`Calibrator`], and corrections steer every model decision.  The two
/// knobs here control *active sampling*, which trades a bounded fraction
/// of measured throughput for faster convergence — both default to off,
/// leaving decision behavior identical to an uncalibrated service until
/// real traffic diversity (or a persisted `corr` state) provides the
/// cross-scheme samples corrections need.
#[derive(Debug, Clone, Default)]
pub struct CalibrationConfig {
    /// Every `explore_every`-th dispatch batch executes the best-ranked
    /// scheme that still *lacks confident class-level calibration*
    /// (instead of the scheme that would otherwise run), so schemes the
    /// model mis-ranks get measured at all — without cross-scheme
    /// samples a single-regime workload can never learn that its chosen
    /// scheme is mispredicted.  Exploration self-terminates: once every
    /// feasible scheme in a domain is confidently calibrated, the slot
    /// runs normally.  Explored executions feed the calibrator but not
    /// the profile store.  `0` disables exploration.
    pub explore_every: usize,
    /// Every `recheck_every` recorded runs of a profile entry, the next
    /// hit re-ranks the class under the corrected model; if a
    /// measured-confident scheme now beats the stored one by the recheck
    /// margin, the entry is evicted and the class re-decides — the
    /// paper's "Redecide" adaptation, driven by calibration instead of
    /// drift.  Per-entry cadence, so interleaved classes recheck
    /// independently.  `0` disables rechecks (profile entries then
    /// change only through drift eviction).
    pub recheck_every: usize,
    /// Every `probe_fused_every`-th fusable group that the fusion gate
    /// *declines* runs as a fused sweep anyway, gathering the fused-side
    /// measurement the gate needs before it can trust fusion for schemes
    /// outside the analytically validated `hash` regime.  `0` disables
    /// probing.
    pub probe_fused_every: usize,
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// SPMD width of the worker pool (workers + dispatcher).
    pub workers: usize,
    /// Number of job-queue shards.
    pub shards: usize,
    /// Number of shard-affine dispatcher threads.  Each owns `shards /
    /// dispatchers` queue shards and steals from overloaded peers when its
    /// own drain; `1` reproduces the original single-consumer service.
    /// Clamped to `[1, shards]` at startup.
    pub dispatchers: usize,
    /// Maximum jobs coalesced into one dispatch batch.
    pub max_batch: usize,
    /// Maximum jobs executed as one fused sweep (one traversal, K
    /// outputs).  `1` disables fusion; the privatizing schemes allocate
    /// K-fold private storage, so this also bounds memory.
    pub max_fuse: usize,
    /// Iterations sampled when computing pattern signatures.
    pub sample_iters: usize,
    /// Profile store location: loaded (if present) at startup, saved at
    /// shutdown.  `None` keeps profiles in memory only.
    pub profile_path: Option<PathBuf>,
    /// PCLR hardware offload: `Some` routes jobs decided for
    /// [`Scheme::Pclr`] to the simulated machine backend and lets the
    /// hardware scheme compete in decisions; `None` (the default) keeps
    /// the service software-only.
    pub pclr: Option<PclrConfig>,
    /// Vectorized SIMD tree-reduction backend: `true` (the default) lets
    /// [`Scheme::Simd`] compete in decisions for dense/privatizing
    /// classes (feasibility-masked exactly like an infeasible `lw`) and
    /// routes jobs decided for it to the lane-striped kernel; `false`
    /// keeps the service scalar-only — persisted `simd` profile entries
    /// then re-decide and are evicted like dead hardware entries.
    pub simd: bool,
    /// Decision model consulted when no profile entry covers a class.
    /// The default calibration matches this crate's kernels; services on
    /// unusual hardware (or tests pinning a decision) substitute their
    /// own [`ModelParams`](smartapps_reductions::ModelParams).  At run
    /// time the model is only the *prior*: the [`Calibrator`] corrects
    /// it with measured cost samples, and the corrections persist through
    /// the profile store.
    pub model: DecisionModel,
    /// Active-sampling knobs of the online calibration loop (both off by
    /// default; the passive loop always runs).
    pub calibration: CalibrationConfig,
    /// Poisoned-class quarantine: after this many *consecutive* panicking
    /// bodies in one workload class ([`PatternSignature`]), further jobs
    /// of the class fail fast with
    /// [`JobErrorKind::Quarantined`](crate::JobErrorKind::Quarantined)
    /// instead of burning a worker sweep each time.  The quarantine lifts
    /// on [`Runtime::unquarantine`] or after
    /// [`quarantine_ttl`](RuntimeConfig::quarantine_ttl); a clean
    /// execution resets the consecutive count.  `0` (the default)
    /// disables quarantining.
    pub quarantine_after: usize,
    /// How long a quarantined class stays blocked before it is given a
    /// fresh chance (ignored while `quarantine_after == 0`).
    pub quarantine_ttl: Duration,
    /// Bound on distinct uploaded patterns the service's
    /// [`PatternInterner`] holds (CSR upload, `docs/SERVER.md`); uploads
    /// past the bound are refused, re-uploads of interned content are
    /// free.
    pub pattern_intern_capacity: usize,
    /// Reduction simplification pass (`true`, the default): jobs that
    /// declare an iteration-uniform body
    /// ([`JobSpec::with_uniform_body`]) and whose pattern the recognizer
    /// matches as a prefix/suffix scan or overlapping-window family are
    /// rewritten to a difference-array plan — O(I + N) work instead of
    /// O(R) — *before* the decision model schedules them (see
    /// `docs/MODEL.md`, "Simplification pass").  Non-matching,
    /// unprofitable, or refuted-declaration jobs pass through to the
    /// normal scheme pipeline untouched.  `false` disables the pass
    /// entirely (every job runs unsimplified).
    pub simplify: bool,
}

/// Dispatcher count matched to a pool width: one dispatcher per four
/// workers, capped at four.
fn dispatchers_for(workers: usize) -> usize {
    (workers / 4).clamp(1, 4)
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(1, 16);
        RuntimeConfig {
            workers,
            shards: 16,
            dispatchers: dispatchers_for(workers),
            max_batch: 32,
            max_fuse: 8,
            sample_iters: 2048,
            profile_path: None,
            pclr: None,
            simd: true,
            model: DecisionModel::default(),
            calibration: CalibrationConfig::default(),
            quarantine_after: 0,
            quarantine_ttl: Duration::from_secs(30),
            pattern_intern_capacity: 1024,
            simplify: true,
        }
    }
}

struct Shared {
    pool: Arc<WorkerPool>,
    queue: ShardedQueue,
    profile: Mutex<ProfileStore>,
    stats: RuntimeStats,
    calibrator: Mutex<Calibrator>,
    software: SoftwareBackend,
    simd: Option<SimdBackend>,
    pclr: Option<PclrBackend>,
    max_batch: usize,
    max_fuse: usize,
    sample_iters: usize,
    profile_path: Option<PathBuf>,
    explore_every: usize,
    recheck_every: usize,
    probe_fused_every: usize,
    /// Dispatch batches seen (drives the deterministic exploration cadence).
    explore_ticks: AtomicU64,
    /// Fusable groups the gate declined (drives the fused-probe cadence).
    declined_fuses: AtomicU64,
    /// Per-signature (software wall-ns/ref, simulated cycles/ref) halves;
    /// a completed pair yields one cycle→ns fitting sample.
    cycle_pairs: Mutex<HashMap<u64, CyclePair>>,
    /// Consecutive-panic threshold of the poisoned-class quarantine
    /// (`0` disables it) and how long a quarantined class stays blocked.
    quarantine_after: usize,
    quarantine_ttl: Duration,
    /// Per-signature panic-health ledger (only touched while
    /// `quarantine_after > 0`).
    quarantine: Mutex<HashMap<u64, ClassHealth>>,
    /// Latency histograms + job-lifecycle trace ring (see the
    /// [`telemetry`](crate::telemetry) module).
    telemetry: RuntimeTelemetry,
    /// Uploaded-pattern registry (CSR upload handles, see
    /// [`intern`](crate::intern)).
    interner: PatternInterner,
    /// Whether the pre-scheduling simplification pass runs
    /// ([`RuntimeConfig::simplify`]).
    simplify: bool,
}

/// Panic health of one workload class: how many of its most recent bodies
/// panicked back-to-back, and — once that crossed the threshold — until
/// when the class fails fast.
#[derive(Debug, Clone, Copy)]
struct ClassHealth {
    consecutive_panics: usize,
    blocked_until: Option<Instant>,
}

/// The two halves of one cycle-fitting observation for a workload class:
/// wall nanoseconds per reference measured on the software backend, and
/// simulated cycles per reference measured on the PCLR backend.
type CyclePair = (Option<f64>, Option<f64>);

impl Shared {
    /// Whether the PCLR backend exists and admits a job over `pat`.
    fn pclr_admits(&self, pat: &smartapps_workloads::AccessPattern) -> bool {
        self.pclr.as_ref().is_some_and(|b| b.admits(pat))
    }

    /// Whether the SIMD backend exists and the class's measured
    /// characteristics admit the lane-striped kernel (dense/privatizing
    /// regime — see [`simd_feasible`]).
    fn simd_admits(&self, chars: &smartapps_workloads::PatternChars) -> bool {
        self.simd.is_some() && simd_feasible(chars)
    }

    /// Lock the calibrator (poison-tolerant like the profile store).
    fn calibrator(&self) -> std::sync::MutexGuard<'_, Calibrator> {
        self.calibrator.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Feed one clean execution's predicted-vs-measured sample into the
    /// calibrator and the calibration counters, under a single calibrator
    /// lock.  `predicted_units` is the raw analytic cost — computed here
    /// from `input` when the caller does not already hold one (the
    /// per-job path), so the hot path locks once, not twice.
    fn learn(
        &self,
        scheme: Scheme,
        domain: DomainKey,
        fused: bool,
        predicted_units: Option<f64>,
        input: &ModelInput,
        measured: Duration,
    ) {
        let err = {
            let mut cal = self.calibrator();
            let raw = predicted_units.unwrap_or_else(|| cal.model.predict(scheme, input));
            cal.observe(scheme, domain, fused, raw, measured.as_nanos() as f64)
        };
        if let Some(err) = err {
            let ppm = (err * 1e6).min(u64::MAX as f64) as u64;
            RuntimeStats::add(&self.stats.calibration_updates, 1);
            RuntimeStats::add(&self.stats.pred_err_sum_micros, ppm);
            // The counters keep the mean; the histogram keeps the
            // *distribution* of per-sample prediction error.
            self.telemetry.record_predict_err_ppm(scheme, ppm);
        }
    }

    /// Record one backend observation for the cycle→ns fit: the software
    /// half (wall ns per reference) or the simulated half (cycles per
    /// reference).  When a signature has both halves, their ratio is one
    /// fitting sample for the PCLR backend's conversion.
    fn pair_cycle_sample(&self, sig: PatternSignature, refs: usize, ns: f64, cycles: Option<u64>) {
        let Some(pclr) = &self.pclr else { return };
        if refs == 0 {
            return;
        }
        let mut pairs = self.cycle_pairs.lock().unwrap_or_else(|p| p.into_inner());
        if pairs.len() >= MAX_CYCLE_PAIRS && !pairs.contains_key(&sig.0) {
            pairs.clear();
        }
        let entry = pairs.entry(sig.0).or_insert((None, None));
        match cycles {
            Some(c) => entry.1 = Some(c as f64 / refs as f64),
            None => entry.0 = Some(ns / refs as f64),
        }
        if let (Some(wall_ns_per_ref), Some(cycles_per_ref)) = *entry {
            if cycles_per_ref > 0.0 {
                pclr.fit_cycle_ns(wall_ns_per_ref / cycles_per_ref);
            }
        }
    }

    fn quarantine_map(&self) -> std::sync::MutexGuard<'_, HashMap<u64, ClassHealth>> {
        self.quarantine.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Whether `sig` is currently quarantined; `Some(count)` carries the
    /// consecutive-panic count for the error message.  An expired TTL
    /// clears the ledger entirely — the class restarts with a clean
    /// record and gets `quarantine_after` fresh chances.
    fn quarantine_blocked(&self, sig: PatternSignature) -> Option<usize> {
        if self.quarantine_after == 0 {
            return None;
        }
        let mut map = self.quarantine_map();
        let health = map.get(&sig.0)?;
        match health.blocked_until {
            Some(until) if Instant::now() < until => Some(health.consecutive_panics),
            Some(_) => {
                map.remove(&sig.0);
                None
            }
            None => None,
        }
    }

    /// Record one panicking body of class `sig`; crossing the threshold
    /// starts the quarantine clock.
    fn note_panic(&self, sig: PatternSignature) {
        if self.quarantine_after == 0 {
            return;
        }
        let mut map = self.quarantine_map();
        let health = map.entry(sig.0).or_insert(ClassHealth {
            consecutive_panics: 0,
            blocked_until: None,
        });
        health.consecutive_panics += 1;
        if health.consecutive_panics >= self.quarantine_after && health.blocked_until.is_none() {
            health.blocked_until = Some(Instant::now() + self.quarantine_ttl);
        }
    }

    /// A clean execution of class `sig` resets its panic streak.
    fn note_clean(&self, sig: PatternSignature) {
        if self.quarantine_after == 0 {
            return;
        }
        self.quarantine_map().remove(&sig.0);
    }
}

/// The persistent reduction service.
///
/// Dropping (or [`shutdown`](Runtime::shutdown)-ing) the runtime closes
/// the queue, drains every pending job, persists the profile store (when
/// configured), and joins every dispatcher and all pool workers.
pub struct Runtime {
    shared: Arc<Shared>,
    dispatchers: Vec<JoinHandle<()>>,
}

impl Runtime {
    /// Start a service with the given configuration.
    pub fn new(config: RuntimeConfig) -> Self {
        let profile = match &config.profile_path {
            Some(p) if p.exists() => ProfileStore::load(p).unwrap_or_default(),
            _ => ProfileStore::new(),
        };
        let shards = config.shards.max(1);
        let n_dispatchers = config.dispatchers.clamp(1, shards);
        let pool = Arc::new(WorkerPool::new(config.workers));
        // The calibrator starts from the analytic model and inherits any
        // corrections a previous process persisted with the profiles.
        let mut calibrator = Calibrator::new(config.model);
        for (level, corr) in profile.calibration() {
            calibrator.seed(level, corr);
        }
        let pclr = config.pclr.map(PclrBackend::new);
        if let (Some(pclr), Some(fit)) = (&pclr, profile.cycle_fit()) {
            pclr.seed_cycle_fit(fit);
        }
        let shared = Arc::new(Shared {
            queue: ShardedQueue::new(shards, n_dispatchers),
            profile: Mutex::new(profile),
            stats: RuntimeStats::default(),
            calibrator: Mutex::new(calibrator),
            software: SoftwareBackend::new(pool.clone()),
            simd: config.simd.then(|| SimdBackend::new(pool.clone())),
            pclr,
            pool,
            max_batch: config.max_batch.max(1),
            max_fuse: config.max_fuse.max(1),
            sample_iters: config.sample_iters.max(1),
            profile_path: config.profile_path,
            explore_every: config.calibration.explore_every,
            recheck_every: config.calibration.recheck_every,
            probe_fused_every: config.calibration.probe_fused_every,
            explore_ticks: AtomicU64::new(0),
            declined_fuses: AtomicU64::new(0),
            cycle_pairs: Mutex::new(HashMap::new()),
            quarantine_after: config.quarantine_after,
            quarantine_ttl: config.quarantine_ttl,
            quarantine: Mutex::new(HashMap::new()),
            telemetry: RuntimeTelemetry::new(),
            interner: PatternInterner::new(config.pattern_intern_capacity),
            simplify: config.simplify,
        });
        let dispatchers = (0..n_dispatchers)
            .map(|d| {
                let for_dispatcher = shared.clone();
                std::thread::Builder::new()
                    .name(format!("smartapps-dispatcher-{d}"))
                    .spawn(move || dispatcher_loop(&for_dispatcher, d))
                    .expect("spawn dispatcher")
            })
            .collect();
        Runtime {
            shared,
            dispatchers,
        }
    }

    /// Start a service with `workers` SPMD width and defaults otherwise
    /// (dispatcher count scaled to the width).
    pub fn with_workers(workers: usize) -> Self {
        Runtime::new(RuntimeConfig {
            workers,
            dispatchers: dispatchers_for(workers),
            ..RuntimeConfig::default()
        })
    }

    /// The pool's SPMD width.
    pub fn width(&self) -> usize {
        self.shared.pool.width()
    }

    /// The number of dispatcher threads serving the queue.
    pub fn dispatcher_count(&self) -> usize {
        self.dispatchers.len()
    }

    /// Submit one job; returns immediately with a blocking handle.
    ///
    /// Structurally invalid jobs (a malformed [`AccessPattern`]) are
    /// rejected up front: the handle completes immediately with a
    /// [`JobErrorKind::Rejected`](crate::JobErrorKind::Rejected) error and
    /// nothing reaches the queue.  Submissions racing a shutdown complete
    /// with [`JobErrorKind::Shutdown`](crate::JobErrorKind::Shutdown)
    /// instead of executing.
    ///
    /// [`AccessPattern`]: smartapps_workloads::AccessPattern
    pub fn submit(&self, spec: JobSpec) -> JobHandle {
        let state = JobState::new();
        let signature = self.submit_sink(spec, CompletionSink::Handle(state.clone()));
        JobHandle { state, signature }
    }

    /// Submit many jobs at once; the queue coalesces same-signature jobs
    /// into shared dispatch batches, and same-pattern members of a batch
    /// execute as one fused sweep.
    pub fn submit_batch(&self, specs: Vec<JobSpec>) -> Vec<JobHandle> {
        specs.into_iter().map(|s| self.submit(s)).collect()
    }

    /// Submit one job tagged with a caller-chosen `token`, routing its
    /// completion onto `set` instead of a per-job handle — the
    /// completion-multiplexing path (see
    /// [`completion`](crate::completion)): one consumer thread drains
    /// thousands of in-flight jobs through
    /// [`CompletionSet::poll`]/[`wait_any`](CompletionSet::wait_any)
    /// instead of parking a thread per job.
    ///
    /// Every submission — including ones rejected before queueing or
    /// racing a shutdown — produces **exactly one** [`Completion`] on the
    /// set, carrying the same [`JobResult`] (fused, offloaded,
    /// quarantined, or failed) a [`JobHandle`] would have seen.  Returns
    /// the signature the job was queued under.
    pub fn submit_tagged(
        &self,
        spec: JobSpec,
        token: u64,
        set: &CompletionSet,
    ) -> PatternSignature {
        let queue = set.queue();
        queue.register();
        self.submit_sink(spec, CompletionSink::Queue { token, queue })
    }

    /// [`submit_tagged`](Runtime::submit_tagged) for a whole batch:
    /// same-signature members coalesce into shared dispatch batches (and
    /// same-pattern members into fused sweeps) exactly like
    /// [`submit_batch`](Runtime::submit_batch).
    pub fn submit_batch_tagged(
        &self,
        specs: Vec<(u64, JobSpec)>,
        set: &CompletionSet,
    ) -> Vec<PatternSignature> {
        specs
            .into_iter()
            .map(|(token, spec)| self.submit_tagged(spec, token, set))
            .collect()
    }

    /// Submit one job with a push-style completion callback instead of a
    /// handle or a queue: `on_complete` is invoked exactly once with the
    /// finished [`Completion`] — **on the completing thread** (a
    /// dispatcher, or the submitting thread itself for submissions
    /// rejected up front), so it must be short and non-blocking; a slow
    /// callback stalls a dispatcher.
    pub fn submit_callback(
        &self,
        spec: JobSpec,
        token: u64,
        on_complete: impl Fn(Completion) + Send + Sync + 'static,
    ) -> PatternSignature {
        self.submit_sink(
            spec,
            CompletionSink::Callback {
                token,
                f: Arc::new(on_complete),
            },
        )
    }

    /// The shared submission path: validate, sign, queue — or complete
    /// the sink immediately with the rejection/shutdown error.  Every
    /// sink is completed exactly once, here or by a dispatcher.
    fn submit_sink(&self, mut spec: JobSpec, sink: CompletionSink) -> PatternSignature {
        let threads = spec
            .threads
            .unwrap_or(self.width())
            .clamp(1, MAX_SPMD_THREADS);
        spec.threads = Some(threads);
        RuntimeStats::add(&self.shared.stats.submitted, 1);
        if let Err(e) = spec.pattern.validate() {
            RuntimeStats::add(&self.shared.stats.completed, 1);
            // Inline delivery (never blocks on the completion bound: the
            // submitting thread may be the set's only consumer).
            sink.complete_inline(
                PatternSignature(0),
                JobResult {
                    output: empty_output(&spec.body),
                    scheme: Scheme::Seq,
                    elapsed: std::time::Duration::ZERO,
                    sim_cycles: None,
                    profile_hit: false,
                    batched_with: 0,
                    fused_with: 0,
                    error: Some(JobError::rejected(format!("invalid access pattern: {e}"))),
                },
            );
            return PatternSignature(0);
        }
        let sig = PatternSignature::of(&spec.pattern, self.shared.sample_iters, threads);
        if let Err(job) = self.shared.queue.push(QueuedJob {
            spec,
            sig,
            sink,
            submitted_at: Instant::now(),
        }) {
            RuntimeStats::add(&self.shared.stats.completed, 1);
            job.sink.complete_inline(
                sig,
                JobResult {
                    output: empty_output(&job.spec.body),
                    scheme: Scheme::Seq,
                    elapsed: std::time::Duration::ZERO,
                    sim_cycles: None,
                    profile_hit: false,
                    batched_with: 0,
                    fused_with: 0,
                    error: Some(JobError::shutdown()),
                },
            );
        }
        sig
    }

    /// Submit and block for the result.
    pub fn run(&self, spec: JobSpec) -> JobResult {
        self.submit(spec).wait()
    }

    /// A shareable handle to the persistent worker pool, for callers that
    /// drive `run_scheme_on`/[`AdaptiveReduction`] directly.
    pub fn executor(&self) -> Arc<dyn SpmdExecutor> {
        self.shared.pool.clone()
    }

    /// An adaptive feedback-loop executor (inspect → decide → execute →
    /// monitor → adapt) whose scheme executions run on this runtime's
    /// worker pool instead of spawning threads per invocation, and whose
    /// first decision per functioning domain consults the profile store —
    /// so schemes learned by a previous process (persisted via
    /// [`persist_adaptive`](Runtime::persist_adaptive)) carry over.
    pub fn adaptive(&self, loop_id: u64, lw_feasible: bool) -> AdaptiveReduction {
        let mut adaptive =
            AdaptiveReduction::with_executor(loop_id, self.width(), lw_feasible, self.executor());
        let shared = self.shared.clone();
        adaptive.set_scheme_prior(move |domain| {
            shared
                .profile
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .get(PatternSignature::of_domain(loop_id, &domain))
                .map(|e| e.scheme)
                // The adaptive loop executes schemes through the software
                // library; a persisted hardware (pclr) prior falls back to
                // the analytic decision instead of an impossible dispatch.
                .filter(|s| s.is_software())
        });
        adaptive
    }

    /// Fold what an adaptive loop's `PerformanceDb` learned into the
    /// profile store, so it survives restarts alongside service profiles.
    pub fn persist_adaptive(&self, adaptive: &AdaptiveReduction) {
        self.shared
            .profile
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .absorb_performance_db(&adaptive.db);
    }

    /// Merge pre-learned profiles into the live store.
    pub fn seed_profile(&self, store: &ProfileStore) {
        self.shared
            .profile
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .merge(store);
    }

    /// A copy of the live profile store.
    pub fn profile_snapshot(&self) -> ProfileStore {
        self.shared
            .profile
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Service counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// The current correction factor the calibrator applies to `scheme`
    /// in `domain` (`1.0` while uncalibrated) — the live view of the
    /// measure→correct loop the stats counters summarize.
    pub fn correction(&self, scheme: Scheme, domain: DomainKey, fused: bool) -> f64 {
        self.shared.calibrator().correction(scheme, domain, fused)
    }

    /// Lift the quarantine (and forget the panic streak) of workload
    /// class `sig`.  Returns whether any ledger state existed — `true`
    /// also for a class that had panics recorded but was not yet blocked.
    /// The next job of the class executes normally and gets
    /// [`quarantine_after`](RuntimeConfig::quarantine_after) fresh
    /// chances.
    pub fn unquarantine(&self, sig: PatternSignature) -> bool {
        self.shared.quarantine_map().remove(&sig.0).is_some()
    }

    /// Signatures currently blocked by the poisoned-class quarantine.
    /// Expired TTLs are filtered at snapshot time: a class whose TTL
    /// lapsed disappears from this view immediately, even if nothing has
    /// been submitted for it since (the ledger entry itself still clears
    /// lazily on the class's next submission).
    pub fn quarantined_classes(&self) -> Vec<PatternSignature> {
        let now = Instant::now();
        self.shared
            .quarantine_map()
            .iter()
            .filter(|(_, h)| h.blocked_until.is_some_and(|until| until > now))
            .map(|(&sig, _)| PatternSignature(sig))
            .collect()
    }

    /// Signatures currently blocked by the poisoned-class quarantine with
    /// the whole seconds remaining until each TTL expires (0 for a TTL on
    /// the verge of expiry; already-expired entries are skipped).  Sorted
    /// by signature so wire responses built from it are deterministic.
    pub fn quarantined_with_ttl(&self) -> Vec<(PatternSignature, u64)> {
        let now = Instant::now();
        let mut out: Vec<(PatternSignature, u64)> = self
            .shared
            .quarantine_map()
            .iter()
            .filter_map(|(&sig, h)| {
                let until = h.blocked_until?;
                (until > now).then(|| (PatternSignature(sig), until.duration_since(now).as_secs()))
            })
            .collect();
        out.sort_by_key(|(sig, _)| sig.0);
        out
    }

    /// The runtime's telemetry bundle: latency histograms (also carrying
    /// any series the server layers on top) and the job-lifecycle trace
    /// ring.
    pub fn telemetry(&self) -> &RuntimeTelemetry {
        &self.shared.telemetry
    }

    /// The latest [`DecisionRecord`] for workload class `sig` — the
    /// uncollapsed "why" behind the class's scheme choice: feature
    /// vector, analytic-vs-corrected candidate cost table, feasibility
    /// masks, and the gate verdicts the dispatcher stamped as the batch
    /// moved through the pipeline.  `None` until a ranking has run for
    /// the class (profile fast-path hits reuse the stored decision
    /// without re-ranking, so the record may be older than the last
    /// job).
    pub fn explain(&self, sig: PatternSignature) -> Option<Arc<DecisionRecord>> {
        self.shared.telemetry.decision(sig.0)
    }

    /// The `n` slowest retained jobs across all workload classes,
    /// slowest first — each carrying its full lifecycle trace event
    /// (stage attribution) and the decision record in force when it
    /// completed (see [`RuntimeTelemetry`]'s exemplar store for the
    /// retention bounds).
    pub fn slowlog(&self, n: usize) -> Vec<Exemplar<SlowJob>> {
        self.shared.telemetry.slowlog(n)
    }

    /// The signature a pattern submitted at the default SPMD width would
    /// be queued under — lets a frontend resolve an uploaded pattern
    /// handle to the same workload-class key [`submit`](Runtime::submit)
    /// uses, e.g. to serve `explain pat:<handle>`.
    pub fn signature_of(&self, pattern: &smartapps_workloads::AccessPattern) -> PatternSignature {
        PatternSignature::of(pattern, self.shared.sample_iters, self.width())
    }

    /// The service's uploaded-pattern registry: intern a CSR structure
    /// once, reference it by handle in later submissions (see
    /// [`intern`](crate::intern)).
    pub fn patterns(&self) -> &PatternInterner {
        &self.shared.interner
    }

    /// The fitted PCLR cycle→nanosecond conversion, when the hardware
    /// backend is enabled: `(value, samples)`; 0 samples means the
    /// configured [`PclrConfig::cycle_ns`] assumption still stands.
    pub fn fitted_cycle_ns(&self) -> Option<(f64, u64)> {
        self.shared.pclr.as_ref().map(|b| {
            let fit = b.fitted_cycle_ns();
            (fit.ns_per_unit, fit.updates)
        })
    }

    /// Stop accepting new submissions without blocking: the queue closes
    /// immediately (racing submissions complete with
    /// [`JobErrorKind::Shutdown`](crate::JobErrorKind::Shutdown)) while
    /// the dispatchers keep draining everything already queued.  The
    /// eventual [`shutdown`](Runtime::shutdown) — or the drop — still
    /// joins the service threads and persists the profile store.
    /// Idempotent, callable from any thread holding `&Runtime`.
    pub fn begin_shutdown(&self) {
        self.shared.queue.close();
    }

    /// Stop accepting jobs, drain everything queued, persist profiles,
    /// and join all service threads.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        // Explicit shutdown() is followed by Drop; the emptied dispatcher
        // list marks the teardown (including the store save) as done.
        if self.dispatchers.is_empty() {
            return;
        }
        self.shared.queue.close();
        for d in self.dispatchers.drain(..) {
            let _ = d.join();
        }
        if let Some(path) = &self.shared.profile_path {
            let mut store = self
                .shared
                .profile
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            // Calibration rides along with the profiles: the learned
            // corrections (and the fitted cycle conversion) survive the
            // restart as `corr`/`cyc` records.
            store.set_calibration(self.shared.calibrator().export());
            if let Some(pclr) = &self.shared.pclr {
                let fit = pclr.fitted_cycle_ns();
                if fit.updates > 0 {
                    store.set_cycle_fit(fit);
                }
            }
            if let Err(e) = store.save(path) {
                eprintln!("smartapps-runtime: failed to save profile store: {e}");
            }
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn dispatcher_loop(shared: &Shared, id: usize) {
    let mut cache = InspectionCache::new(64);
    let mut scans = ScanCache::new(32);
    while let Some(pop) = shared.queue.pop_batch_for(id, shared.max_batch) {
        if pop.stolen {
            RuntimeStats::add(&shared.stats.steals, 1);
        }
        process_batch(shared, &mut cache, &mut scans, pop.jobs);
    }
}

/// Key for inspection reuse: (pattern allocation address, SPMD width).
type InspKey = (usize, usize);

/// A small FIFO cache of inspector analyses, living across batches in each
/// dispatcher, so a profiled `sel`/`lw` class does not pay a fresh
/// inspection on every invocation of the same pattern.  Shard affinity
/// keeps a workload class on one dispatcher, which is what keeps this
/// per-dispatcher cache warm.
///
/// Entries are validated through a [`Weak`] handle before reuse: a cache
/// key is the pattern's allocation address, and an address can be reused
/// after the original `Arc` dies, so an entry only hits when its stored
/// `Weak` still upgrades to *the same allocation* the job carries.
struct InspectionCache {
    entries: HashMap<InspKey, (Weak<smartapps_workloads::AccessPattern>, Inspection)>,
    order: VecDeque<InspKey>,
    cap: usize,
}

impl InspectionCache {
    fn new(cap: usize) -> Self {
        InspectionCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    /// A cached inspection for this exact pattern allocation, if one is
    /// already present — **without** paying a fresh inspector pass on a
    /// miss.  The calibration loop uses this on profile-hit executions:
    /// learning is worth a map lookup, not a full pattern walk (a
    /// restarted service keeps its zero-inspection steady state).
    fn peek(
        &self,
        pat: &Arc<smartapps_workloads::AccessPattern>,
        threads: usize,
    ) -> Option<Inspection> {
        let key: InspKey = (Arc::as_ptr(pat) as usize, threads);
        let (weak, insp) = self.entries.get(&key)?;
        weak.upgrade()
            .is_some_and(|live| Arc::ptr_eq(&live, pat))
            .then(|| insp.clone())
    }

    fn analyze(
        &mut self,
        pat: &Arc<smartapps_workloads::AccessPattern>,
        threads: usize,
        stats: &RuntimeStats,
    ) -> Inspection {
        let key: InspKey = (Arc::as_ptr(pat) as usize, threads);
        if let Some((weak, insp)) = self.entries.get(&key) {
            if weak.upgrade().is_some_and(|live| Arc::ptr_eq(&live, pat)) {
                return insp.clone();
            }
            self.entries.remove(&key);
            self.order.retain(|k| *k != key);
        }
        RuntimeStats::add(&stats.inspections, 1);
        let insp = Inspector::analyze(pat, threads);
        if self.order.len() >= self.cap {
            if let Some(old) = self.order.pop_front() {
                self.entries.remove(&old);
            }
        }
        self.order.push_back(key);
        self.entries
            .insert(key, (Arc::downgrade(pat), insp.clone()));
        insp
    }
}

/// A small FIFO cache of *positive* recognizer walks, per dispatcher —
/// the simplification pass's analogue of [`InspectionCache`].  A
/// recognized class floods the service with the same pattern allocation
/// over and over; caching the [`ScanMatch`] keeps the structural walk
/// (O(R)) off the steady-state path.  Entries are keyed by the pattern's
/// allocation address and validated through a [`Weak`] handle exactly
/// like the inspection cache, so a recycled address can never serve a
/// stale match.  Negative outcomes are *not* cached here — they are
/// persisted per signature in the [`ProfileStore`] (`simp` records) and
/// short-circuit before the walk.
struct ScanCache {
    entries: HashMap<usize, (Weak<smartapps_workloads::AccessPattern>, ScanMatch)>,
    order: VecDeque<usize>,
    cap: usize,
}

impl ScanCache {
    fn new(cap: usize) -> Self {
        ScanCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    fn lookup(&self, pat: &Arc<smartapps_workloads::AccessPattern>) -> Option<ScanMatch> {
        let key = Arc::as_ptr(pat) as usize;
        let (weak, m) = self.entries.get(&key)?;
        weak.upgrade()
            .is_some_and(|live| Arc::ptr_eq(&live, pat))
            .then_some(*m)
    }

    fn insert(&mut self, pat: &Arc<smartapps_workloads::AccessPattern>, m: ScanMatch) {
        let key = Arc::as_ptr(pat) as usize;
        if self.entries.contains_key(&key) {
            self.order.retain(|k| *k != key);
        } else if self.order.len() >= self.cap {
            if let Some(old) = self.order.pop_front() {
                self.entries.remove(&old);
            }
        }
        self.order.push_back(key);
        self.entries.insert(key, (Arc::downgrade(pat), m));
    }
}

/// Render a panic payload into a job error message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "job panicked".into())
}

/// The empty output matching a body's flavor (for failed jobs).
fn empty_output(body: &JobBody) -> JobOutput {
    match body {
        JobBody::F64(_) => JobOutput::F64(Vec::new()),
        JobBody::I64(_) => JobOutput::I64(Vec::new()),
    }
}

/// Per-batch bookkeeping shared by the per-job and fused execution paths.
struct BatchCtx {
    sig: PatternSignature,
    batched_with: usize,
    profile_hit: bool,
    profiled: Option<ProfileEntry>,
    /// When the dispatcher popped this batch and when its scheme decision
    /// landed — the `queued`/`decided` timestamps of every member's trace
    /// event.
    dequeued_at: Instant,
    decided_at: Instant,
    /// Once one job of the batch detects drift and evicts the entry, no
    /// later batch-mate may resurrect it (their measurements rode the same
    /// stale decision) and the logical eviction is counted once.
    evicted_this_batch: bool,
    /// The batch scheme is an exploration pick (runner-up executed to
    /// gather a calibration sample): feed the calibrator, never the
    /// profile store.
    explored: bool,
    /// Wall time the simplification gate spent on the current group
    /// before handing it back (recognizer walk, uniformity probe, an
    /// abandoned scan) — attributed to the group members' `simplify`
    /// stage instead of inflating `exec`.  Reset per group by
    /// [`try_simplify`]; 0 when the gate never ran.
    simplify_probe_ns: u64,
}

/// The outcome of [`decide_batch`]: which scheme the batch runs, and
/// whether the pick was an exploration sample or a calibration recheck
/// that evicted the profile entry.
struct BatchDecision {
    scheme: Scheme,
    explored: bool,
    rechecked: bool,
}

/// One scheme decision for a coalesced batch.
///
/// The fast path is unchanged from the uncalibrated service: a profile
/// hit runs the stored scheme with no inspection, a miss pays one
/// inspection and takes the (corrected) ranking's best.  Two
/// calibration-driven detours, both off by default
/// ([`CalibrationConfig`]):
///
/// * **Exploration** — every `explore_every`-th batch executes the
///   best-ranked feasible software scheme that still lacks measured
///   evidence in this functioning domain (never the scheme that would
///   run anyway), so corrections get the cross-scheme samples they need;
///   self-terminating once the domain is calibrated.
/// * **Recheck** — every `recheck_every`-th profile hit re-ranks under
///   the corrected model; when a measured-confident scheme now beats the
///   stored one, the entry is evicted (the caller records fresh truth) —
///   the paper's "Redecide" adaptation driven by calibration.
fn decide_batch(
    shared: &Shared,
    cache: &mut InspectionCache,
    first: &QueuedJob,
    profiled: Option<&ProfileEntry>,
    default_threads: usize,
) -> BatchDecision {
    let keep = |scheme: Scheme| BatchDecision {
        scheme,
        explored: false,
        rechecked: false,
    };
    let explore_now = shared.explore_every > 0 && {
        let n = shared.explore_ticks.fetch_add(1, Ordering::Relaxed);
        (n + 1).is_multiple_of(shared.explore_every as u64)
    };
    // Recheck cadence is per-entry (keyed on its recorded-run count):
    // interleaved classes recheck independently instead of aliasing
    // against a global counter.
    let recheck_now = shared.recheck_every > 0
        && profiled.is_some_and(|e| e.runs.is_multiple_of(shared.recheck_every as u64));
    if !explore_now && !recheck_now {
        if let Some(e) = profiled {
            return keep(e.scheme);
        }
    }
    let threads = first.spec.threads.unwrap_or(default_threads).max(1);
    let insp = cache.analyze(&first.spec.pattern, threads, &shared.stats);
    let domain = DomainKey::of(&insp.chars);
    let input = ModelInput::from_inspection(&insp, first.spec.lw_feasible)
        .with_pclr(shared.pclr_admits(&first.spec.pattern))
        .with_simd(shared.simd_admits(&insp.chars));
    let cal = shared.calibrator();
    let ranking = cal.rank(&input, domain);
    let decision = (|| {
        if explore_now {
            let would_run = profiled.map_or(ranking[0].0, |e| e.scheme);
            // Class-level confidence gates the slot: a scheme measured in
            // *other* domains still lacks samples here, and corrections do
            // not transfer across domains without them.
            let target = ranking.iter().find(|(s, c)| {
                c.is_finite()
                    && s.is_software()
                    && *s != would_run
                    && cal.class_confidence(*s, domain, false) < 0.5
            });
            if let Some(&(target, _)) = target {
                RuntimeStats::add(&shared.stats.explored, 1);
                return BatchDecision {
                    scheme: target,
                    explored: true,
                    rechecked: false,
                };
            }
        }
        match profiled {
            Some(e) => {
                let (best, best_cost) = ranking[0];
                let entry_cost = ranking
                    .iter()
                    .find(|(s, _)| *s == e.scheme)
                    .map_or(f64::INFINITY, |(_, c)| *c);
                if recheck_now
                    && best != e.scheme
                    && cal.evidence(best, domain, false)
                    && best_cost < RECHECK_MARGIN * entry_cost
                {
                    return BatchDecision {
                        scheme: best,
                        explored: false,
                        rechecked: true,
                    };
                }
                keep(e.scheme)
            }
            None => keep(ranking[0].0),
        }
    })();
    // Every fresh ranking leaves its uncollapsed provenance in the
    // ledger: the winner is the scheme the batch actually runs (which an
    // exploration slot or a kept profile entry may pull away from the
    // table's top row), and quarantine is stamped `clear` because a
    // blocked class would have failed fast before reaching the decision.
    let mut record = cal.explain(&input, domain);
    drop(cal);
    record.winner = decision.scheme;
    record.explored = decision.explored;
    record.rechecked = decision.rechecked;
    record.quarantine = GateVerdict::declined("clear");
    shared.telemetry.record_decision(first.sig.0, record);
    decision
}

/// A fusion decision for one fusable group: which scheme sweeps, in which
/// functioning domain, at what raw (uncorrected) predicted cost — the
/// calibration sample the sweep's measurement is compared against.
struct FusePlan {
    scheme: Scheme,
    domain: DomainKey,
    predicted_units: f64,
    /// The fanout-K model input the prediction was made from (kept for
    /// the post-sweep calibration sample).
    input: ModelInput,
}

/// The calibrated fusion gate.  A group of K ≥ 2 same-pattern jobs fuses
/// when the corrected fanout-K model picks `hash` (the analytically
/// validated regime of PR 2 — one table probe feeds all K outputs), **or**
/// when it picks another software scheme *and* measured fused-side
/// evidence backs that prediction and the corrected fused cost beats K
/// split traversals.  Declined groups occasionally run fused anyway as
/// probes (`CalibrationConfig::probe_fused_every`) so the fused side of
/// the `ll`/`rep` regimes can be measured at all.
fn plan_fusion(
    shared: &Shared,
    cache: &mut InspectionCache,
    group: &[QueuedJob],
    default_threads: usize,
) -> Option<FusePlan> {
    // Each branch stamps its verdict on the class's decision record
    // (`docs/OBSERVABILITY.md` lists the reason vocabulary).
    let verdict = |v: GateVerdict| {
        shared
            .telemetry
            .amend_decision(group[0].sig.0, move |r| r.fusion = v);
    };
    if group.len() < 2 {
        verdict(GateVerdict::declined("group-of-one"));
        return None;
    }
    let k = group.len();
    let threads = group[0].spec.threads.unwrap_or(default_threads).max(1);
    let insp = cache.analyze(&group[0].spec.pattern, threads, &shared.stats);
    let domain = DomainKey::of(&insp.chars);
    let input = ModelInput::from_inspection(&insp, group[0].spec.lw_feasible);
    let cal = shared.calibrator();
    let fused_rank = cal.rank_fused(&input, k, domain);
    let Some(&(scheme, fused_cost)) = fused_rank
        .iter()
        .find(|(s, c)| s.is_software() && c.is_finite())
    else {
        drop(cal);
        verdict(GateVerdict::declined("no-feasible-scheme"));
        return None;
    };
    let fused_input = input.clone().with_fanout(k);
    let predicted_units = cal.model.predict(scheme, &fused_input);
    let fuse_reason = if scheme == Scheme::Hash {
        Some("hash-trusted")
    } else {
        let split_best = cal
            .rank(&input, domain)
            .first()
            .map_or(f64::INFINITY, |r| r.1);
        (cal.fused_evidence(scheme, domain) && fused_cost < k as f64 * split_best)
            .then_some("measured-evidence")
    };
    drop(cal);
    if let Some(reason) = fuse_reason {
        verdict(GateVerdict::fired(reason));
        return Some(FusePlan {
            scheme,
            domain,
            predicted_units,
            input: fused_input,
        });
    }
    if shared.probe_fused_every > 0 {
        let n = shared.declined_fuses.fetch_add(1, Ordering::Relaxed);
        if (n + 1).is_multiple_of(shared.probe_fused_every as u64) {
            RuntimeStats::add(&shared.stats.fuse_probes, 1);
            verdict(GateVerdict::fired("probe"));
            return Some(FusePlan {
                scheme,
                domain,
                predicted_units,
                input: fused_input,
            });
        }
    }
    verdict(GateVerdict::declined("no-fused-evidence"));
    None
}

/// Partition a same-signature batch into fusable groups: members of one
/// group reduce over the *same* pattern allocation with the same element
/// flavor, SPMD width, `lw` feasibility, and uniform-body declaration,
/// so they can legally share one traversal (and one simplification
/// verdict).  Groups are capped at `max_fuse`; first-seen order is
/// preserved, so `batch[0]` leads the first group.
fn fuse_groups(
    batch: Vec<QueuedJob>,
    max_fuse: usize,
    default_threads: usize,
) -> Vec<Vec<QueuedJob>> {
    type FuseKey = (usize, bool, usize, bool, bool);
    let mut keyed: Vec<(FuseKey, Vec<QueuedJob>)> = Vec::new();
    for job in batch {
        let key: FuseKey = (
            Arc::as_ptr(&job.spec.pattern) as usize,
            matches!(job.spec.body, JobBody::F64(_)),
            job.spec.threads.unwrap_or(default_threads).max(1),
            job.spec.lw_feasible,
            job.spec.uniform_body,
        );
        match keyed.iter_mut().find(|(k, _)| *k == key) {
            Some((_, group)) => group.push(job),
            None => keyed.push((key, vec![job])),
        }
    }
    let cap = max_fuse.max(1);
    let mut groups = Vec::new();
    for (_, mut jobs) in keyed {
        while jobs.len() > cap {
            let rest = jobs.split_off(cap);
            groups.push(std::mem::replace(&mut jobs, rest));
        }
        groups.push(jobs);
    }
    groups
}

/// The pre-scheduling simplification pass, run per fusable group before
/// the fusion gate.  Returns `None` when the group executed through the
/// rewritten plan (outputs delivered, nothing left to do) and
/// `Some(group)` to pass it through to the normal fusion/per-job
/// pipeline untouched.
///
/// Eligibility is opt-in: only jobs *declaring* an iteration-uniform
/// body ([`JobSpec::with_uniform_body`]) are considered; everything
/// else bypasses the pass without touching its counters.  The pipeline:
///
/// 1. A persisted negative verdict (a `simp <sig> 0` record in the
///    profile store) short-circuits the structural walk — structurally
///    rejected classes stay rejected across restarts.  Positive or
///    absent verdicts never skip the walk: signatures can collide, so a
///    stale `1` may cost a wasted walk but can never mis-rewrite.
/// 2. The recognizer walks the CSR pattern (positive walks cached per
///    allocation in [`ScanCache`]); a match means every iteration's
///    references form one ascending contiguous run and the cost guard
///    accepted the original-vs-rewritten work ratio.
/// 3. The uniform-body declaration is probed ([`probe_uniform`],
///    defense in depth): sampled rows are evaluated across *all* their
///    slots; a refuted declaration loses the rewrite, never the answer.
/// 4. The whole group runs as K difference arrays over one row walk
///    plus one prefix scan per output ([`run_scan_group`]) under
///    `catch_unwind`; a panic falls back to the normal path, whose own
///    fences report it as the job's error.
///
/// A simplified execution reports [`Scheme::Seq`] (sequential
/// semantics, deterministic order), feeds the calibrator a sample
/// priced in *rewritten-plan* units, and never feeds the profile store:
/// the store holds scheme-sweep truth, and the rewritten plan is a
/// different operating point.
fn try_simplify(
    shared: &Shared,
    cache: &mut InspectionCache,
    scans: &mut ScanCache,
    ctx: &mut BatchCtx,
    group: Vec<QueuedJob>,
) -> Option<Vec<QueuedJob>> {
    // Time this gate spends before handing the group back (recognizer
    // walk, uniformity probe, an abandoned scan) is charged to the
    // group's `simplify` stage, not buried in `exec`.
    ctx.simplify_probe_ns = 0;
    if !shared.simplify || !group[0].spec.uniform_body {
        return Some(group);
    }
    let sig = ctx.sig;
    let verdict = move |v: GateVerdict| {
        shared
            .telemetry
            .amend_decision(sig.0, move |r| r.simplify = v);
    };
    let k = group.len();
    let reject = |n: usize| RuntimeStats::add(&shared.stats.simplify_rejects, n as u64);
    {
        let store = shared.profile.lock().unwrap_or_else(|p| p.into_inner());
        if store.scan_verdict(ctx.sig) == Some(false) {
            drop(store);
            verdict(GateVerdict::declined("persisted-negative"));
            reject(k);
            return Some(group);
        }
    }
    let gate_t0 = Instant::now();
    let pat = group[0].spec.pattern.clone();
    let m = match scans.lookup(&pat) {
        Some(m) => m,
        None => match recognize(&pat, &CostGuard::default()) {
            Ok(m) => {
                scans.insert(&pat, m);
                shared
                    .profile
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .set_scan_verdict(ctx.sig, true);
                m
            }
            Err(_) => {
                // Every `Reject` variant is structural (pattern-only),
                // so the verdict is safe to persist per signature.
                shared
                    .profile
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .set_scan_verdict(ctx.sig, false);
                ctx.simplify_probe_ns = gate_t0.elapsed().as_nanos() as u64;
                verdict(GateVerdict::declined("recognizer-miss"));
                reject(k);
                return Some(group);
            }
        },
    };
    let recognize_ns = gate_t0.elapsed().as_nanos() as u64;
    let t0 = Instant::now();
    let work =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &group[0].spec.body {
            JobBody::F64(_) => {
                let bodies: Vec<FusedBody<'_, f64>> = group
                    .iter()
                    .map(|j| match &j.spec.body {
                        JobBody::F64(f) => &**f as FusedBody<'_, f64>,
                        JobBody::I64(_) => unreachable!("fuse group mixes flavors"),
                    })
                    .collect();
                let probe_t0 = Instant::now();
                if bodies.iter().any(|b| !probe_uniform(&pat, *b)) {
                    return None;
                }
                let probe_ns = probe_t0.elapsed().as_nanos() as u64;
                Some((
                    run_scan_group(&pat, &bodies)
                        .into_iter()
                        .map(JobOutput::F64)
                        .collect::<Vec<_>>(),
                    probe_ns,
                ))
            }
            JobBody::I64(_) => {
                let bodies: Vec<FusedBody<'_, i64>> = group
                    .iter()
                    .map(|j| match &j.spec.body {
                        JobBody::I64(f) => &**f as FusedBody<'_, i64>,
                        JobBody::F64(_) => unreachable!("fuse group mixes flavors"),
                    })
                    .collect();
                let probe_t0 = Instant::now();
                if bodies.iter().any(|b| !probe_uniform(&pat, *b)) {
                    return None;
                }
                let probe_ns = probe_t0.elapsed().as_nanos() as u64;
                Some((
                    run_scan_group(&pat, &bodies)
                        .into_iter()
                        .map(JobOutput::I64)
                        .collect::<Vec<_>>(),
                    probe_ns,
                ))
            }
        }));
    let elapsed = t0.elapsed();
    let executed_at = Instant::now();
    // A panicking body — or one refuting its uniformity declaration —
    // loses the rewrite, never the answer: the group re-runs through
    // the normal path, whose own catch_unwind reports any panic as the
    // job's error.  Body-specific outcomes are never persisted (only
    // structural walks are).
    let (outputs, probe_ns) = match work {
        Err(_) => {
            ctx.simplify_probe_ns = recognize_ns + elapsed.as_nanos() as u64;
            verdict(GateVerdict::declined("panicked"));
            reject(k);
            return Some(group);
        }
        Ok(None) => {
            ctx.simplify_probe_ns = recognize_ns + elapsed.as_nanos() as u64;
            verdict(GateVerdict::declined("probe-refuted"));
            reject(k);
            return Some(group);
        }
        Ok(Some(out)) => out,
    };
    debug_assert_eq!(outputs.len(), k);
    RuntimeStats::add(&shared.stats.simplified_jobs, k as u64);
    shared
        .telemetry
        .record_simplify(m.shape.label(), elapsed.as_nanos() as u64);
    // Calibrator sample priced against the *rewritten* plan (one
    // difference-array post per iteration plus one scan, per member) —
    // learning never pays a fresh inspection, mirroring the per-job
    // path.
    let threads = group[0].spec.threads.unwrap_or(shared.pool.width()).max(1);
    if let Some(insp) = cache.peek(&pat, threads) {
        let domain = DomainKey::of(&insp.chars);
        let input = ModelInput::from_inspection(&insp, group[0].spec.lw_feasible);
        shared.learn(
            Scheme::Seq,
            domain,
            false,
            Some((m.rewritten_ops * k) as f64),
            &input,
            elapsed,
        );
    }
    // A clean scan means every body in the group ran clean.
    shared.note_clean(ctx.sig);
    // Provenance: the gate fired under the recognized shape, and the
    // scan backend (not any scheme sweep) ran the group.  The recognizer
    // walk plus the uniformity probe is the `simplify` stage; the scan
    // itself stays in `exec`.
    shared.telemetry.amend_decision(ctx.sig.0, |r| {
        r.simplify = GateVerdict::fired(m.shape.label());
        r.backend = "scan";
    });
    let simplify_ns = recognize_ns + probe_ns;
    for (job, output) in group.into_iter().zip(outputs) {
        RuntimeStats::add(&shared.stats.completed, 1);
        let tel = &shared.telemetry;
        let record = tel.decision(job.sig.0);
        tel.record_lifecycle(
            &TraceEvent {
                signature: job.sig.0,
                submitted_ns: tel.instant_ns(job.submitted_at),
                queued_ns: tel.instant_ns(ctx.dequeued_at),
                decided_ns: tel.instant_ns(ctx.decided_at),
                executed_ns: tel.instant_ns(executed_at),
                completed_ns: tel.now_ns(),
                scheme: scheme_code(Scheme::Seq),
                backend: TraceBackend::Scan,
                error: TraceError::None,
                fused: k.min(u16::MAX as usize) as u16,
                simplify_ns,
            },
            record,
        );
        job.sink.complete(
            job.sig,
            JobResult {
                output,
                scheme: Scheme::Seq,
                elapsed,
                sim_cycles: None,
                // The rewrite came from the recognizer, not the store.
                profile_hit: false,
                batched_with: ctx.batched_with,
                fused_with: k - 1,
                error: None,
            },
        );
    }
    None
}

fn process_batch(
    shared: &Shared,
    cache: &mut InspectionCache,
    scans: &mut ScanCache,
    batch: Vec<QueuedJob>,
) {
    let sig = batch[0].sig;
    let dequeued_at = Instant::now();
    let batched_with = batch.len() - 1;
    RuntimeStats::add(&shared.stats.batches, 1);
    RuntimeStats::add(&shared.stats.coalesced, batched_with as u64);

    // Poisoned-class quarantine: a class whose bodies panicked
    // `quarantine_after` times in a row fails fast — no inspection, no
    // decision, no worker sweep — until unquarantined or TTL-expired.
    if let Some(count) = shared.quarantine_blocked(sig) {
        for job in batch {
            RuntimeStats::add(&shared.stats.quarantined, 1);
            RuntimeStats::add(&shared.stats.completed, 1);
            trace_unexecuted(shared, &job, dequeued_at, TraceError::Quarantined);
            job.sink.complete(
                sig,
                JobResult {
                    output: empty_output(&job.spec.body),
                    scheme: Scheme::Seq,
                    elapsed: std::time::Duration::ZERO,
                    sim_cycles: None,
                    profile_hit: false,
                    batched_with,
                    fused_with: 0,
                    error: Some(JobError::quarantined(count)),
                },
            );
        }
        return;
    }

    // One scheme decision per batch: profile hit, or inspect + model.
    let profiled = shared
        .profile
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .get(sig)
        .cloned();
    let profile_hit = profiled.is_some();
    if profile_hit {
        RuntimeStats::add(&shared.stats.profile_hits, 1);
    }

    let default_threads = shared.pool.width();
    let groups = fuse_groups(batch, shared.max_fuse, default_threads);

    // Nothing job-derived may unwind the dispatcher (that would hang every
    // pending handle): the decision — which may run the inspector over an
    // arbitrary client pattern — is fenced just like execution below.
    let batch_scheme = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        decide_batch(
            shared,
            cache,
            &groups[0][0],
            profiled.as_ref(),
            default_threads,
        )
    }));
    let decided_at = Instant::now();
    let decision = match batch_scheme {
        Ok(s) => s,
        Err(payload) => {
            // The whole batch shares the poisoned decision input; fail it
            // (one poisoned decision = one strike against the class).
            shared.note_panic(sig);
            let msg = format!("scheme decision panicked: {}", panic_message(&*payload));
            for job in groups.into_iter().flatten() {
                RuntimeStats::add(&shared.stats.completed, 1);
                trace_unexecuted(shared, &job, dequeued_at, TraceError::Panicked);
                job.sink.complete(
                    sig,
                    JobResult {
                        output: empty_output(&job.spec.body),
                        scheme: Scheme::Seq,
                        elapsed: std::time::Duration::ZERO,
                        sim_cycles: None,
                        profile_hit: false,
                        batched_with,
                        fused_with: 0,
                        error: Some(JobError::panic(msg.clone())),
                    },
                );
            }
            return;
        }
    };

    // The decision latency belongs to the scheme it picked; every member
    // waited from its own submission until this pop.
    let tel = &shared.telemetry;
    tel.record_decide(
        decision.scheme,
        decided_at.duration_since(dequeued_at).as_nanos() as u64,
    );
    for job in groups.iter().flatten() {
        tel.record_queue_wait(
            decision.scheme,
            dequeued_at
                .saturating_duration_since(job.submitted_at)
                .as_nanos() as u64,
        );
    }

    let mut ctx = BatchCtx {
        sig,
        batched_with,
        dequeued_at,
        decided_at,
        // A recheck that evicted the entry turns this batch back into a
        // model decision (its executions record fresh profile truth);
        // an exploration pick likewise did not come from the store, so
        // neither may report `profile_hit` to clients.
        profile_hit: profile_hit && !decision.rechecked && !decision.explored,
        profiled: if decision.rechecked || decision.explored {
            None
        } else {
            profiled
        },
        evicted_this_batch: false,
        explored: decision.explored,
        simplify_probe_ns: 0,
    };
    if decision.rechecked {
        let mut store = shared.profile.lock().unwrap_or_else(|p| p.into_inner());
        store.evict(sig);
        RuntimeStats::add(&shared.stats.evictions, 1);
    }
    let batch_scheme = decision.scheme;
    for group in groups {
        // Simplification pass (see `try_simplify`): a declared-uniform
        // group whose pattern is a recognized scan/window family runs the
        // rewritten difference-array plan instead of any scheme sweep.
        let group = match try_simplify(shared, cache, scans, &mut ctx, group) {
            None => continue,
            Some(group) => group,
        };
        // Fusion gate (see `plan_fusion`): calibrated fused-vs-split
        // comparison, `hash` analytically trusted, other schemes only on
        // measured fused-side evidence, occasional probes when declined.
        let plan = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan_fusion(shared, cache, &group, default_threads)
        }))
        .ok()
        .flatten();
        match plan {
            Some(plan) => execute_fused(shared, cache, &mut ctx, batch_scheme, group, &plan),
            None => {
                for job in group {
                    execute_single(shared, cache, &mut ctx, batch_scheme, job);
                }
            }
        }
    }
}

/// Trace a job that failed fast before any scheme ran (quarantine
/// rejection, poisoned decision): the lifecycle stops at `queued`, the
/// scheme tag is the "none chosen" code, and the error tag says why.
fn trace_unexecuted(shared: &Shared, job: &QueuedJob, dequeued_at: Instant, error: TraceError) {
    let tel = &shared.telemetry;
    if error == TraceError::Quarantined {
        tel.amend_decision(job.sig.0, |r| {
            r.quarantine = GateVerdict::fired("panic-streak");
        });
    }
    tel.record_lifecycle(
        &TraceEvent {
            signature: job.sig.0,
            submitted_ns: tel.instant_ns(job.submitted_at),
            queued_ns: tel.instant_ns(dequeued_at),
            decided_ns: 0,
            executed_ns: 0,
            completed_ns: tel.now_ns(),
            scheme: u8::MAX,
            backend: TraceBackend::Software,
            error,
            fused: 0,
            simplify_ns: 0,
        },
        tel.decision(job.sig.0),
    );
}

/// Execute one job on its own traversal (the non-fused path), routing it
/// to the scalar software backend, the vectorized SIMD backend (for
/// [`Scheme::Simd`] decisions), or — for [`Scheme::Pclr`] decisions —
/// the simulated hardware backend.
fn execute_single(
    shared: &Shared,
    cache: &mut InspectionCache,
    ctx: &mut BatchCtx,
    batch_scheme: Scheme,
    job: QueuedJob,
) {
    // The quarantine is re-checked per job, not only per batch: a class
    // can cross the panic threshold *mid-batch* (or in a batch racing on
    // a stolen shard), and every job dispatched after that must fail
    // fast rather than re-run a body the ledger already condemned.
    if let Some(count) = shared.quarantine_blocked(job.sig) {
        RuntimeStats::add(&shared.stats.quarantined, 1);
        RuntimeStats::add(&shared.stats.completed, 1);
        trace_unexecuted(shared, &job, ctx.dequeued_at, TraceError::Quarantined);
        job.sink.complete(
            job.sig,
            JobResult {
                output: empty_output(&job.spec.body),
                scheme: Scheme::Seq,
                elapsed: Duration::ZERO,
                sim_cycles: None,
                profile_hit: false,
                batched_with: ctx.batched_with,
                fused_with: 0,
                error: Some(JobError::quarantined(count)),
            },
        );
        return;
    }
    let threads = job.spec.threads.unwrap_or(shared.pool.width()).max(1);
    // A batch-mate (or stale profile) may have chosen a scheme this job
    // cannot run: owner-computes where it is illegal, or the hardware
    // scheme with the backend disabled or the job over its admission
    // cap.  Such jobs re-decide with the offending scheme masked off.
    let masked_lw = batch_scheme == Scheme::Lw && !job.spec.lw_feasible;
    let masked_pclr = batch_scheme == Scheme::Pclr && !shared.pclr_admits(&job.spec.pattern);
    let masked_simd = batch_scheme == Scheme::Simd && shared.simd.is_none();

    // A *persisted* decision this service cannot execute (a hardware
    // entry with the backend disabled, or a `simd` entry on a
    // scalar-only service) is dead weight: re-decided executions never
    // feed the store, so the entry would mask (and re-run the model)
    // forever.  Evict it — the next batch misses the profile and
    // records an executable scheme.
    if (masked_pclr || masked_simd) && ctx.profile_hit && !ctx.evicted_this_batch {
        let mut store = shared.profile.lock().unwrap_or_else(|p| p.into_inner());
        store.evict(ctx.sig);
        RuntimeStats::add(&shared.stats.evictions, 1);
        ctx.evicted_this_batch = true;
    }

    // A panicking user body (or an inspector tripping over a malformed
    // pattern) must not take the dispatcher down with it; the panic
    // becomes the job's error and the service keeps draining.
    let work = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let redecided = masked_lw || masked_pclr || masked_simd;
        let scheme = if redecided {
            let insp = cache.analyze(&job.spec.pattern, threads, &shared.stats);
            let domain = DomainKey::of(&insp.chars);
            let input = ModelInput::from_inspection(&insp, !masked_lw && job.spec.lw_feasible)
                .with_pclr(!masked_pclr && shared.pclr_admits(&job.spec.pattern))
                .with_simd(!masked_simd && shared.simd_admits(&insp.chars));
            let cal = shared.calibrator();
            let scheme = cal.rank(&input, domain)[0].0;
            // A re-decide under a feasibility mask is a real ranking: it
            // replaces the class's ledger record (whose candidate table
            // shows the offending scheme as infeasible).
            let mut record = cal.explain(&input, domain);
            drop(cal);
            record.winner = scheme;
            record.quarantine = GateVerdict::declined("clear");
            shared.telemetry.record_decision(job.sig.0, record);
            scheme
        } else {
            batch_scheme
        };
        let insp = matches!(scheme, Scheme::Sel | Scheme::Lw)
            .then(|| cache.analyze(&job.spec.pattern, threads, &shared.stats));
        let req = ExecRequest {
            pattern: &job.spec.pattern,
            body: &job.spec.body,
            threads,
            scheme,
            inspection: insp.as_ref(),
        };
        let backend: &dyn Backend = match (scheme, &shared.pclr, &shared.simd) {
            (Scheme::Pclr, Some(pclr), _) => pclr,
            (Scheme::Simd, _, Some(simd)) => simd,
            _ => &shared.software,
        };
        debug_assert!(backend.supports(scheme), "{} vs {scheme}", backend.name());
        let backend_t0 = Instant::now();
        let outcome = backend.execute(&req);
        (
            outcome,
            scheme,
            redecided,
            backend_t0.elapsed(),
            backend.name(),
        )
    }));
    let executed_at = Instant::now();

    let (outcome, scheme, redecided, backend_wall, backend_name, error) = match work {
        Ok((outcome, scheme, redecided, wall, name)) => {
            (Some(outcome), scheme, redecided, wall, name, None)
        }
        Err(payload) => (
            None,
            batch_scheme,
            false,
            Duration::ZERO,
            "software",
            Some(JobError::panic(panic_message(&*payload))),
        ),
    };
    // The cost sample the profile calibrates on: backend-reported
    // (simulated time for pclr, wall time otherwise).
    let elapsed = outcome.as_ref().map_or(Duration::ZERO, |o| o.cost);
    let sim_cycles = outcome.as_ref().and_then(|o| o.sim_cycles);
    let output = match outcome {
        Some(o) => o.output,
        None => empty_output(&job.spec.body),
    };
    if let Some(cycles) = sim_cycles {
        RuntimeStats::add(&shared.stats.pclr_offloads, 1);
        RuntimeStats::add(&shared.stats.sim_cycles, cycles);
    }
    if error.is_none() && scheme == Scheme::Simd {
        RuntimeStats::add(&shared.stats.simd_offloads, 1);
    }

    // Quarantine ledger: a panicking body extends the class's streak; a
    // clean execution wipes it.
    match &error {
        Some(e) if e.kind == crate::JobErrorKind::Panic => shared.note_panic(ctx.sig),
        Some(_) => {}
        None => shared.note_clean(ctx.sig),
    }

    // Close the measure→correct loop: every clean execution whose
    // characterization is at hand (already cached — learning never pays a
    // fresh inspection) reports a predicted-vs-measured sample to the
    // calibrator, and software/simulated cost halves pair up to fit the
    // PCLR cycle→ns conversion.
    let mut class_label = None;
    if error.is_none() {
        if let Some(insp) = cache.peek(&job.spec.pattern, threads) {
            let domain = DomainKey::of(&insp.chars);
            class_label = Some(domain_label(&domain));
            let input = ModelInput::from_inspection(&insp, job.spec.lw_feasible)
                .with_pclr(scheme == Scheme::Pclr || shared.pclr_admits(&job.spec.pattern))
                .with_simd(scheme == Scheme::Simd || shared.simd_admits(&insp.chars));
            shared.learn(scheme, domain, false, None, &input, elapsed);
        }
        shared.pair_cycle_sample(
            ctx.sig,
            job.spec.pattern.num_references(),
            elapsed.as_nanos() as f64,
            sim_cycles,
        );
        shared
            .telemetry
            .record_exec(scheme, class_label.as_deref(), elapsed.as_nanos() as u64);
        shared
            .telemetry
            .record_backend(backend_name, backend_wall.as_nanos() as u64, sim_cycles);
    }

    // Feed the profile only from clean, non-substituted, non-exploration
    // executions (an exploration pick is a calibration sample, not the
    // class's best-known scheme).
    if error.is_none() && !redecided && !ctx.explored {
        let refs = job.spec.pattern.num_references();
        let mut store = shared.profile.lock().unwrap_or_else(|p| p.into_inner());
        // Phase-change guard: a profiled class now running far slower
        // than its calibration predicts is suspect.  A suspect sample is
        // never recorded (keeping the calibration EMA clean), but a
        // single one is treated as timing noise — only
        // DRIFT_EVICT_STRIKES *consecutive* over-ratio samples read as a
        // phase change, evicting the entry so the next batch misses the
        // profile and re-inspects instead of trusting stale history.
        let suspect = !ctx.evicted_this_batch
            && ctx.profiled.as_ref().is_some_and(|entry| {
                entry.runs >= DRIFT_MIN_RUNS
                    && elapsed.as_secs_f64() > DRIFT_EVICT_RATIO * entry.predict(refs).as_secs_f64()
            });
        if suspect {
            if store.drift_strike(ctx.sig) >= DRIFT_EVICT_STRIKES {
                store.evict(ctx.sig);
                RuntimeStats::add(&shared.stats.evictions, 1);
                ctx.evicted_this_batch = true;
            }
        } else if !ctx.evicted_this_batch {
            store.clear_drift(ctx.sig);
            store.record(ctx.sig, scheme, threads, refs, elapsed);
        }
    }

    let tel = &shared.telemetry;
    tel.amend_decision(job.sig.0, |r| r.backend = backend_name);
    tel.record_lifecycle(
        &TraceEvent {
            signature: job.sig.0,
            submitted_ns: tel.instant_ns(job.submitted_at),
            queued_ns: tel.instant_ns(ctx.dequeued_at),
            decided_ns: tel.instant_ns(ctx.decided_at),
            executed_ns: tel.instant_ns(executed_at),
            completed_ns: tel.now_ns(),
            scheme: scheme_code(scheme),
            // Tagged from the backend that actually ran the job, so simd
            // executions are distinguishable from software in ring dumps.
            backend: match backend_name {
                "pclr" => TraceBackend::Pclr,
                "simd" => TraceBackend::Simd,
                _ => TraceBackend::Software,
            },
            error: if error.is_some() {
                TraceError::Panicked
            } else {
                TraceError::None
            },
            fused: 1,
            simplify_ns: ctx.simplify_probe_ns,
        },
        tel.decision(job.sig.0),
    );

    // Bump counters before waking the sink so a client that reads
    // stats right after `wait()` never sees its own job missing.
    RuntimeStats::add(&shared.stats.completed, 1);
    job.sink.complete(
        job.sig,
        JobResult {
            output,
            scheme,
            elapsed,
            sim_cycles,
            // This job's decision came from the store only if it was not
            // re-decided under a feasibility mask.
            profile_hit: ctx.profile_hit && !redecided,
            batched_with: ctx.batched_with,
            fused_with: 0,
            error,
        },
    );
}

/// Execute a fusable group (same pattern, flavor, width, `lw` mask) as one
/// fused sweep: one traversal of the pattern accumulating every member's
/// output through stride-K private storage — the gate in [`plan_fusion`]
/// picked the sweeping scheme (the analytically validated `hash`, or
/// another software scheme backed by measured fused-side evidence, or a
/// calibration probe).  The sweep feeds the *calibrator* (a fused
/// predicted-vs-measured sample) but not the profile store: the store
/// holds single-job truth, and a fanout-K decision belongs to a different
/// operating point.  If any body panics the sweep is abandoned and the
/// group falls back to isolated per-job execution, so a poisoned body
/// fails alone instead of taking its group-mates' results with it.
fn execute_fused(
    shared: &Shared,
    cache: &mut InspectionCache,
    ctx: &mut BatchCtx,
    batch_scheme: Scheme,
    group: Vec<QueuedJob>,
    plan: &FusePlan,
) {
    let k = group.len();
    let threads = group[0].spec.threads.unwrap_or(shared.pool.width()).max(1);
    let pat = group[0].spec.pattern.clone();
    let pool: &WorkerPool = &shared.pool;
    let scheme = plan.scheme;
    let t0 = Instant::now();
    let work = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // `sel`/`lw` sweeps need the inspector's analysis; it is already
        // cached from the gate's own pass.
        let insp = matches!(scheme, Scheme::Sel | Scheme::Lw)
            .then(|| cache.analyze(&pat, threads, &shared.stats));
        let outputs: Vec<JobOutput> = match &group[0].spec.body {
            JobBody::F64(_) => {
                let bodies: Vec<FusedBody<'_, f64>> = group
                    .iter()
                    .map(|j| match &j.spec.body {
                        JobBody::F64(f) => &**f as FusedBody<'_, f64>,
                        JobBody::I64(_) => unreachable!("fuse group mixes flavors"),
                    })
                    .collect();
                run_fused_on(scheme, &pat, &bodies, threads, insp.as_ref(), pool)
                    .into_iter()
                    .map(JobOutput::F64)
                    .collect()
            }
            JobBody::I64(_) => {
                let bodies: Vec<FusedBody<'_, i64>> = group
                    .iter()
                    .map(|j| match &j.spec.body {
                        JobBody::I64(f) => &**f as FusedBody<'_, i64>,
                        JobBody::F64(_) => unreachable!("fuse group mixes flavors"),
                    })
                    .collect();
                run_fused_on(scheme, &pat, &bodies, threads, insp.as_ref(), pool)
                    .into_iter()
                    .map(JobOutput::I64)
                    .collect()
            }
        };
        outputs
    }));
    let elapsed = t0.elapsed();
    let executed_at = Instant::now();

    match work {
        Ok(outputs) => {
            debug_assert_eq!(outputs.len(), k, "fused sweep lost outputs");
            RuntimeStats::add(&shared.stats.fused_sweeps, 1);
            // One sweep = one execution sample (the sweep's wall time,
            // under the class of the gate's own characterization).
            shared.telemetry.record_exec(
                scheme,
                Some(&domain_label(&plan.domain)),
                elapsed.as_nanos() as u64,
            );
            // The fused-side calibration sample: what the fusion gate's
            // fused-vs-split comparison learns from.
            shared.learn(
                scheme,
                plan.domain,
                true,
                Some(plan.predicted_units),
                &plan.input,
                elapsed,
            );
            // A clean sweep means every body in the group ran clean.
            shared.note_clean(ctx.sig);
            shared
                .telemetry
                .amend_decision(ctx.sig.0, |r| r.backend = "software");
            for (job, output) in group.into_iter().zip(outputs) {
                // Counted per *completed* member, not `+= k` up front:
                // the isolation fallback below re-runs members through
                // `execute_single` (which never touches fused counters),
                // so `fused_jobs` is exactly the jobs whose result
                // reports `fused_with > 0` — a sweep abandoned by a
                // panic contributes nothing.
                RuntimeStats::add(&shared.stats.fused_jobs, 1);
                RuntimeStats::add(&shared.stats.completed, 1);
                let tel = &shared.telemetry;
                tel.record_lifecycle(
                    &TraceEvent {
                        signature: job.sig.0,
                        submitted_ns: tel.instant_ns(job.submitted_at),
                        queued_ns: tel.instant_ns(ctx.dequeued_at),
                        decided_ns: tel.instant_ns(ctx.decided_at),
                        executed_ns: tel.instant_ns(executed_at),
                        completed_ns: tel.now_ns(),
                        scheme: scheme_code(scheme),
                        backend: TraceBackend::Software,
                        error: TraceError::None,
                        fused: k.min(u16::MAX as usize) as u16,
                        simplify_ns: ctx.simplify_probe_ns,
                    },
                    tel.decision(job.sig.0),
                );
                job.sink.complete(
                    job.sig,
                    JobResult {
                        output,
                        scheme,
                        elapsed,
                        sim_cycles: None,
                        // The fused scheme came from the fanout-aware model,
                        // not the store.
                        profile_hit: false,
                        batched_with: ctx.batched_with,
                        fused_with: k - 1,
                        error: None,
                    },
                );
            }
        }
        Err(_) => {
            // Isolation fallback: re-run each member alone (behind the
            // batch's own per-job decision) so only the panicking body
            // reports an error.
            for job in group {
                execute_single(shared, cache, ctx, batch_scheme, job);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::JobErrorKind;
    use smartapps_workloads::pattern::{sequential_reduce, sequential_reduce_i64};
    use smartapps_workloads::{contribution, contribution_i64, Distribution, PatternSpec};
    use std::time::Duration;

    fn pattern(seed: u64) -> Arc<smartapps_workloads::AccessPattern> {
        Arc::new(
            PatternSpec {
                num_elements: 1500,
                iterations: 3000,
                refs_per_iter: 2,
                coverage: 0.8,
                dist: Distribution::Uniform,
                seed,
            }
            .generate(),
        )
    }

    #[test]
    fn single_job_matches_oracles() {
        let rt = Runtime::with_workers(3);
        let pat = pattern(1);
        let f = rt.run(JobSpec::f64(pat.clone(), |_i, r| contribution(r)));
        let oracle = sequential_reduce(&pat);
        for (a, b) in oracle.iter().zip(f.output.as_f64().unwrap()) {
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
        }
        let i = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert_eq!(i.output.as_i64().unwrap(), sequential_reduce_i64(&pat));
        let stats = rt.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn second_submission_hits_the_profile() {
        let rt = Runtime::with_workers(2);
        let pat = pattern(3);
        let first = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert!(!first.profile_hit, "first sighting must inspect");
        let second = rt.run(JobSpec::i64(pat, |_i, r| contribution_i64(r)));
        assert!(second.profile_hit, "same class must reuse the decision");
        assert_eq!(second.scheme, first.scheme);
        let stats = rt.stats();
        assert_eq!(stats.profile_hits, 1);
        assert!(stats.inspections >= 1);
    }

    #[test]
    fn explain_serves_the_decision_ledger_and_slowlog_attributes_stages() {
        let rt = Runtime::with_workers(2);
        let pat = pattern(21);
        let handle = rt.submit(JobSpec::f64(pat.clone(), |_i, r| contribution(r)));
        let sig = handle.signature();
        let done = handle.wait();
        assert!(done.error.is_none());
        let rec = rt.explain(sig).expect("first sighting ranks and records");
        assert_eq!(rec.signature, sig.0);
        assert_eq!(
            rec.winner, done.scheme,
            "record must match the executed scheme"
        );
        assert_eq!(rec.candidates.len(), 7, "every scheme priced");
        assert!(rec
            .candidates
            .iter()
            .any(|c| c.scheme == done.scheme && c.feasible));
        assert_eq!(rec.backend, "software");
        assert_eq!(rec.quarantine, GateVerdict::declined("clear"));
        assert!(rt.explain(PatternSignature(0xdead_beef)).is_none());
        // The job landed in the slowlog with a stage breakdown that sums
        // exactly to its end-to-end latency, plus the decision record in
        // force when it completed.
        let slow = rt.slowlog(8);
        let ex = slow
            .iter()
            .find(|e| e.class == sig.0)
            .expect("completed job retained as exemplar");
        let ev = &ex.payload.event;
        assert!(ev.executed_ns > 0);
        assert_eq!(
            ev.stage_queue()
                + ev.stage_decide()
                + ev.stage_simplify()
                + ev.stage_exec()
                + ev.stage_completion(),
            ev.end_to_end()
        );
        assert_eq!(ex.payload.record.as_ref().unwrap().winner, done.scheme);
    }

    #[test]
    fn batch_submission_coalesces() {
        let rt = Runtime::with_workers(2);
        let pat = pattern(5);
        // Make the dispatcher see them together: submit before it can
        // drain (it is busy with the first big job).
        let specs: Vec<JobSpec> = (0..12)
            .map(|_| JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)))
            .collect();
        let handles = rt.submit_batch(specs);
        let oracle = sequential_reduce_i64(&pat);
        let mut coalesced_any = false;
        for h in handles {
            let r = h.wait();
            assert_eq!(r.output.as_i64().unwrap(), oracle);
            coalesced_any |= r.batched_with > 0;
        }
        let stats = rt.stats();
        assert_eq!(stats.completed, 12);
        // Not guaranteed timing-wise, but with 12 identical jobs against
        // one dispatcher at least some batching is effectively certain.
        if coalesced_any {
            assert!(stats.coalesced > 0);
        }
    }

    /// A class sparse enough that the fanout-aware model sends fused
    /// groups (K >= 5, any width) to the hash kernel.
    fn sparse_pattern(seed: u64) -> Arc<smartapps_workloads::AccessPattern> {
        Arc::new(
            PatternSpec {
                num_elements: 400_000,
                iterations: 4_000,
                refs_per_iter: 12,
                coverage: 0.004,
                dist: Distribution::Uniform,
                seed,
            }
            .generate(),
        )
    }

    #[test]
    fn fused_group_outputs_match_per_body_oracles() {
        // One dispatcher, deterministic fusing: occupy it with a large
        // warm-up job, then queue K same-pattern sparse jobs with K
        // different bodies — they must coalesce into one batch and pass
        // the fusion gate (sparse + fanout => hash) as one sweep.
        let rt = Runtime::new(RuntimeConfig {
            workers: 3,
            dispatchers: 1,
            max_batch: 32,
            max_fuse: 8,
            ..RuntimeConfig::default()
        });
        let big = Arc::new(
            PatternSpec {
                num_elements: 60_000,
                iterations: 1_200_000,
                refs_per_iter: 2,
                coverage: 1.0,
                dist: Distribution::Uniform,
                seed: 91,
            }
            .generate(),
        );
        let warm = rt.submit(JobSpec::i64(big, |_i, r| contribution_i64(r)));
        let pat = sparse_pattern(61);
        let handles: Vec<JobHandle> = (0..6)
            .map(|kk| {
                let scale = kk as i64 + 1;
                rt.submit(JobSpec::i64(pat.clone(), move |_i, r| {
                    contribution_i64(r).wrapping_mul(scale)
                }))
            })
            .collect();
        warm.wait();
        let base = sequential_reduce_i64(&pat);
        for (kk, h) in handles.into_iter().enumerate() {
            let r = h.wait();
            assert!(r.error.is_none());
            let scale = kk as i64 + 1;
            let expect: Vec<i64> = base.iter().map(|v| v.wrapping_mul(scale)).collect();
            assert_eq!(r.output.as_i64().unwrap(), expect, "fused output {kk}");
            assert_eq!(r.fused_with, 5, "all six must share one sweep");
            assert_eq!(r.batched_with, 5);
            assert_eq!(r.scheme, Scheme::Hash, "fusion gate only admits hash");
        }
        let stats = rt.stats();
        assert_eq!(stats.fused_sweeps, 1);
        assert_eq!(stats.fused_jobs, 6);
    }

    #[test]
    fn max_fuse_one_disables_fusion() {
        let rt = Runtime::new(RuntimeConfig {
            workers: 2,
            dispatchers: 1,
            max_fuse: 1,
            ..RuntimeConfig::default()
        });
        let pat = sparse_pattern(63);
        let handles = rt.submit_batch(
            (0..6)
                .map(|_| JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)))
                .collect(),
        );
        let oracle = sequential_reduce_i64(&pat);
        for h in handles {
            let r = h.wait();
            assert_eq!(r.output.as_i64().unwrap(), oracle);
            assert_eq!(r.fused_with, 0, "max_fuse 1 must never fuse");
        }
        assert_eq!(rt.stats().fused_sweeps, 0);
    }

    #[test]
    fn dense_groups_do_not_pass_the_fusion_gate() {
        // Dense cache-resident classes lose by fusing (K-fold private
        // footprints); the gate must route them per-job even when the
        // batch coalesces.
        let rt = Runtime::new(RuntimeConfig {
            workers: 2,
            dispatchers: 1,
            max_batch: 32,
            max_fuse: 8,
            ..RuntimeConfig::default()
        });
        let pat = pattern(63);
        let handles = rt.submit_batch(
            (0..6)
                .map(|_| JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)))
                .collect(),
        );
        let oracle = sequential_reduce_i64(&pat);
        for h in handles {
            let r = h.wait();
            assert_eq!(r.output.as_i64().unwrap(), oracle);
            assert_eq!(r.fused_with, 0, "dense class must not fuse");
        }
        assert_eq!(rt.stats().fused_sweeps, 0);
    }

    #[test]
    fn shutdown_drains_pending_jobs() {
        let rt = Runtime::with_workers(2);
        let pat = pattern(7);
        let handles: Vec<JobHandle> = (0..8)
            .map(|_| rt.submit(JobSpec::f64(pat.clone(), |_i, r| contribution(r))))
            .collect();
        rt.shutdown();
        for h in handles {
            assert!(h.try_wait().is_some(), "shutdown must not drop queued jobs");
        }
    }

    #[test]
    fn submission_after_queue_close_reports_shutdown_kind() {
        let rt = Runtime::with_workers(2);
        // Close the queue as shutdown would, while the runtime handle is
        // still alive to accept the racing submission.
        rt.begin_shutdown();
        let r = rt
            .submit(JobSpec::i64(pattern(77), |_i, r| contribution_i64(r)))
            .wait();
        let err = r.error.expect("closed queue must fail the job");
        assert_eq!(err.kind, JobErrorKind::Shutdown);
        assert!(r.output.is_empty());
    }

    #[test]
    fn profile_survives_restart_via_disk() {
        let dir = std::env::temp_dir().join("smartapps-runtime-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("profiles-{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cfg = RuntimeConfig {
            workers: 2,
            profile_path: Some(path.clone()),
            ..RuntimeConfig::default()
        };
        let pat = pattern(9);
        let first_scheme;
        {
            let rt = Runtime::new(cfg.clone());
            first_scheme = rt
                .run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)))
                .scheme;
            rt.shutdown();
        }
        assert!(path.exists(), "shutdown must persist the store");
        {
            let rt = Runtime::new(cfg);
            let r = rt.run(JobSpec::i64(pat, |_i, r| contribution_i64(r)));
            assert!(r.profile_hit, "restarted service must remember the class");
            assert_eq!(r.scheme, first_scheme);
            assert_eq!(rt.stats().inspections, 0, "no inspection after restart");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_submissions_fail_fast_without_killing_the_service() {
        let rt = Runtime::with_workers(2);
        // Structurally invalid pattern: index out of bounds (and placed
        // beyond any sampling window's reach, conceptually — validate
        // catches it before the queue either way).
        let broken = Arc::new(smartapps_workloads::AccessPattern {
            num_elements: 2,
            iter_ptr: vec![0, 1],
            indices: vec![7],
        });
        let r = rt.submit(JobSpec::i64(broken, |_i, _r| 1)).wait();
        let err = r.error.expect("invalid pattern must be rejected");
        assert_eq!(err.kind, JobErrorKind::Rejected);
        assert!(err.message.contains("invalid access pattern"));
        // An absurd width request is clamped, not a dispatcher panic.
        let pat = pattern(53);
        let r = rt
            .submit(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)).with_threads(300))
            .wait();
        assert!(
            r.error.is_none(),
            "width beyond the pool must clamp: {:?}",
            r.error
        );
        assert_eq!(r.output.as_i64().unwrap(), sequential_reduce_i64(&pat));
        // Service is still healthy.
        let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert!(r.error.is_none());
        assert_eq!(rt.stats().completed, 3);
    }

    #[test]
    fn worker_side_panic_message_reaches_the_handle() {
        let rt = Runtime::with_workers(3);
        let pat = pattern(55);
        // Panic only on a late iteration so it lands in a worker's block,
        // not on the dispatcher's own tid 0.
        let iters = pat.num_iterations();
        let r = rt
            .submit(JobSpec::i64(pat, move |i, _r| {
                if i == iters - 1 {
                    panic!("bad row {i}")
                }
                1
            }))
            .wait();
        let err = r.error.expect("worker panic must surface");
        assert_eq!(err.kind, JobErrorKind::Panic);
        assert!(err.message.contains("bad row"), "payload lost: {err}");
    }

    #[test]
    fn panicking_job_body_does_not_kill_the_service() {
        let rt = Runtime::with_workers(2);
        let pat = pattern(51);
        let bad = rt.submit(JobSpec::i64(pat.clone(), |_i, _r| panic!("poisoned body")));
        let good = rt.submit(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        let bad = bad.wait();
        let err = bad.error.expect("poisoned body must fail");
        assert_eq!(err.kind, JobErrorKind::Panic);
        assert!(err.message.contains("poisoned body"));
        assert!(bad.output.is_empty());
        let good = good.wait();
        assert!(
            good.error.is_none(),
            "a fused or batched group-mate of a poisoned body must still succeed"
        );
        assert_eq!(
            good.output.as_i64().unwrap(),
            sequential_reduce_i64(&pat),
            "jobs after a poisoned one must still run"
        );
        // The poisoned run must not have fed the profile store: only the
        // good job's single execution is recorded for the class.
        let sig = PatternSignature::of(&pat, rt.shared.sample_iters, rt.width());
        assert_eq!(rt.profile_snapshot().get(sig).map(|e| e.runs), Some(1));
    }

    #[test]
    fn drift_eviction_forces_reinspection() {
        let rt = Runtime::with_workers(2);
        let pat = pattern(41);
        // Establish the class, then poison its calibration so the next
        // run reads as a >4x slowdown.
        let handle = rt.submit(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        let signature = handle.signature();
        handle.wait();
        {
            let mut store = rt.shared.profile.lock().unwrap();
            let entry = store.get(signature).unwrap().clone();
            // Rewrite the entry predicting a near-zero time: the next
            // execution must look like a drastic slowdown.
            store.evict(signature);
            store.record(
                signature,
                entry.scheme,
                entry.threads,
                usize::MAX,
                Duration::from_nanos(1),
            );
            let e = store.get(signature).unwrap();
            assert!(e.ns_per_ref < 1e-9);
            // Age it past DRIFT_MIN_RUNS.
            for _ in 0..DRIFT_MIN_RUNS {
                store.record(
                    signature,
                    entry.scheme,
                    entry.threads,
                    usize::MAX,
                    Duration::from_nanos(1),
                );
            }
        }
        // First over-ratio run: a strike, not an eviction — one wild
        // sample must never kill a healthy entry.
        let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert!(r.profile_hit, "this run rode the poisoned entry");
        assert_eq!(rt.stats().evictions, 0, "one outlier is noise, not drift");
        // Second consecutive over-ratio run: phase change.
        let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert!(r.profile_hit, "the entry survives the first strike");
        assert_eq!(rt.stats().evictions, 1, "poisoned calibration must evict");
        assert!(
            rt.profile_snapshot().get(signature).is_none(),
            "evicted entry must stay evicted until re-decided"
        );
        // Next submission misses the profile and re-inspects.
        let r2 = rt.run(JobSpec::i64(pat, |_i, r| contribution_i64(r)));
        assert!(!r2.profile_hit, "post-eviction run must re-decide");
    }

    #[test]
    fn adaptive_prior_reads_persisted_domain_entries() {
        use smartapps_core::toolbox::DomainKey;
        use smartapps_workloads::PatternChars;

        let rt = Runtime::with_workers(2);
        let pat = pattern(43);
        // Seed the store with a hand-chosen scheme for this pattern's
        // functioning domain under loop id 9 — as if a previous process
        // had learned it and persisted via persist_adaptive().
        let domain = DomainKey::of(&PatternChars::measure(&pat));
        let sig = PatternSignature::of_domain(9, &domain);
        {
            let mut store = rt.shared.profile.lock().unwrap();
            store.record(sig, Scheme::Hash, 2, 1, Duration::from_micros(1));
        }
        let mut smart = rt.adaptive(9, false);
        let (_, log) = smart.execute(&pat, &|_i, r| smartapps_workloads::contribution(r));
        assert_eq!(
            log.scheme,
            Scheme::Hash,
            "first decision must honor the persisted prior"
        );
        // A loop id with no persisted history decides analytically.
        let mut fresh = rt.adaptive(10, false);
        let (_, log) = fresh.execute(&pat, &|_i, r| smartapps_workloads::contribution(r));
        assert_ne!(
            log.scheme,
            Scheme::Hash,
            "dense uniform pattern should not pick hash analytically"
        );
    }

    #[test]
    fn shutdown_then_drop_saves_store_once() {
        let dir = std::env::temp_dir().join("smartapps-runtime-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("double-shutdown-{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let rt = Runtime::new(RuntimeConfig {
            workers: 2,
            profile_path: Some(path.clone()),
            ..RuntimeConfig::default()
        });
        rt.run(JobSpec::i64(pattern(45), |_i, r| contribution_i64(r)));
        rt.shutdown(); // runs teardown, then Drop runs — must be a no-op
        assert!(path.exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn multi_dispatcher_service_stays_correct_under_load() {
        let rt = Arc::new(Runtime::new(RuntimeConfig {
            workers: 4,
            shards: 8,
            dispatchers: 4,
            ..RuntimeConfig::default()
        }));
        assert_eq!(rt.dispatcher_count(), 4);
        let classes: Vec<_> = (0..4).map(|s| pattern(100 + s)).collect();
        let oracles: Vec<Vec<i64>> = classes.iter().map(|p| sequential_reduce_i64(p)).collect();
        std::thread::scope(|s| {
            for c in 0..4 {
                let rt = rt.clone();
                let classes = &classes;
                let oracles = &oracles;
                s.spawn(move || {
                    for j in 0..20 {
                        let which = (c + j) % classes.len();
                        let r = rt.run(JobSpec::i64(classes[which].clone(), |_i, r| {
                            contribution_i64(r)
                        }));
                        assert!(r.error.is_none());
                        assert_eq!(r.output.as_i64().unwrap(), oracles[which], "class {which}");
                    }
                });
            }
        });
        assert_eq!(rt.stats().completed, 80);
    }

    #[test]
    fn inspection_cache_reuses_and_revalidates() {
        let stats = RuntimeStats::default();
        let mut cache = InspectionCache::new(4);
        let pat = pattern(31);
        cache.analyze(&pat, 3, &stats);
        cache.analyze(&pat, 3, &stats);
        cache.analyze(&pat, 3, &stats);
        assert_eq!(stats.snapshot().inspections, 1, "same Arc + width must hit");
        cache.analyze(&pat, 2, &stats);
        assert_eq!(stats.snapshot().inspections, 2, "new width must analyze");
        // A dead Arc whose address gets reused must not serve a stale
        // inspection: the Weak upgrade guard forces a fresh analysis.
        let addr = Arc::as_ptr(&pat) as usize;
        drop(pat);
        let mut fresh = pattern(32);
        for _ in 0..64 {
            if Arc::as_ptr(&fresh) as usize == addr {
                break;
            }
            fresh = pattern(32);
        }
        let before = stats.snapshot().inspections;
        cache.analyze(&fresh, 3, &stats);
        assert_eq!(stats.snapshot().inspections, before + 1);
    }

    #[test]
    fn telemetry_records_lifecycle_and_exec_histograms() {
        let rt = Runtime::with_workers(2);
        let pat = pattern(91);
        for _ in 0..4 {
            let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
            assert!(r.error.is_none());
        }
        let tel = rt.telemetry();
        let exec = tel.registry().merged_snapshot(crate::telemetry::EXEC_NS);
        assert!(exec.count >= 4, "exec histogram missing samples");
        assert!(exec.quantile(0.5) > 0);
        let wait = tel
            .registry()
            .merged_snapshot(crate::telemetry::QUEUE_WAIT_NS);
        assert!(wait.count >= 4);
        let events = tel.trace().snapshot();
        assert!(events.len() >= 4, "trace ring missing events");
        for e in &events {
            assert_eq!(e.error, smartapps_telemetry::TraceError::None);
            assert!(e.submitted_ns <= e.queued_ns);
            assert!(e.queued_ns <= e.decided_ns);
            assert!(e.decided_ns <= e.executed_ns);
            assert!(e.executed_ns <= e.completed_ns);
            assert!(e.fused >= 1);
        }
        rt.shutdown();
    }

    #[test]
    fn fuse_groups_split_by_pattern_flavor_and_cap() {
        let pat_a = pattern(71);
        let pat_b = pattern(72);
        let mk = |spec: JobSpec| QueuedJob {
            sig: PatternSignature(1),
            sink: CompletionSink::Handle(JobState::new()),
            spec,
            submitted_at: Instant::now(),
        };
        let batch = vec![
            mk(JobSpec::i64(pat_a.clone(), |_i, r| contribution_i64(r))),
            mk(JobSpec::i64(pat_a.clone(), |_i, r| contribution_i64(r))),
            mk(JobSpec::f64(pat_a.clone(), |_i, r| contribution(r))),
            mk(JobSpec::i64(pat_b.clone(), |_i, r| contribution_i64(r))),
            mk(JobSpec::i64(pat_a.clone(), |_i, r| contribution_i64(r))),
        ];
        let groups = fuse_groups(batch, 8, 4);
        // i64-on-A x3, f64-on-A x1, i64-on-B x1.
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].len(), 3);
        assert_eq!(groups[1].len(), 1);
        assert_eq!(groups[2].len(), 1);
        // The cap splits oversized groups.
        let batch: Vec<QueuedJob> = (0..7)
            .map(|_| mk(JobSpec::i64(pat_a.clone(), |_i, r| contribution_i64(r))))
            .collect();
        let groups = fuse_groups(batch, 3, 4);
        let sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![3, 3, 1]);
    }

    /// A model whose PCLR formula is free: every admitted class decides
    /// onto the hardware backend, making sim routing deterministic.
    fn free_offload_model() -> DecisionModel {
        DecisionModel::new(smartapps_reductions::ModelParams {
            pclr_update: 0.0,
            pclr_flush_line: 0.0,
            pclr_offload_fixed: 0.0,
            ..smartapps_reductions::ModelParams::default()
        })
    }

    /// Small pattern the simulator executes quickly in debug builds.
    fn sim_pattern(seed: u64) -> Arc<smartapps_workloads::AccessPattern> {
        Arc::new(
            PatternSpec {
                num_elements: 256,
                iterations: 300,
                refs_per_iter: 3,
                coverage: 0.9,
                dist: Distribution::Uniform,
                seed,
            }
            .generate(),
        )
    }

    #[test]
    fn model_routes_admitted_classes_to_the_simulator() {
        let rt = Runtime::new(RuntimeConfig {
            workers: 2,
            dispatchers: 1,
            pclr: Some(crate::PclrConfig::default()),
            model: free_offload_model(),
            ..RuntimeConfig::default()
        });
        let pat = sim_pattern(21);
        let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert!(r.error.is_none(), "{:?}", r.error);
        assert_eq!(r.scheme, Scheme::Pclr, "free offload must win the model");
        let cycles = r.sim_cycles.expect("offloaded job reports cycles");
        assert!(cycles > 0);
        assert_eq!(r.output.as_i64().unwrap(), sequential_reduce_i64(&pat));
        let stats = rt.stats();
        assert_eq!(stats.pclr_offloads, 1, "offload must be visible in stats");
        assert_eq!(stats.sim_cycles, cycles);
        // The class is now profiled as pclr: repeats skip the inspection
        // and ride the hardware decision.
        let again = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert!(again.profile_hit);
        assert_eq!(again.scheme, Scheme::Pclr);
        assert_eq!(rt.stats().pclr_offloads, 2);
    }

    #[test]
    fn pclr_profile_entry_with_backend_disabled_redecides_to_software() {
        // A store learned by an offload-enabled service is loaded by a
        // software-only one (downgrade, config change): the pclr entry
        // must not crash the dispatcher — the job re-decides.
        let rt = Runtime::with_workers(2);
        let pat = sim_pattern(23);
        let handle = rt.submit(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        let sig = handle.signature();
        handle.wait();
        {
            let mut store = rt.shared.profile.lock().unwrap();
            store.evict(sig);
            store.record(sig, Scheme::Pclr, 2, 1, Duration::from_nanos(1));
        }
        let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert!(r.error.is_none(), "{:?}", r.error);
        assert!(r.scheme.is_software(), "masked pclr must fall back");
        assert!(r.sim_cycles.is_none());
        assert!(!r.profile_hit, "a masked decision is not a profile hit");
        assert_eq!(r.output.as_i64().unwrap(), sequential_reduce_i64(&pat));
        assert_eq!(rt.stats().pclr_offloads, 0);
        // The dead hardware entry must not mask forever: it is evicted,
        // the next run re-decides and records, and the class settles
        // back into profile-hit steady state on an executable scheme.
        assert_eq!(rt.stats().evictions, 1);
        assert!(
            rt.profile_snapshot().get(sig).is_none(),
            "unexecutable pclr entry must be evicted"
        );
        let relearn = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert!(!relearn.profile_hit, "post-eviction run re-decides");
        let settled = rt.run(JobSpec::i64(pat, |_i, r| contribution_i64(r)));
        assert!(settled.profile_hit, "re-learned software entry must hit");
        assert!(settled.scheme.is_software());
    }

    #[test]
    fn oversized_jobs_stay_on_the_software_backend() {
        // Backend enabled but the job exceeds the admission cap: the
        // model never sees pclr as available and nothing is simulated.
        let rt = Runtime::new(RuntimeConfig {
            workers: 2,
            dispatchers: 1,
            pclr: Some(crate::PclrConfig {
                max_sim_refs: 8, // sim_pattern has ~900 references
                ..crate::PclrConfig::default()
            }),
            model: free_offload_model(),
            ..RuntimeConfig::default()
        });
        let pat = sim_pattern(25);
        let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert!(r.error.is_none());
        assert!(r.scheme.is_software());
        assert_eq!(r.output.as_i64().unwrap(), sequential_reduce_i64(&pat));
        assert_eq!(rt.stats().pclr_offloads, 0);
    }

    #[test]
    fn pclr_choice_survives_restart_via_disk() {
        let dir = std::env::temp_dir().join("smartapps-runtime-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("pclr-profiles-{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cfg = RuntimeConfig {
            workers: 2,
            dispatchers: 1,
            profile_path: Some(path.clone()),
            pclr: Some(crate::PclrConfig::default()),
            model: free_offload_model(),
            ..RuntimeConfig::default()
        };
        let pat = sim_pattern(27);
        {
            let rt = Runtime::new(cfg.clone());
            let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
            assert_eq!(r.scheme, Scheme::Pclr);
            rt.shutdown();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.contains(" pclr "),
            "store must persist the scheme:\n{text}"
        );
        {
            let rt = Runtime::new(cfg);
            let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
            assert!(r.profile_hit, "restarted service must remember the class");
            assert_eq!(r.scheme, Scheme::Pclr);
            assert!(r.sim_cycles.is_some());
            assert_eq!(rt.stats().inspections, 0, "no inspection after restart");
            assert_eq!(r.output.as_i64().unwrap(), sequential_reduce_i64(&pat));
        }
        let _ = std::fs::remove_file(&path);
    }

    /// A model whose SIMD formula is free: every feasible class decides
    /// onto the vectorized backend, making routing deterministic.
    fn free_simd_model() -> DecisionModel {
        DecisionModel::new(smartapps_reductions::ModelParams {
            simd_update: 0.0,
            simd_init_elem: 0.0,
            simd_merge_elem: 0.0,
            ..smartapps_reductions::ModelParams::default()
        })
    }

    #[test]
    fn model_routes_feasible_classes_to_the_simd_backend() {
        let rt = Runtime::new(RuntimeConfig {
            workers: 2,
            dispatchers: 1,
            model: free_simd_model(),
            ..RuntimeConfig::default()
        });
        let pat = sim_pattern(121);
        let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert!(r.error.is_none(), "{:?}", r.error);
        assert_eq!(r.scheme, Scheme::Simd, "free simd must win the model");
        assert!(r.sim_cycles.is_none(), "simd is software, not simulated");
        assert_eq!(r.output.as_i64().unwrap(), sequential_reduce_i64(&pat));
        let stats = rt.stats();
        assert_eq!(stats.simd_offloads, 1, "offload must be visible in stats");
        assert_eq!(stats.pclr_offloads, 0);
        // The class is now profiled as simd: repeats skip the inspection
        // and ride the vectorized decision.
        let again = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert!(again.profile_hit);
        assert_eq!(again.scheme, Scheme::Simd);
        assert_eq!(rt.stats().simd_offloads, 2);
        // The f64 flavor routes identically and stays within the
        // documented bound of the sequential oracle.
        let f = rt.run(JobSpec::f64(pat.clone(), |_i, r| contribution(r)));
        assert!(f.error.is_none());
        let oracle = sequential_reduce(&pat);
        for (a, b) in oracle.iter().zip(f.output.as_f64().unwrap()) {
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
        }
    }

    #[test]
    fn simd_profile_entry_on_scalar_only_service_redecides_to_software() {
        // A store learned by a SIMD-enabled service is loaded by a
        // scalar-only one: the simd entry must not crash the dispatcher —
        // the job re-decides and the dead entry is evicted.
        let rt = Runtime::new(RuntimeConfig {
            workers: 2,
            dispatchers: 1,
            simd: false,
            ..RuntimeConfig::default()
        });
        let pat = sim_pattern(123);
        let handle = rt.submit(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        let sig = handle.signature();
        handle.wait();
        {
            let mut store = rt.shared.profile.lock().unwrap();
            store.evict(sig);
            store.record(sig, Scheme::Simd, 2, 1, Duration::from_nanos(1));
        }
        let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert!(r.error.is_none(), "{:?}", r.error);
        assert!(r.scheme.is_software(), "masked simd must fall back");
        assert!(!r.profile_hit, "a masked decision is not a profile hit");
        assert_eq!(r.output.as_i64().unwrap(), sequential_reduce_i64(&pat));
        assert_eq!(rt.stats().simd_offloads, 0);
        assert_eq!(rt.stats().evictions, 1);
        assert!(
            rt.profile_snapshot().get(sig).is_none(),
            "unexecutable simd entry must be evicted"
        );
    }

    #[test]
    fn simd_choice_survives_restart_via_disk() {
        let dir = std::env::temp_dir().join("smartapps-runtime-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("simd-profiles-{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cfg = RuntimeConfig {
            workers: 2,
            dispatchers: 1,
            profile_path: Some(path.clone()),
            model: free_simd_model(),
            ..RuntimeConfig::default()
        };
        let pat = sim_pattern(125);
        {
            let rt = Runtime::new(cfg.clone());
            let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
            assert_eq!(r.scheme, Scheme::Simd);
            rt.shutdown();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.contains(" simd "),
            "store must persist the scheme:\n{text}"
        );
        {
            let rt = Runtime::new(cfg);
            let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
            assert!(r.profile_hit, "restarted service must remember the class");
            assert_eq!(r.scheme, Scheme::Simd);
            assert_eq!(rt.stats().inspections, 0, "no inspection after restart");
            assert_eq!(rt.stats().simd_offloads, 1);
            assert_eq!(r.output.as_i64().unwrap(), sequential_reduce_i64(&pat));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cycle_ns_is_fitted_from_cross_backend_pairs_and_persists() {
        let dir = std::env::temp_dir().join("smartapps-runtime-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("cyc-profiles-{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let rt = Runtime::new(RuntimeConfig {
            workers: 2,
            dispatchers: 1,
            pclr: Some(crate::PclrConfig::default()),
            model: free_offload_model(),
            profile_path: Some(path.clone()),
            ..RuntimeConfig::default()
        });
        let pat = sim_pattern(29);
        // First run offloads: the class's simulated-cycles half lands.
        let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert_eq!(r.scheme, Scheme::Pclr);
        assert_eq!(
            rt.fitted_cycle_ns(),
            Some((1.0, 0)),
            "no pair yet: the assumption stands"
        );
        // Re-route the class to software (as a calibration recheck or an
        // operator override would): its wall-time half completes the pair.
        let sig = PatternSignature::of(&pat, rt.shared.sample_iters, rt.width());
        {
            let mut store = rt.shared.profile.lock().unwrap();
            store.evict(sig);
            store.record(
                sig,
                Scheme::Rep,
                2,
                pat.num_references(),
                Duration::from_millis(50),
            );
        }
        let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert_eq!(r.scheme, Scheme::Rep);
        let (fitted, samples) = rt.fitted_cycle_ns().unwrap();
        assert_eq!(samples, 1, "one cross-backend pair, one fit sample");
        assert!(fitted > 0.0 && fitted.is_finite());
        assert_ne!(fitted, 1.0, "a real measurement never lands exactly on 1.0");
        // The fit persists as the store's `cyc` record.
        rt.shutdown();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("cyc "), "cyc record must persist:\n{text}");
        let store = ProfileStore::load(&path).unwrap();
        assert_eq!(store.cycle_fit().map(|c| c.updates), Some(1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn adaptive_prior_masks_persisted_pclr_entries() {
        use smartapps_core::toolbox::DomainKey;
        use smartapps_workloads::PatternChars;

        // The adaptive loop executes through the software library; a
        // pclr prior must fall back to the analytic decision, not panic.
        let rt = Runtime::with_workers(2);
        let pat = pattern(47);
        let domain = DomainKey::of(&PatternChars::measure(&pat));
        let sig = PatternSignature::of_domain(12, &domain);
        {
            let mut store = rt.shared.profile.lock().unwrap();
            store.record(sig, Scheme::Pclr, 2, 1, Duration::from_micros(1));
        }
        let mut smart = rt.adaptive(12, false);
        let (out, log) = smart.execute(&pat, &|_i, r| smartapps_workloads::contribution(r));
        assert!(log.scheme.is_software(), "prior must be masked");
        assert_eq!(out.len(), pat.num_elements);
    }

    #[test]
    fn calibration_loop_accepts_samples_by_default() {
        let rt = Runtime::with_workers(2);
        let pat = pattern(83);
        // First sighting decides via the model (inspection cached), so
        // its execution can immediately report predicted-vs-measured.
        rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        let s1 = rt.stats();
        assert!(s1.calibration_updates >= 1, "{s1:?}");
        // Profile-hit repeats keep learning off the cached inspection.
        rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        let s2 = rt.stats();
        assert!(s2.calibration_updates > s1.calibration_updates);
        assert!(s2.mean_abs_prediction_error().is_finite());
        assert_eq!(s2.explored, 0, "exploration is off by default");
        assert_eq!(s2.fuse_probes, 0, "probing is off by default");
    }

    #[test]
    fn exploration_executes_the_runner_up_and_skips_the_profile() {
        let rt = Runtime::new(RuntimeConfig {
            workers: 2,
            dispatchers: 1,
            calibration: CalibrationConfig {
                explore_every: 1, // every batch explores
                ..CalibrationConfig::default()
            },
            ..RuntimeConfig::default()
        });
        let pat = pattern(85);
        let insp = Inspector::analyze(&pat, 2);
        let input = ModelInput::from_inspection(&insp, false);
        let analytic_best = DecisionModel::default().decide(&input).best();
        let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert!(r.error.is_none());
        assert_ne!(r.scheme, analytic_best, "explored run takes the runner-up");
        assert_eq!(r.output.as_i64().unwrap(), sequential_reduce_i64(&pat));
        assert_eq!(rt.stats().explored, 1);
        assert!(
            rt.profile_snapshot().is_empty(),
            "exploration must not lock the class to the runner-up"
        );

        // On a *profiled* class, an explored batch neither reports a
        // profile hit (the scheme did not come from the store) nor
        // disturbs the entry.
        let rt = Runtime::new(RuntimeConfig {
            workers: 2,
            dispatchers: 1,
            calibration: CalibrationConfig {
                explore_every: 2, // batch 1 decides+records, batch 2 explores
                ..CalibrationConfig::default()
            },
            ..RuntimeConfig::default()
        });
        let pat = pattern(86);
        let first = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert!(!first.profile_hit);
        let explored = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert_eq!(rt.stats().explored, 1);
        assert_ne!(
            explored.scheme, first.scheme,
            "slot runs an unmeasured scheme"
        );
        assert!(
            !explored.profile_hit,
            "an explored pick must not claim to come from the store"
        );
        let sig = PatternSignature::of(&pat, rt.shared.sample_iters, rt.width());
        assert_eq!(
            rt.profile_snapshot().get(sig).map(|e| e.scheme),
            Some(first.scheme),
            "the entry must keep the recorded scheme"
        );
    }

    #[test]
    fn corrections_persist_across_restart_via_store() {
        let dir = std::env::temp_dir().join("smartapps-runtime-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("corr-profiles-{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cfg = RuntimeConfig {
            workers: 2,
            dispatchers: 1,
            profile_path: Some(path.clone()),
            ..RuntimeConfig::default()
        };
        // Two regimes so the calibrator sees more than one scheme: with a
        // single executed scheme, its correction is 1.0 by construction
        // (it *defines* the global scale).
        let dense = pattern(87);
        // SPICE shape: huge dimension, almost no reuse — hash territory
        // at any width, guaranteeing a second scheme in the mix.
        let sparse = Arc::new(
            PatternSpec {
                num_elements: 200_000,
                iterations: 600,
                refs_per_iter: 28,
                coverage: 0.08,
                dist: Distribution::Uniform,
                seed: 88,
            }
            .generate(),
        );
        let domain = smartapps_core::toolbox::DomainKey::of(
            &smartapps_workloads::PatternChars::measure(&dense),
        );
        let (dense_scheme, sparse_scheme, before_dense, before_sparse);
        {
            let rt = Runtime::new(cfg.clone());
            dense_scheme = rt
                .run(JobSpec::i64(dense.clone(), |_i, r| contribution_i64(r)))
                .scheme;
            sparse_scheme = rt
                .run(JobSpec::i64(sparse.clone(), |_i, r| contribution_i64(r)))
                .scheme;
            for _ in 0..4 {
                rt.run(JobSpec::i64(dense.clone(), |_i, r| contribution_i64(r)));
                rt.run(JobSpec::i64(sparse.clone(), |_i, r| contribution_i64(r)));
            }
            assert!(rt.stats().calibration_updates >= 10);
            before_dense = rt.correction(dense_scheme, domain, false);
            before_sparse = rt.correction(sparse_scheme, domain, false);
            rt.shutdown();
        }
        assert_ne!(dense_scheme, sparse_scheme, "two regimes, two schemes");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.contains("corr * * s"),
            "global scale persisted:\n{text}"
        );
        assert!(
            text.contains(&format!("corr {} ", dense_scheme.abbrev())),
            "per-scheme correction persisted:\n{text}"
        );
        {
            let rt = Runtime::new(cfg);
            assert!(
                (rt.correction(dense_scheme, domain, false) - before_dense).abs() < 1e-12
                    && (rt.correction(sparse_scheme, domain, false) - before_sparse).abs() < 1e-12,
                "restarted service must inherit the learned corrections exactly"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn quarantine_blocks_after_k_consecutive_panics_and_lifts_on_unquarantine() {
        let rt = Runtime::new(RuntimeConfig {
            workers: 2,
            dispatchers: 1,
            quarantine_after: 3,
            quarantine_ttl: Duration::from_secs(3600),
            ..RuntimeConfig::default()
        });
        let pat = pattern(201);
        let mut sig = None;
        for _ in 0..3 {
            let h = rt.submit(JobSpec::i64(pat.clone(), |_i, _r| panic!("always bad")));
            sig = Some(h.signature());
            let r = h.wait();
            assert_eq!(r.error.unwrap().kind, JobErrorKind::Panic);
        }
        let sig = sig.unwrap();
        // Strike three has the class quarantined: the next job fails
        // fast without executing its body.
        let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        let err = r.error.expect("quarantined class must fail fast");
        assert_eq!(err.kind, JobErrorKind::Quarantined);
        assert!(err.message.contains("3 consecutive"), "{err}");
        assert_eq!(rt.stats().quarantined, 1);
        assert_eq!(rt.quarantined_classes(), vec![sig]);
        // Lifting the quarantine restores the class.
        assert!(rt.unquarantine(sig));
        assert!(rt.quarantined_classes().is_empty());
        let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert!(r.error.is_none(), "{:?}", r.error);
        assert_eq!(r.output.as_i64().unwrap(), sequential_reduce_i64(&pat));
    }

    #[test]
    fn clean_execution_resets_the_panic_streak() {
        let rt = Runtime::new(RuntimeConfig {
            workers: 2,
            dispatchers: 1,
            quarantine_after: 2,
            ..RuntimeConfig::default()
        });
        let pat = pattern(203);
        // panic, clean, panic, clean, ... never two in a row: the class
        // must never be quarantined.
        for round in 0..3 {
            let r = rt
                .submit(JobSpec::i64(pat.clone(), |_i, _r| panic!("flaky")))
                .wait();
            assert_eq!(
                r.error.unwrap().kind,
                JobErrorKind::Panic,
                "round {round}: a single panic must execute, not fast-fail"
            );
            let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
            assert!(r.error.is_none(), "round {round}: {:?}", r.error);
        }
        assert_eq!(rt.stats().quarantined, 0);
    }

    #[test]
    fn quarantine_ttl_expiry_gives_the_class_a_fresh_start() {
        let rt = Runtime::new(RuntimeConfig {
            workers: 2,
            dispatchers: 1,
            quarantine_after: 1,
            quarantine_ttl: Duration::from_millis(50),
            ..RuntimeConfig::default()
        });
        let pat = pattern(205);
        let r = rt
            .submit(JobSpec::i64(pat.clone(), |_i, _r| panic!("poison")))
            .wait();
        assert_eq!(r.error.unwrap().kind, JobErrorKind::Panic);
        let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert_eq!(r.error.unwrap().kind, JobErrorKind::Quarantined);
        std::thread::sleep(Duration::from_millis(80));
        let r = rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)));
        assert!(r.error.is_none(), "expired TTL must lift the quarantine");
        assert_eq!(r.output.as_i64().unwrap(), sequential_reduce_i64(&pat));
    }

    #[test]
    fn expired_quarantine_ttl_disappears_from_snapshots_without_a_submit() {
        let rt = Runtime::new(RuntimeConfig {
            workers: 2,
            dispatchers: 1,
            quarantine_after: 1,
            quarantine_ttl: Duration::from_millis(50),
            ..RuntimeConfig::default()
        });
        let pat = pattern(217);
        let h = rt.submit(JobSpec::i64(pat.clone(), |_i, _r| panic!("poison")));
        let sig = h.signature();
        assert_eq!(h.wait().error.unwrap().kind, JobErrorKind::Panic);
        assert_eq!(rt.quarantined_classes(), vec![sig]);
        assert_eq!(rt.quarantined_with_ttl().len(), 1);
        // No further submissions of the class: the lazily-clearing ledger
        // still holds the entry, but snapshots must stop reporting it the
        // moment the TTL lapses.
        std::thread::sleep(Duration::from_millis(80));
        assert!(
            rt.quarantined_classes().is_empty(),
            "expired TTL must not be reported"
        );
        assert!(rt.quarantined_with_ttl().is_empty());
    }

    #[test]
    fn submit_tagged_delivers_every_outcome_on_the_set() {
        use crate::completion::CompletionSet;
        use std::collections::HashMap;

        let rt = Runtime::with_workers(2);
        let set = CompletionSet::with_capacity(64);
        let pat = pattern(207);
        let broken = Arc::new(smartapps_workloads::AccessPattern {
            num_elements: 2,
            iter_ptr: vec![0, 1],
            indices: vec![7],
        });
        rt.submit_tagged(
            JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)),
            1,
            &set,
        );
        rt.submit_tagged(JobSpec::i64(broken, |_i, _r| 1), 2, &set);
        rt.submit_tagged(JobSpec::i64(pat.clone(), |_i, _r| panic!("bad")), 3, &set);
        rt.submit_batch_tagged(
            vec![
                (4, JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r))),
                (5, JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r))),
            ],
            &set,
        );
        let mut seen: HashMap<u64, Completion> = HashMap::new();
        while let Some(c) = set.wait_any() {
            assert!(
                seen.insert(c.token, c.clone()).is_none(),
                "token {} delivered twice",
                c.token
            );
        }
        assert_eq!(set.in_flight(), 0);
        assert_eq!(seen.len(), 5, "exactly one completion per token");
        let oracle = sequential_reduce_i64(&pat);
        for t in [1u64, 4, 5] {
            let c = &seen[&t];
            assert!(c.result.error.is_none(), "token {t}: {:?}", c.result.error);
            assert_eq!(c.result.output.as_i64().unwrap(), oracle);
            assert_ne!(c.signature, PatternSignature(0));
        }
        assert_eq!(
            seen[&2].result.error.as_ref().unwrap().kind,
            JobErrorKind::Rejected
        );
        assert_eq!(seen[&2].signature, PatternSignature(0));
        assert_eq!(
            seen[&3].result.error.as_ref().unwrap().kind,
            JobErrorKind::Panic
        );
    }

    #[test]
    fn submit_tagged_after_close_delivers_shutdown_event() {
        let rt = Runtime::with_workers(2);
        let set = CompletionSet::with_capacity(8);
        rt.begin_shutdown();
        rt.submit_tagged(
            JobSpec::i64(pattern(209), |_i, r| contribution_i64(r)),
            9,
            &set,
        );
        let c = set.wait_any().expect("shutdown race still delivers");
        assert_eq!(c.token, 9);
        assert_eq!(c.result.error.unwrap().kind, JobErrorKind::Shutdown);
        assert!(set.wait_any().is_none());
    }

    #[test]
    fn inline_completions_never_block_the_submitting_consumer() {
        // The rejection/shutdown delivery happens on the submitting
        // thread, which in the single-consumer pattern is also the only
        // thread draining the set: with a capacity-1 queue, the second
        // submission would deadlock if inline delivery honored the
        // bound.  (Regression test for the submit-path deadlock.)
        let rt = Runtime::with_workers(2);
        let set = CompletionSet::with_capacity(1);
        rt.begin_shutdown();
        let pat = pattern(213);
        for t in 0..3 {
            rt.submit_tagged(
                JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)),
                t,
                &set,
            );
        }
        let mut tokens = Vec::new();
        while let Some(c) = set.wait_any() {
            assert_eq!(
                c.result.error.as_ref().unwrap().kind,
                JobErrorKind::Shutdown
            );
            tokens.push(c.token);
        }
        tokens.sort_unstable();
        assert_eq!(tokens, vec![0, 1, 2], "no inline event may be lost");
    }

    #[test]
    fn submit_callback_pushes_the_completion() {
        let rt = Runtime::with_workers(2);
        let pat = pattern(211);
        let delivered = Arc::new(Mutex::new(Vec::<Completion>::new()));
        let sink = delivered.clone();
        rt.submit_callback(
            JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)),
            42,
            move |c| sink.lock().unwrap().push(c),
        );
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if !delivered.lock().unwrap().is_empty() {
                break;
            }
            assert!(Instant::now() < deadline, "callback never fired");
            std::thread::sleep(Duration::from_millis(1));
        }
        let got = delivered.lock().unwrap();
        assert_eq!(got.len(), 1, "callback fires exactly once");
        assert_eq!(got[0].token, 42);
        assert!(got[0].result.error.is_none());
        assert_eq!(
            got[0].result.output.as_i64().unwrap(),
            sequential_reduce_i64(&pat)
        );
    }

    #[test]
    fn adaptive_on_pool_matches_oracle() {
        let rt = Runtime::with_workers(3);
        let pat = pattern(11);
        let mut smart = rt.adaptive(77, false);
        let (out, log) = smart.execute(&pat, &|_i, r| contribution(r));
        assert!(log.characterized);
        let oracle = sequential_reduce(&pat);
        for (a, b) in oracle.iter().zip(out.iter()) {
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
        }
        rt.persist_adaptive(&smart);
        assert!(!rt.profile_snapshot().is_empty());
    }

    /// An overlapping sliding-window pattern the simplification
    /// recognizer accepts: row `i` reads the `width` consecutive
    /// elements starting at `(i * stride) % (n - width + 1)`.
    fn window_pattern(
        n: usize,
        iters: usize,
        width: usize,
        stride: usize,
    ) -> Arc<smartapps_workloads::AccessPattern> {
        let rows: Vec<Vec<u32>> = (0..iters)
            .map(|i| {
                let lo = (i * stride) % (n - width + 1);
                (lo..lo + width).map(|x| x as u32).collect()
            })
            .collect();
        Arc::new(smartapps_workloads::AccessPattern::from_iters(n, &rows))
    }

    /// Direct per-element oracle for an iteration-uniform i64 body:
    /// every reference of iteration `i` posts `f(i)`.
    fn direct_uniform_i64(
        pat: &smartapps_workloads::AccessPattern,
        f: impl Fn(usize) -> i64,
    ) -> Vec<i64> {
        let mut out = vec![0i64; pat.num_elements];
        for i in 0..pat.num_iterations() {
            let v = f(i);
            for slot in pat.ref_range(i) {
                let e = pat.indices[slot] as usize;
                out[e] = out[e].wrapping_add(v);
            }
        }
        out
    }

    #[test]
    fn declared_uniform_window_flood_runs_simplified() {
        let rt = Runtime::new(RuntimeConfig {
            workers: 2,
            dispatchers: 1,
            max_batch: 32,
            max_fuse: 8,
            ..RuntimeConfig::default()
        });
        let pat = window_pattern(2048, 4096, 16, 3);
        let handles: Vec<JobHandle> = (0..8)
            .map(|kk| {
                let scale = kk as i64 + 1;
                rt.submit(
                    JobSpec::i64(pat.clone(), move |i, _r| (i as i64 + 1).wrapping_mul(scale))
                        .with_uniform_body(true),
                )
            })
            .collect();
        for (kk, h) in handles.into_iter().enumerate() {
            let r = h.wait();
            assert!(r.error.is_none(), "simplified job {kk}: {:?}", r.error);
            let scale = kk as i64 + 1;
            let expect = direct_uniform_i64(&pat, |i| (i as i64 + 1).wrapping_mul(scale));
            assert_eq!(r.output.as_i64().unwrap(), expect, "simplified output {kk}");
            assert_eq!(r.scheme, Scheme::Seq, "the rewritten plan reports seq");
        }
        let stats = rt.stats();
        assert_eq!(stats.simplified_jobs, 8, "every declared job must rewrite");
        assert_eq!(stats.simplify_rejects, 0);
        assert_eq!(
            stats.fused_sweeps, 0,
            "the rewrite preempts the fusion gate"
        );
        assert_eq!(stats.fused_jobs, 0);
        let text = rt.telemetry().registry().render_prometheus();
        assert!(
            text.contains("smartapps_simplify_ns_count{shape=\"window\"}"),
            "missing simplify series: {text}"
        );
        let snap = rt.profile_snapshot();
        assert_eq!(snap.scan_verdict_len(), 1, "positive verdict must persist");
    }

    #[test]
    fn simplify_off_runs_the_normal_pipeline() {
        let rt = Runtime::new(RuntimeConfig {
            workers: 2,
            dispatchers: 1,
            simplify: false,
            ..RuntimeConfig::default()
        });
        let pat = window_pattern(1024, 2048, 16, 5);
        let r = rt.run(JobSpec::i64(pat.clone(), |i, _r| i as i64 + 1).with_uniform_body(true));
        assert!(r.error.is_none());
        assert_eq!(
            r.output.as_i64().unwrap(),
            direct_uniform_i64(&pat, |i| i as i64 + 1)
        );
        let stats = rt.stats();
        assert_eq!(stats.simplified_jobs, 0);
        assert_eq!(
            stats.simplify_rejects, 0,
            "config-off traffic is not a reject"
        );
    }

    #[test]
    fn refuted_uniform_declaration_loses_the_rewrite_not_the_answer() {
        let rt = Runtime::new(RuntimeConfig {
            workers: 2,
            dispatchers: 1,
            ..RuntimeConfig::default()
        });
        let pat = window_pattern(1024, 2048, 16, 5);
        // The declaration lies: the body reads the reduction slot.  The
        // probe must refute it and the job must run unsimplified with
        // the exact slot-dependent answer.
        let r =
            rt.run(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)).with_uniform_body(true));
        assert!(r.error.is_none());
        assert_eq!(r.output.as_i64().unwrap(), sequential_reduce_i64(&pat));
        let stats = rt.stats();
        assert_eq!(
            stats.simplified_jobs, 0,
            "a refuted declaration must not rewrite"
        );
        assert!(stats.simplify_rejects >= 1);
        // The refutation is body-specific and never persisted: the
        // pattern's structural verdict stays positive.
        assert_eq!(rt.profile_snapshot().scan_verdict_len(), 1);
    }

    #[test]
    fn scan_verdicts_survive_restart_via_disk() {
        let dir = std::env::temp_dir().join("smartapps-runtime-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("simplify-{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cfg = RuntimeConfig {
            workers: 2,
            dispatchers: 1,
            profile_path: Some(path.clone()),
            ..RuntimeConfig::default()
        };
        let win = window_pattern(1024, 2048, 16, 5);
        let ragged = pattern(71);
        {
            let rt = Runtime::new(cfg.clone());
            rt.run(JobSpec::i64(win.clone(), |i, _r| i as i64).with_uniform_body(true));
            rt.run(JobSpec::i64(ragged.clone(), |i, _r| i as i64).with_uniform_body(true));
            assert_eq!(rt.profile_snapshot().scan_verdict_len(), 2);
            rt.shutdown();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.lines()
                .any(|l| l.starts_with("simp ") && l.ends_with(" 1")),
            "positive verdict must be saved: {text}"
        );
        assert!(
            text.lines()
                .any(|l| l.starts_with("simp ") && l.ends_with(" 0")),
            "negative verdict must be saved: {text}"
        );
        {
            let rt = Runtime::new(cfg);
            assert_eq!(
                rt.profile_snapshot().scan_verdict_len(),
                2,
                "verdicts reload"
            );
            let r = rt.run(JobSpec::i64(win.clone(), |i, _r| i as i64).with_uniform_body(true));
            assert_eq!(
                r.output.as_i64().unwrap(),
                direct_uniform_i64(&win, |i| i as i64)
            );
            assert_eq!(
                rt.stats().simplified_jobs,
                1,
                "rewrite survives the restart"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fused_panic_fallback_accounting_is_exact() {
        // Regression: `fused_jobs` was bumped per *sweep* (`+= k`)
        // before any member completed; it is now counted per member
        // actually completed through a shared sweep, so an abandoned
        // sweep — one poisoned body sends the whole group to the
        // isolated fallback — contributes nothing, and the invariant
        // `fused_jobs == |results with fused_with > 0|` is structural.
        let rt = Runtime::new(RuntimeConfig {
            workers: 3,
            dispatchers: 1,
            max_batch: 32,
            max_fuse: 8,
            ..RuntimeConfig::default()
        });
        let big = Arc::new(
            PatternSpec {
                num_elements: 60_000,
                iterations: 1_200_000,
                refs_per_iter: 2,
                coverage: 1.0,
                dist: Distribution::Uniform,
                seed: 93,
            }
            .generate(),
        );
        let warm = rt.submit(JobSpec::i64(big, |_i, r| contribution_i64(r)));
        let pat = sparse_pattern(67);
        let handles: Vec<JobHandle> = (0..6)
            .map(|kk| {
                rt.submit(JobSpec::i64(pat.clone(), move |i, r| {
                    if kk == 3 && i == 0 {
                        panic!("poisoned member")
                    }
                    contribution_i64(r)
                }))
            })
            .collect();
        warm.wait();
        let results: Vec<JobResult> = handles.into_iter().map(|h| h.wait()).collect();
        let oracle = sequential_reduce_i64(&pat);
        let poisoned = &results[3];
        let err = poisoned.error.as_ref().expect("poisoned member must fail");
        assert_eq!(err.kind, JobErrorKind::Panic);
        assert_eq!(poisoned.fused_with, 0, "a failed member is re-run isolated");
        for (kk, r) in results.iter().enumerate() {
            if kk == 3 {
                continue;
            }
            assert!(
                r.error.is_none(),
                "group-mate {kk} must survive the fallback"
            );
            assert_eq!(r.output.as_i64().unwrap(), oracle, "fallback output {kk}");
        }
        let fused_members = results.iter().filter(|r| r.fused_with > 0).count() as u64;
        let stats = rt.stats();
        assert_eq!(
            stats.fused_jobs, fused_members,
            "fused_jobs must count members"
        );
        assert_eq!(stats.completed, 7, "every job completes exactly once");
        if fused_members == 0 {
            // The usual timing: all six coalesced into the poisoned
            // sweep, which was abandoned without touching the counters.
            assert_eq!(stats.fused_sweeps, 0);
        }
    }

    #[test]
    fn dense_f64_groups_decline_fusion_without_fused_evidence() {
        // The non-hash fused regimes need measured fused-side evidence
        // before the gate admits them (probes are off by default), so a
        // coalesced dense f64 group must route per-job with exact
        // bookkeeping and per-member answers.
        let rt = Runtime::new(RuntimeConfig {
            workers: 2,
            dispatchers: 1,
            max_batch: 32,
            max_fuse: 8,
            ..RuntimeConfig::default()
        });
        let pat = pattern(83);
        let handles = rt.submit_batch(
            (0..6)
                .map(|_| JobSpec::f64(pat.clone(), |_i, r| contribution(r)))
                .collect(),
        );
        let oracle = sequential_reduce(&pat);
        for h in handles {
            let r = h.wait();
            assert!(r.error.is_none());
            assert_eq!(r.fused_with, 0, "dense f64 class must not fuse");
            for (a, b) in oracle.iter().zip(r.output.as_f64().unwrap()) {
                assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
            }
        }
        let stats = rt.stats();
        assert_eq!(stats.fused_sweeps, 0);
        assert_eq!(stats.fused_jobs, 0);
    }
}
