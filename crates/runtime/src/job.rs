//! Job descriptions, pattern signatures, and the blocking handles clients
//! wait on.
//!
//! A [`JobSpec`] is one reduction invocation: an access pattern plus a
//! contribution body (f64 or i64 flavored).  Submission assigns it a
//! [`PatternSignature`] — the hashed characterization-bucket key that the
//! sharded queue coalesces on and the profile store persists under — and
//! returns a [`JobHandle`] whose [`wait`](JobHandle::wait) blocks until
//! the dispatcher fills in the [`JobResult`].

use crate::error::JobError;
use smartapps_core::toolbox::DomainKey;
use smartapps_reductions::Scheme;
use smartapps_workloads::pattern::AccessPattern;
use smartapps_workloads::PatternChars;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Shared f64 contribution body.
pub type F64Body = Arc<dyn Fn(usize, usize) -> f64 + Send + Sync>;
/// Shared i64 contribution body.
pub type I64Body = Arc<dyn Fn(usize, usize) -> i64 + Send + Sync>;

/// The contribution function of a job, in one of the two element flavors
/// the service executes.
#[derive(Clone)]
pub enum JobBody {
    /// Floating-point reduction (tolerance-equal across schemes).
    F64(F64Body),
    /// Integer reduction (bit-equal across schemes).
    I64(I64Body),
}

/// The result array of a finished job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutput {
    /// Output of an [`JobBody::F64`] job.
    F64(Vec<f64>),
    /// Output of an [`JobBody::I64`] job.
    I64(Vec<i64>),
}

impl JobOutput {
    /// The f64 array, if this was an f64 job.
    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            JobOutput::F64(v) => Some(v),
            JobOutput::I64(_) => None,
        }
    }

    /// The i64 array, if this was an i64 job.
    pub fn as_i64(&self) -> Option<&[i64]> {
        match self {
            JobOutput::I64(v) => Some(v),
            JobOutput::F64(_) => None,
        }
    }

    /// Number of reduction elements.
    pub fn len(&self) -> usize {
        match self {
            JobOutput::F64(v) => v.len(),
            JobOutput::I64(v) => v.len(),
        }
    }

    /// Whether the result array is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One reduction invocation submitted to the runtime.
#[derive(Clone)]
pub struct JobSpec {
    /// The access pattern to reduce over (shared so coalesced repeats of
    /// the same pattern pay one allocation).
    pub pattern: Arc<AccessPattern>,
    /// The contribution body.
    pub body: JobBody,
    /// SPMD width override; `None` uses the pool width.
    pub threads: Option<usize>,
    /// Whether owner-computes (`lw`) is legal for this loop.
    pub lw_feasible: bool,
    /// Caller-declared legality flag for the simplification pass: the
    /// body's contribution depends only on the *iteration*, never on the
    /// reference slot within it (`body(i, r) == body(i, r')` for all
    /// slots of iteration `i`).  Like
    /// [`lw_feasible`](JobSpec::lw_feasible) this is a declaration the
    /// runtime cannot prove for an opaque closure — but it spot-checks it
    /// ([`probe_uniform`](smartapps_reductions::probe_uniform)) and a
    /// refuted declaration merely loses the rewrite, never the answer.
    pub uniform_body: bool,
}

impl JobSpec {
    /// An f64 job with default threading.
    pub fn f64(
        pattern: Arc<AccessPattern>,
        body: impl Fn(usize, usize) -> f64 + Send + Sync + 'static,
    ) -> Self {
        JobSpec {
            pattern,
            body: JobBody::F64(Arc::new(body)),
            threads: None,
            lw_feasible: false,
            uniform_body: false,
        }
    }

    /// An i64 job with default threading.
    pub fn i64(
        pattern: Arc<AccessPattern>,
        body: impl Fn(usize, usize) -> i64 + Send + Sync + 'static,
    ) -> Self {
        JobSpec {
            pattern,
            body: JobBody::I64(Arc::new(body)),
            threads: None,
            lw_feasible: false,
            uniform_body: false,
        }
    }

    /// Set an explicit SPMD width.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Mark owner-computes as legal.
    pub fn with_lw_feasible(mut self, feasible: bool) -> Self {
        self.lw_feasible = feasible;
        self
    }

    /// Declare the body iteration-uniform, making the job eligible for
    /// the simplification pass (see
    /// [`uniform_body`](JobSpec::uniform_body)).
    pub fn with_uniform_body(mut self, uniform: bool) -> Self {
        self.uniform_body = uniform;
        self
    }
}

/// The hashed "functioning domain" key of a pattern: characterization
/// measures of a sampled prefix, bucketed the way the ToolBox's
/// [`DomainKey`] buckets them, folded through FNV-1a.  Jobs with equal
/// signatures share queue shards, scheme decisions, and profile entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatternSignature(pub u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = FNV_OFFSET;
    for w in words {
        for b in w.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }
    h
}

impl PatternSignature {
    /// Compute the signature of a pattern by characterizing its first
    /// `sample_iters` iterations (the same cheap sampling the adaptive
    /// loop's drift check uses) and hashing the domain buckets together
    /// with the SPMD width the job will run at — schemes and calibrations
    /// measured at different widths must never share a profile entry.
    pub fn of(pat: &AccessPattern, sample_iters: usize, threads: usize) -> Self {
        let chars = PatternChars::measure(&pat.truncate_iterations(sample_iters));
        let key = DomainKey::of(&chars);
        let log2b = |x: usize| -> u64 {
            if x <= 1 {
                0
            } else {
                64 - (x as u64).leading_zeros() as u64
            }
        };
        PatternSignature(fnv1a([
            key.dim_bucket as u64,
            key.reuse_bucket as u64,
            key.sparsity_decile as u64,
            key.mo as u64,
            log2b(pat.num_elements),
            log2b(pat.num_iterations()),
            threads as u64,
        ]))
    }

    /// Signature of a ToolBox functioning domain (used when absorbing an
    /// [`AdaptiveReduction`]'s `PerformanceDb` into the profile store).
    ///
    /// [`AdaptiveReduction`]: smartapps_core::adaptive::AdaptiveReduction
    pub fn of_domain(loop_id: u64, key: &DomainKey) -> Self {
        PatternSignature(fnv1a([
            0x0d0_417, // domain-keyed namespace tag
            loop_id,
            key.dim_bucket as u64,
            key.reuse_bucket as u64,
            key.sparsity_decile as u64,
            key.mo as u64,
        ]))
    }
}

/// What the dispatcher reports back for one finished job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The reduced array.
    pub output: JobOutput,
    /// Scheme the dispatcher executed.
    pub scheme: Scheme,
    /// The execution's cost sample (excludes queueing): wall time of the
    /// scheme execution on the software backend, *simulated machine
    /// time* when the job was offloaded to the PCLR backend (see
    /// [`sim_cycles`](JobResult::sim_cycles)).  For a job that ran in a
    /// fused sweep this is the whole sweep's wall time — the per-job
    /// amortized cost is `elapsed / (fused_with + 1)`.
    pub elapsed: Duration,
    /// Simulated cycles, when the job ran on the PCLR hardware backend;
    /// `None` for software executions.
    pub sim_cycles: Option<u64>,
    /// Whether the scheme came from the profile store (no inspection paid).
    pub profile_hit: bool,
    /// How many other jobs shared this job's dispatch batch.
    pub batched_with: usize,
    /// How many other jobs shared this job's *fused execution sweep*
    /// (one traversal, multiple outputs); `0` when the job executed on
    /// its own traversal.  Always `<= batched_with`.
    pub fused_with: usize,
    /// `Some` when the job failed — see [`JobError`] for the failure
    /// categories.  The output is then empty and nothing was recorded in
    /// the profile store.
    pub error: Option<JobError>,
}

impl JobResult {
    /// The error message, if the job failed (convenience accessor).
    pub fn error_message(&self) -> Option<&str> {
        self.error.as_ref().map(JobError::message)
    }
}

pub(crate) struct JobState {
    slot: Mutex<Option<JobResult>>,
    cv: Condvar,
}

impl JobState {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(JobState {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    pub(crate) fn complete(&self, result: JobResult) {
        let mut g = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        debug_assert!(g.is_none(), "job completed twice");
        *g = Some(result);
        self.cv.notify_all();
    }
}

/// A blocking handle to a submitted job.
pub struct JobHandle {
    pub(crate) state: Arc<JobState>,
    pub(crate) signature: PatternSignature,
}

impl JobHandle {
    /// The signature the job was queued and profiled under.
    pub fn signature(&self) -> PatternSignature {
        self.signature
    }

    /// Block until the dispatcher finishes the job.
    pub fn wait(self) -> JobResult {
        let mut g = self.state.slot.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(r) = g.take() {
                return r;
            }
            g = self.state.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Block until the job finishes or `timeout` elapses.  `Some` consumes
    /// the result (unlike [`try_wait`](JobHandle::try_wait), which leaves
    /// it in place); `None` means the job is still running — the handle
    /// stays valid and a later `wait`/`try_wait`/`wait_timeout` will
    /// observe the result.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobResult> {
        let deadline = std::time::Instant::now() + timeout;
        let mut g = self.state.slot.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(r) = g.take() {
                return Some(r);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            g = self
                .state
                .cv
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(|p| p.into_inner())
                .0;
        }
    }

    /// Non-blocking poll; `Some` once the job has finished, **without**
    /// consuming the slot.
    ///
    /// Polling used to hand the result over exactly once, which made the
    /// natural poll-then-[`wait`](JobHandle::wait) pattern deadlock: the
    /// first `Some` emptied the slot, so the follow-up `wait` blocked
    /// forever on a job that was already done.  Now every ready poll
    /// returns a clone of the [`JobResult`] (output array included) and a
    /// later `wait`/`wait_timeout` still observes it.  When only
    /// completion matters, [`peek_done`](JobHandle::peek_done) avoids the
    /// clone.
    pub fn try_wait(&self) -> Option<JobResult> {
        self.state
            .slot
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Whether the job has finished and its result is still waiting in
    /// the slot — a clone-free probe, cheaper than
    /// [`try_wait`](JobHandle::try_wait) when the result itself isn't
    /// needed yet.  After the result has been consumed (by `wait` or
    /// `wait_timeout`) this returns `false` again.
    pub fn peek_done(&self) -> bool {
        self.state
            .slot
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartapps_workloads::{Distribution, PatternSpec};

    fn pat(seed: u64, n: usize) -> AccessPattern {
        PatternSpec {
            num_elements: n,
            iterations: 4000,
            refs_per_iter: 2,
            coverage: 1.0,
            dist: Distribution::Uniform,
            seed,
        }
        .generate()
    }

    #[test]
    fn equal_class_patterns_share_a_signature() {
        // Same spec, different seed: same buckets, same signature.
        let a = PatternSignature::of(&pat(1, 4096), 2048, 4);
        let b = PatternSignature::of(&pat(2, 4096), 2048, 4);
        assert_eq!(a, b);
        // A 64x larger array is a different domain.
        let c = PatternSignature::of(&pat(1, 262_144), 2048, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn domain_signatures_separate_loops() {
        let chars = PatternChars::measure(&pat(1, 1024));
        let key = DomainKey::of(&chars);
        assert_ne!(
            PatternSignature::of_domain(1, &key),
            PatternSignature::of_domain(2, &key)
        );
        assert_eq!(
            PatternSignature::of_domain(1, &key),
            PatternSignature::of_domain(1, &key)
        );
    }

    #[test]
    fn handle_blocks_until_completion() {
        let state = JobState::new();
        let handle = JobHandle {
            state: state.clone(),
            signature: PatternSignature(7),
        };
        let t = std::thread::spawn(move || handle.wait());
        std::thread::sleep(Duration::from_millis(20));
        state.complete(JobResult {
            output: JobOutput::I64(vec![3, 4]),
            scheme: Scheme::Rep,
            elapsed: Duration::from_millis(1),
            sim_cycles: None,
            profile_hit: false,
            batched_with: 0,
            fused_with: 0,
            error: None,
        });
        let r = t.join().unwrap();
        assert_eq!(r.output.as_i64(), Some(&[3i64, 4][..]));
        assert_eq!(r.output.len(), 2);
        assert!(!r.output.is_empty());
    }

    #[test]
    fn try_wait_polls() {
        let state = JobState::new();
        let handle = JobHandle {
            state: state.clone(),
            signature: PatternSignature(7),
        };
        assert!(handle.try_wait().is_none());
        assert!(!handle.peek_done());
        state.complete(JobResult {
            output: JobOutput::F64(vec![1.0]),
            scheme: Scheme::Hash,
            elapsed: Duration::ZERO,
            sim_cycles: None,
            profile_hit: true,
            batched_with: 3,
            fused_with: 0,
            error: None,
        });
        assert!(handle.peek_done(), "peek must see the result");
        assert!(handle.peek_done(), "peek must not consume it");
        let r = handle.try_wait().unwrap();
        assert!(r.profile_hit);
        assert_eq!(r.batched_with, 3);
        let again = handle.try_wait().expect("polling must not consume");
        assert_eq!(again.batched_with, 3);
        assert!(handle.peek_done(), "result still waiting after polls");
    }

    #[test]
    fn poll_then_wait_observes_the_same_result() {
        // Regression: `try_wait` used to take() the slot, so a client
        // that polled a ready handle and then called `wait` blocked
        // forever.  Now the poll clones and the wait still completes.
        let state = JobState::new();
        let handle = JobHandle {
            state: state.clone(),
            signature: PatternSignature(9),
        };
        state.complete(JobResult {
            output: JobOutput::I64(vec![11, 22]),
            scheme: Scheme::Simd,
            elapsed: Duration::from_micros(5),
            sim_cycles: None,
            profile_hit: false,
            batched_with: 0,
            fused_with: 0,
            error: None,
        });
        let polled = handle.try_wait().expect("ready");
        assert_eq!(polled.output.as_i64(), Some(&[11i64, 22][..]));
        let waited = handle.wait();
        assert_eq!(waited.output.as_i64(), Some(&[11i64, 22][..]));
        assert_eq!(waited.scheme, Scheme::Simd);
    }

    #[test]
    fn wait_timeout_times_out_then_delivers() {
        let state = JobState::new();
        let handle = JobHandle {
            state: state.clone(),
            signature: PatternSignature(7),
        };
        let t0 = std::time::Instant::now();
        assert!(handle.wait_timeout(Duration::from_millis(25)).is_none());
        assert!(t0.elapsed() >= Duration::from_millis(20));
        let t = std::thread::spawn(move || handle.wait_timeout(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(15));
        state.complete(JobResult {
            output: JobOutput::I64(vec![5]),
            scheme: Scheme::Rep,
            elapsed: Duration::ZERO,
            sim_cycles: None,
            profile_hit: false,
            batched_with: 0,
            fused_with: 0,
            error: None,
        });
        let r = t.join().unwrap().expect("completion must end the wait");
        assert_eq!(r.output.as_i64(), Some(&[5i64][..]));
    }
}
