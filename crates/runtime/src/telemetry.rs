//! The runtime's telemetry bundle: where the monitor half of the
//! paper's monitor→decide→execute loop becomes *distributions*, not
//! just counters.
//!
//! [`RuntimeTelemetry`] owns one [`Registry`] of latency histograms, one
//! [`TraceRing`] of per-job lifecycle events, and the epoch every trace
//! timestamp is relative to.  The dispatchers record at each lifecycle
//! edge (queue-wait, decide, execute — per scheme and per functioning
//! domain), the backend call-sites record wall time and simulated
//! cycles, and the calibrator records its per-sample prediction error.
//! The per-scheme histograms are pre-resolved into fixed arrays at
//! construction, so the dispatcher hot path touches only wait-free
//! atomics; dynamic-label series (domain classes, the server's
//! connections) pay one short registry probe.
//!
//! Since the provenance PR the bundle also carries the *attribution*
//! layer: per-[`Stage`] latency histograms
//! (`smartapps_stage_ns{stage=…}`), the per-class [`DecisionRecord`]
//! ledger behind the wire's `explain`, the decision-flip counter, and a
//! [slowest-N exemplar store](ExemplarStore) retaining each slow job's
//! decision record plus its full lifecycle [`TraceEvent`] — the data
//! `slowlog` serves.
//!
//! `docs/OBSERVABILITY.md` is the catalog of every metric name and
//! label recorded here and in `smartapps-server`.

use smartapps_core::DecisionRecord;
use smartapps_reductions::Scheme;
use smartapps_telemetry::{Exemplar, ExemplarStore, LogHistogram, Registry, TraceEvent, TraceRing};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Queue-wait (dequeue minus submit), per scheme.
pub const QUEUE_WAIT_NS: &str = "smartapps_queue_wait_ns";
/// Scheme-decision latency of a dispatch batch, per scheme decided.
pub const DECIDE_NS: &str = "smartapps_decide_ns";
/// Backend-reported execution cost, per scheme (simulated time for
/// `pclr`, wall time otherwise — the same cost sample the profile
/// store calibrates on).
pub const EXEC_NS: &str = "smartapps_exec_ns";
/// Backend-reported execution cost, per functioning domain
/// (`d{dim}r{reuse}s{sparsity}m{mo}` labels).
pub const EXEC_CLASS_NS: &str = "smartapps_exec_class_ns";
/// Wall-clock time spent inside a backend `execute`, per backend.
pub const BACKEND_WALL_NS: &str = "smartapps_backend_wall_ns";
/// Simulated machine cycles per PCLR offload.
pub const BACKEND_SIM_CYCLES: &str = "smartapps_backend_sim_cycles";
/// Calibrator per-sample relative prediction error, in parts per
/// million, per scheme.
pub const PREDICT_ERR_PPM: &str = "smartapps_predict_err_ppm";
/// Wall time of one rewritten (simplified) execution — probe plus
/// difference-array scan for the whole group — per recognized shape
/// (`prefix`/`suffix`/`window`/`interval` labels).
pub const SIMPLIFY_NS: &str = "smartapps_simplify_ns";
/// Per-job stage attribution, one series per pipeline [`Stage`]
/// (`queue`/`decide`/`simplify`/`exec`/`completion` recorded here from
/// each completed job's trace event; `write` recorded by the server's
/// delivery path).
pub const STAGE_NS: &str = "smartapps_stage_ns";
/// Counter: decisions whose winning scheme differed from the class's
/// previous recorded decision, labeled by the scheme flipped *to*.
pub const DECISION_FLIPS: &str = "smartapps_decision_flips";
/// Counter: slow-job exemplars displaced by slower samples (per-class
/// latency-floor evictions in the [`ExemplarStore`]).
pub const EXEMPLAR_EVICTIONS: &str = "smartapps_exemplar_evictions";

/// Every scheme, in the fixed index order the pre-resolved histogram
/// arrays use.
const SCHEMES: [Scheme; 8] = [
    Scheme::Seq,
    Scheme::Rep,
    Scheme::Ll,
    Scheme::Sel,
    Scheme::Lw,
    Scheme::Hash,
    Scheme::Pclr,
    Scheme::Simd,
];

fn scheme_index(scheme: Scheme) -> usize {
    SCHEMES.iter().position(|&s| s == scheme).unwrap_or(0)
}

/// The trace-tag code of a scheme (its index in the fixed order);
/// [`scheme_from_code`] is the inverse, for ring-dump readers.
pub fn scheme_code(scheme: Scheme) -> u8 {
    scheme_index(scheme) as u8
}

/// Decode a [`TraceEvent::scheme`] tag back to the scheme (`None` for
/// the `u8::MAX` "no scheme chosen" code).
pub fn scheme_from_code(code: u8) -> Option<Scheme> {
    SCHEMES.get(code as usize).copied()
}

/// One histogram per scheme, resolved once so recording is wait-free.
type PerScheme = [Arc<LogHistogram>; 8];

/// One pipeline stage of a job's end-to-end latency, in attribution
/// order.  The first five are derived from a completed job's
/// [`TraceEvent`] timestamps; [`Stage::Write`] is the server-side
/// completion-to-write tail the runtime cannot see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Submission → dispatcher dequeue.
    Queue,
    /// Dequeue → scheme selection done.
    Decide,
    /// Simplification-pass probe time (carved out of exec).
    Simplify,
    /// Decision → backend execution done, minus the simplify probe.
    Exec,
    /// Execution done → completion handed to the sink.
    Completion,
    /// Completion → reply bytes written (recorded by the server).
    Write,
}

impl Stage {
    /// All stages, in the fixed index order the pre-resolved histogram
    /// array uses.
    pub const ALL: [Stage; 6] = [
        Stage::Queue,
        Stage::Decide,
        Stage::Simplify,
        Stage::Exec,
        Stage::Completion,
        Stage::Write,
    ];

    /// The `stage` label value this stage records under.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Decide => "decide",
            Stage::Simplify => "simplify",
            Stage::Exec => "exec",
            Stage::Completion => "completion",
            Stage::Write => "write",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// A slow job retained in the exemplar store: its full lifecycle event
/// (timestamps → stage attribution) plus the decision record in force
/// when it completed (`None` when the job failed before a ranking ever
/// ran, e.g. quarantined at admission).
#[derive(Debug, Clone)]
pub struct SlowJob {
    /// The job's lifecycle trace event.
    pub event: TraceEvent,
    /// Decision provenance at completion time.
    pub record: Option<Arc<DecisionRecord>>,
}

/// Shared measurement state: the registry, the trace ring, and the
/// epoch all trace timestamps count from.
#[derive(Debug)]
pub struct RuntimeTelemetry {
    registry: Registry,
    trace: TraceRing,
    epoch: Instant,
    queue_wait: PerScheme,
    decide: PerScheme,
    exec: PerScheme,
    stages: [Arc<LogHistogram>; 6],
    decisions: Mutex<HashMap<u64, Arc<DecisionRecord>>>,
    exemplars: ExemplarStore<SlowJob>,
    eviction_counter: Arc<AtomicU64>,
}

impl Default for RuntimeTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl RuntimeTelemetry {
    /// Capacity of the lifecycle trace ring (most recent jobs kept).
    pub const TRACE_CAPACITY: usize = 4096;

    /// Slowest exemplars retained per job class.
    pub const EXEMPLARS_PER_CLASS: usize = 4;

    /// Job classes the exemplar store tracks at most.
    pub const EXEMPLAR_CLASSES: usize = 64;

    /// Decision-record ledger bound (classes beyond this evict an
    /// arbitrary older class — far above any realistic class count).
    const DECISION_CLASSES: usize = 1024;

    /// A fresh bundle with all per-scheme series registered.
    pub fn new() -> Self {
        let registry = Registry::new();
        let per_scheme = |name: &'static str| -> PerScheme {
            SCHEMES.map(|s| registry.histogram(name, "scheme", s.abbrev()))
        };
        RuntimeTelemetry {
            queue_wait: per_scheme(QUEUE_WAIT_NS),
            decide: per_scheme(DECIDE_NS),
            exec: per_scheme(EXEC_NS),
            stages: Stage::ALL.map(|s| registry.histogram(STAGE_NS, "stage", s.label())),
            decisions: Mutex::new(HashMap::new()),
            exemplars: ExemplarStore::new(Self::EXEMPLARS_PER_CLASS, Self::EXEMPLAR_CLASSES),
            eviction_counter: registry.counter(EXEMPLAR_EVICTIONS, "store", "slowlog"),
            trace: TraceRing::new(Self::TRACE_CAPACITY),
            epoch: Instant::now(),
            registry,
        }
    }

    /// The underlying registry — the server adds its per-connection
    /// series here so one exposition covers the whole process.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The job-lifecycle trace ring.
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// Nanoseconds since this bundle's epoch — the clock every
    /// [`TraceEvent`] timestamp is on.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// [`now_ns`](Self::now_ns) for an instant captured earlier
    /// (saturating to 0 for instants before the epoch).
    pub fn instant_ns(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    /// Record one queue-wait sample for a job decided to `scheme`.
    pub fn record_queue_wait(&self, scheme: Scheme, ns: u64) {
        self.queue_wait[scheme_index(scheme)].record(ns);
    }

    /// Record one batch's scheme-decision latency.
    pub fn record_decide(&self, scheme: Scheme, ns: u64) {
        self.decide[scheme_index(scheme)].record(ns);
    }

    /// Record one execution's backend-reported cost, per scheme and —
    /// when the functioning domain is known — per domain class.
    pub fn record_exec(&self, scheme: Scheme, domain_label: Option<&str>, ns: u64) {
        self.exec[scheme_index(scheme)].record(ns);
        if let Some(label) = domain_label {
            self.registry.record(EXEC_CLASS_NS, "domain", label, ns);
        }
    }

    /// Record one backend invocation under its name (`"software"`,
    /// `"simd"`, `"pclr"`): wall time, plus the simulated cycle count
    /// when the hardware backend ran it.
    pub fn record_backend(&self, backend: &'static str, wall_ns: u64, sim_cycles: Option<u64>) {
        self.registry
            .record(BACKEND_WALL_NS, "backend", backend, wall_ns);
        if let Some(cycles) = sim_cycles {
            self.registry
                .record(BACKEND_SIM_CYCLES, "backend", backend, cycles);
        }
    }

    /// Record one calibrator sample's relative prediction error
    /// (parts per million), per scheme.
    pub fn record_predict_err_ppm(&self, scheme: Scheme, ppm: u64) {
        self.registry
            .record(PREDICT_ERR_PPM, "scheme", scheme.abbrev(), ppm);
    }

    /// Record one simplified (rewritten-plan) execution under its
    /// recognized shape label.
    pub fn record_simplify(&self, shape: &'static str, ns: u64) {
        self.registry.record(SIMPLIFY_NS, "shape", shape, ns);
    }

    /// Push one lifecycle event onto the trace ring.
    pub fn trace_event(&self, event: &TraceEvent) {
        self.trace.push(event);
    }

    /// Record one sample into a stage-attribution series.
    pub fn record_stage(&self, stage: Stage, ns: u64) {
        self.stages[stage.index()].record(ns);
    }

    /// Record a job's full lifecycle: push the trace event, attribute
    /// its latency across the stage series (executed jobs only — a job
    /// rejected before decision has no stages to attribute), and offer
    /// it to the slow-job exemplar store under its class.
    pub fn record_lifecycle(&self, event: &TraceEvent, record: Option<Arc<DecisionRecord>>) {
        self.trace.push(event);
        if event.executed_ns > 0 {
            self.record_stage(Stage::Queue, event.stage_queue());
            self.record_stage(Stage::Decide, event.stage_decide());
            if event.simplify_ns > 0 {
                self.record_stage(Stage::Simplify, event.stage_simplify());
            }
            self.record_stage(Stage::Exec, event.stage_exec());
            self.record_stage(Stage::Completion, event.stage_completion());
        }
        let event = *event;
        self.exemplars
            .offer(event.signature, event.end_to_end(), || SlowJob {
                event,
                record,
            });
        self.eviction_counter
            .store(self.exemplars.evictions(), Ordering::Relaxed);
    }

    /// Store a class's latest decision record (stamped with `signature`),
    /// counting a decision flip — and bumping the
    /// [`DECISION_FLIPS`] counter — when the winner changed from the
    /// class's previous record.  Returns the stored record.
    pub fn record_decision(
        &self,
        signature: u64,
        mut record: DecisionRecord,
    ) -> Arc<DecisionRecord> {
        record.signature = signature;
        let mut map = self.decisions.lock().unwrap();
        if let Some(prev) = map.get(&signature) {
            record.flips = prev.flips;
            if prev.winner != record.winner {
                record.flips += 1;
                self.registry
                    .add(DECISION_FLIPS, "scheme", record.winner.abbrev(), 1);
            }
        } else if map.len() >= Self::DECISION_CLASSES {
            if let Some(&k) = map.keys().next() {
                map.remove(&k);
            }
        }
        let stored = Arc::new(record);
        map.insert(signature, stored.clone());
        stored
    }

    /// The latest decision record for a class, if one was ever ranked.
    pub fn decision(&self, signature: u64) -> Option<Arc<DecisionRecord>> {
        self.decisions.lock().unwrap().get(&signature).cloned()
    }

    /// Amend a class's latest decision record in place (gate verdicts
    /// and the execution backend land after the ranking).  Exemplars
    /// already holding the record keep the version they captured.
    pub fn amend_decision(&self, signature: u64, f: impl FnOnce(&mut DecisionRecord)) {
        let mut map = self.decisions.lock().unwrap();
        if let Some(rec) = map.get_mut(&signature) {
            f(Arc::make_mut(rec));
        }
    }

    /// The `n` slowest retained jobs across all classes, slowest first.
    pub fn slowlog(&self, n: usize) -> Vec<Exemplar<SlowJob>> {
        self.exemplars.top(n)
    }

    /// The slow-job exemplar store (bounds, floors, eviction count).
    pub fn exemplars(&self) -> &ExemplarStore<SlowJob> {
        &self.exemplars
    }
}

/// The `d{dim}r{reuse}s{sparsity}m{mo}` label a functioning domain
/// records under (the label scheme `docs/OBSERVABILITY.md` documents).
pub fn domain_label(domain: &smartapps_core::toolbox::DomainKey) -> String {
    format!(
        "d{}r{}s{}m{}",
        domain.dim_bucket, domain.reuse_bucket, domain.sparsity_decile, domain.mo
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartapps_core::toolbox::DomainKey;

    #[test]
    fn scheme_codes_round_trip() {
        for s in SCHEMES {
            assert_eq!(scheme_from_code(scheme_code(s)), Some(s));
        }
        assert_eq!(scheme_from_code(u8::MAX), None);
    }

    #[test]
    fn per_scheme_recording_lands_in_the_registry() {
        let t = RuntimeTelemetry::new();
        t.record_exec(Scheme::Hash, Some("d4r1s10m2"), 1500);
        t.record_queue_wait(Scheme::Hash, 80);
        t.record_decide(Scheme::Hash, 40);
        t.record_backend("software", 1500, None);
        t.record_backend("pclr", 900, Some(120));
        t.record_backend("simd", 700, None);
        t.record_simplify("window", 420);
        let text = t.registry().render_prometheus();
        assert!(text.contains("smartapps_simplify_ns_count{shape=\"window\"} 1"));
        assert!(text.contains("smartapps_exec_ns_count{scheme=\"hash\"} 1"));
        assert!(text.contains("smartapps_exec_class_ns_count{domain=\"d4r1s10m2\"} 1"));
        assert!(text.contains("smartapps_backend_wall_ns_count{backend=\"software\"} 1"));
        assert!(text.contains("smartapps_backend_sim_cycles_count{backend=\"pclr\"} 1"));
        assert!(text.contains("smartapps_backend_wall_ns_count{backend=\"simd\"} 1"));
        assert!(!text.contains("smartapps_backend_sim_cycles_count{backend=\"simd\"}"));
    }

    #[test]
    fn domain_label_matches_the_documented_scheme() {
        let d = DomainKey {
            dim_bucket: 12,
            reuse_bucket: 4,
            sparsity_decile: 10,
            mo: 2,
        };
        assert_eq!(domain_label(&d), "d12r4s10m2");
    }

    fn lifecycle_event(sig: u64, total_ns: u64) -> smartapps_telemetry::TraceEvent {
        smartapps_telemetry::TraceEvent {
            signature: sig,
            submitted_ns: 1000,
            queued_ns: 1100,
            decided_ns: 1200,
            executed_ns: 1000 + total_ns - 50,
            completed_ns: 1000 + total_ns,
            scheme: scheme_code(Scheme::Hash),
            backend: smartapps_telemetry::TraceBackend::Software,
            error: smartapps_telemetry::TraceError::None,
            fused: 1,
            simplify_ns: 20,
        }
    }

    #[test]
    fn lifecycle_recording_attributes_stages_and_retains_exemplars() {
        let t = RuntimeTelemetry::new();
        t.record_lifecycle(&lifecycle_event(7, 10_000), None);
        t.record_lifecycle(&lifecycle_event(7, 90_000), None);
        let text = t.registry().render_prometheus();
        for stage in ["queue", "decide", "simplify", "exec", "completion"] {
            assert!(
                text.contains(&format!("smartapps_stage_ns_count{{stage=\"{stage}\"}} 2")),
                "missing stage {stage}: {text}"
            );
        }
        let slow = t.slowlog(10);
        assert_eq!(slow.len(), 2);
        assert_eq!(slow[0].latency_ns, 90_000);
        assert_eq!(slow[0].payload.event.signature, 7);
        // Stage sums equal end-to-end for a fully-stamped event.
        let e = &slow[0].payload.event;
        assert_eq!(
            e.stage_queue()
                + e.stage_decide()
                + e.stage_simplify()
                + e.stage_exec()
                + e.stage_completion(),
            e.end_to_end()
        );
    }

    #[test]
    fn unexecuted_jobs_skip_stage_attribution() {
        let t = RuntimeTelemetry::new();
        let mut e = lifecycle_event(9, 5_000);
        e.decided_ns = 0;
        e.executed_ns = 0;
        e.simplify_ns = 0;
        t.record_lifecycle(&e, None);
        let text = t.registry().render_prometheus();
        assert!(!text.contains("smartapps_stage_ns"));
        // But the failure still lands in the ring and the slowlog.
        assert_eq!(t.trace().recorded(), 1);
        assert_eq!(t.slowlog(1).len(), 1);
    }

    #[test]
    fn decision_ledger_counts_flips_and_serves_the_latest_record() {
        use smartapps_core::Calibrator;
        use smartapps_reductions::ModelInput;
        use smartapps_workloads::{Distribution, PatternChars, PatternSpec};

        let t = RuntimeTelemetry::new();
        let cal = Calibrator::default();
        let pat = PatternSpec {
            num_elements: 1024,
            iterations: 5_000,
            refs_per_iter: 2,
            coverage: 1.0,
            dist: Distribution::Uniform,
            seed: 1,
        }
        .generate();
        let chars = PatternChars::measure(&pat);
        let d = DomainKey::of(&chars);
        let input = ModelInput {
            conflicting: ModelInput::estimate_conflicts(&chars, 2),
            replication: ModelInput::estimate_replication(&chars, 2),
            chars,
            threads: 2,
            lw_feasible: false,
            fanout: 1,
            pclr_available: false,
            simd_available: false,
        };
        let rec = cal.explain(&input, d);
        let stored = t.record_decision(42, rec.clone());
        assert_eq!(stored.signature, 42);
        assert_eq!(stored.flips, 0);
        assert_eq!(t.decision(42).unwrap().winner, stored.winner);
        // Same winner again: no flip.
        t.record_decision(42, rec.clone());
        assert_eq!(t.decision(42).unwrap().flips, 0);
        // Forced different winner: one flip, counter visible.
        let mut flipped = rec.clone();
        flipped.winner = if rec.winner == Scheme::Rep {
            Scheme::Hash
        } else {
            Scheme::Rep
        };
        t.record_decision(42, flipped);
        assert_eq!(t.decision(42).unwrap().flips, 1);
        assert!(t
            .registry()
            .render_prometheus()
            .contains("smartapps_decision_flips"));
        // Amendments land on the ledger copy.
        t.amend_decision(42, |r| r.backend = "simd");
        assert_eq!(t.decision(42).unwrap().backend, "simd");
        assert!(t.decision(999).is_none());
    }
}
