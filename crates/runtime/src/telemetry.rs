//! The runtime's telemetry bundle: where the monitor half of the
//! paper's monitor→decide→execute loop becomes *distributions*, not
//! just counters.
//!
//! [`RuntimeTelemetry`] owns one [`Registry`] of latency histograms, one
//! [`TraceRing`] of per-job lifecycle events, and the epoch every trace
//! timestamp is relative to.  The dispatchers record at each lifecycle
//! edge (queue-wait, decide, execute — per scheme and per functioning
//! domain), the backend call-sites record wall time and simulated
//! cycles, and the calibrator records its per-sample prediction error.
//! The per-scheme histograms are pre-resolved into fixed arrays at
//! construction, so the dispatcher hot path touches only wait-free
//! atomics; dynamic-label series (domain classes, the server's
//! connections) pay one short registry probe.
//!
//! `docs/OBSERVABILITY.md` is the catalog of every metric name and
//! label recorded here and in `smartapps-server`.

use smartapps_reductions::Scheme;
use smartapps_telemetry::{LogHistogram, Registry, TraceEvent, TraceRing};
use std::sync::Arc;
use std::time::Instant;

/// Queue-wait (dequeue minus submit), per scheme.
pub const QUEUE_WAIT_NS: &str = "smartapps_queue_wait_ns";
/// Scheme-decision latency of a dispatch batch, per scheme decided.
pub const DECIDE_NS: &str = "smartapps_decide_ns";
/// Backend-reported execution cost, per scheme (simulated time for
/// `pclr`, wall time otherwise — the same cost sample the profile
/// store calibrates on).
pub const EXEC_NS: &str = "smartapps_exec_ns";
/// Backend-reported execution cost, per functioning domain
/// (`d{dim}r{reuse}s{sparsity}m{mo}` labels).
pub const EXEC_CLASS_NS: &str = "smartapps_exec_class_ns";
/// Wall-clock time spent inside a backend `execute`, per backend.
pub const BACKEND_WALL_NS: &str = "smartapps_backend_wall_ns";
/// Simulated machine cycles per PCLR offload.
pub const BACKEND_SIM_CYCLES: &str = "smartapps_backend_sim_cycles";
/// Calibrator per-sample relative prediction error, in parts per
/// million, per scheme.
pub const PREDICT_ERR_PPM: &str = "smartapps_predict_err_ppm";
/// Wall time of one rewritten (simplified) execution — probe plus
/// difference-array scan for the whole group — per recognized shape
/// (`prefix`/`suffix`/`window`/`interval` labels).
pub const SIMPLIFY_NS: &str = "smartapps_simplify_ns";

/// Every scheme, in the fixed index order the pre-resolved histogram
/// arrays use.
const SCHEMES: [Scheme; 8] = [
    Scheme::Seq,
    Scheme::Rep,
    Scheme::Ll,
    Scheme::Sel,
    Scheme::Lw,
    Scheme::Hash,
    Scheme::Pclr,
    Scheme::Simd,
];

fn scheme_index(scheme: Scheme) -> usize {
    SCHEMES.iter().position(|&s| s == scheme).unwrap_or(0)
}

/// The trace-tag code of a scheme (its index in the fixed order);
/// [`scheme_from_code`] is the inverse, for ring-dump readers.
pub fn scheme_code(scheme: Scheme) -> u8 {
    scheme_index(scheme) as u8
}

/// Decode a [`TraceEvent::scheme`] tag back to the scheme (`None` for
/// the `u8::MAX` "no scheme chosen" code).
pub fn scheme_from_code(code: u8) -> Option<Scheme> {
    SCHEMES.get(code as usize).copied()
}

/// One histogram per scheme, resolved once so recording is wait-free.
type PerScheme = [Arc<LogHistogram>; 8];

/// Shared measurement state: the registry, the trace ring, and the
/// epoch all trace timestamps count from.
#[derive(Debug)]
pub struct RuntimeTelemetry {
    registry: Registry,
    trace: TraceRing,
    epoch: Instant,
    queue_wait: PerScheme,
    decide: PerScheme,
    exec: PerScheme,
}

impl Default for RuntimeTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl RuntimeTelemetry {
    /// Capacity of the lifecycle trace ring (most recent jobs kept).
    pub const TRACE_CAPACITY: usize = 4096;

    /// A fresh bundle with all per-scheme series registered.
    pub fn new() -> Self {
        let registry = Registry::new();
        let per_scheme = |name: &'static str| -> PerScheme {
            SCHEMES.map(|s| registry.histogram(name, "scheme", s.abbrev()))
        };
        RuntimeTelemetry {
            queue_wait: per_scheme(QUEUE_WAIT_NS),
            decide: per_scheme(DECIDE_NS),
            exec: per_scheme(EXEC_NS),
            trace: TraceRing::new(Self::TRACE_CAPACITY),
            epoch: Instant::now(),
            registry,
        }
    }

    /// The underlying registry — the server adds its per-connection
    /// series here so one exposition covers the whole process.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The job-lifecycle trace ring.
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// Nanoseconds since this bundle's epoch — the clock every
    /// [`TraceEvent`] timestamp is on.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// [`now_ns`](Self::now_ns) for an instant captured earlier
    /// (saturating to 0 for instants before the epoch).
    pub fn instant_ns(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    /// Record one queue-wait sample for a job decided to `scheme`.
    pub fn record_queue_wait(&self, scheme: Scheme, ns: u64) {
        self.queue_wait[scheme_index(scheme)].record(ns);
    }

    /// Record one batch's scheme-decision latency.
    pub fn record_decide(&self, scheme: Scheme, ns: u64) {
        self.decide[scheme_index(scheme)].record(ns);
    }

    /// Record one execution's backend-reported cost, per scheme and —
    /// when the functioning domain is known — per domain class.
    pub fn record_exec(&self, scheme: Scheme, domain_label: Option<&str>, ns: u64) {
        self.exec[scheme_index(scheme)].record(ns);
        if let Some(label) = domain_label {
            self.registry.record(EXEC_CLASS_NS, "domain", label, ns);
        }
    }

    /// Record one backend invocation under its name (`"software"`,
    /// `"simd"`, `"pclr"`): wall time, plus the simulated cycle count
    /// when the hardware backend ran it.
    pub fn record_backend(&self, backend: &'static str, wall_ns: u64, sim_cycles: Option<u64>) {
        self.registry
            .record(BACKEND_WALL_NS, "backend", backend, wall_ns);
        if let Some(cycles) = sim_cycles {
            self.registry
                .record(BACKEND_SIM_CYCLES, "backend", backend, cycles);
        }
    }

    /// Record one calibrator sample's relative prediction error
    /// (parts per million), per scheme.
    pub fn record_predict_err_ppm(&self, scheme: Scheme, ppm: u64) {
        self.registry
            .record(PREDICT_ERR_PPM, "scheme", scheme.abbrev(), ppm);
    }

    /// Record one simplified (rewritten-plan) execution under its
    /// recognized shape label.
    pub fn record_simplify(&self, shape: &'static str, ns: u64) {
        self.registry.record(SIMPLIFY_NS, "shape", shape, ns);
    }

    /// Push one lifecycle event onto the trace ring.
    pub fn trace_event(&self, event: &TraceEvent) {
        self.trace.push(event);
    }
}

/// The `d{dim}r{reuse}s{sparsity}m{mo}` label a functioning domain
/// records under (the label scheme `docs/OBSERVABILITY.md` documents).
pub fn domain_label(domain: &smartapps_core::toolbox::DomainKey) -> String {
    format!(
        "d{}r{}s{}m{}",
        domain.dim_bucket, domain.reuse_bucket, domain.sparsity_decile, domain.mo
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartapps_core::toolbox::DomainKey;

    #[test]
    fn scheme_codes_round_trip() {
        for s in SCHEMES {
            assert_eq!(scheme_from_code(scheme_code(s)), Some(s));
        }
        assert_eq!(scheme_from_code(u8::MAX), None);
    }

    #[test]
    fn per_scheme_recording_lands_in_the_registry() {
        let t = RuntimeTelemetry::new();
        t.record_exec(Scheme::Hash, Some("d4r1s10m2"), 1500);
        t.record_queue_wait(Scheme::Hash, 80);
        t.record_decide(Scheme::Hash, 40);
        t.record_backend("software", 1500, None);
        t.record_backend("pclr", 900, Some(120));
        t.record_backend("simd", 700, None);
        t.record_simplify("window", 420);
        let text = t.registry().render_prometheus();
        assert!(text.contains("smartapps_simplify_ns_count{shape=\"window\"} 1"));
        assert!(text.contains("smartapps_exec_ns_count{scheme=\"hash\"} 1"));
        assert!(text.contains("smartapps_exec_class_ns_count{domain=\"d4r1s10m2\"} 1"));
        assert!(text.contains("smartapps_backend_wall_ns_count{backend=\"software\"} 1"));
        assert!(text.contains("smartapps_backend_sim_cycles_count{backend=\"pclr\"} 1"));
        assert!(text.contains("smartapps_backend_wall_ns_count{backend=\"simd\"} 1"));
        assert!(!text.contains("smartapps_backend_sim_cycles_count{backend=\"simd\"}"));
    }

    #[test]
    fn domain_label_matches_the_documented_scheme() {
        let d = DomainKey {
            dim_bucket: 12,
            reuse_bucket: 4,
            sparsity_decile: 10,
            mo: 2,
        };
        assert_eq!(domain_label(&d), "d12r4s10m2");
    }
}
