//! # smartapps-runtime — the persistent reduction service
//!
//! The paper's SmartApps vision is a *continuously running* adaptive
//! system: inspect → decide → execute → monitor → adapt (Figure 1).  The
//! library crates implement each stage; this crate makes them a service —
//! the long-lived process shape that amortizes setup and analysis across
//! many invocations, which is where the real speedup of run-time
//! optimization lives.
//!
//! Three pieces, each its own module:
//!
//! * [`pool`] — a **persistent worker pool** ([`WorkerPool`]): fixed
//!   threads, parked on condvars when idle, implementing the
//!   `SpmdExecutor` seam from `smartapps-reductions`.  Reduction
//!   invocations pay zero thread-creation cost on the hot path.
//! * [`queue`](crate::runtime) + [`job`] — a **sharded job queue with
//!   batch submission**: [`Runtime::submit`] / [`Runtime::submit_batch`]
//!   accept jobs from any number of client threads, shard them by
//!   [`PatternSignature`], and coalesce same-class jobs into one dispatch
//!   batch sharing a single scheme decision.  [`JobHandle::wait`] blocks
//!   for the result.
//! * [`profile`] — a **cross-run profile store** ([`ProfileStore`]):
//!   signature → best known scheme + calibration, saved to a text file at
//!   shutdown and loaded at startup, so a restarted service skips full
//!   inspection for workload classes it has seen before.
//!
//! ## Example
//!
//! ```
//! use smartapps_runtime::{JobSpec, Runtime};
//! use smartapps_workloads::{contribution, Distribution, PatternSpec};
//! use std::sync::Arc;
//!
//! let rt = Runtime::with_workers(4);
//! let pat = Arc::new(
//!     PatternSpec {
//!         num_elements: 2048,
//!         iterations: 10_000,
//!         refs_per_iter: 2,
//!         coverage: 1.0,
//!         dist: Distribution::Uniform,
//!         seed: 5,
//!     }
//!     .generate(),
//! );
//! // First job of a class pays the inspection ...
//! let first = rt.run(JobSpec::f64(pat.clone(), |_i, r| contribution(r)));
//! assert!(!first.profile_hit);
//! // ... repeats are served from the profile store.
//! let again = rt.run(JobSpec::f64(pat, |_i, r| contribution(r)));
//! assert!(again.profile_hit);
//! assert_eq!(again.scheme, first.scheme);
//! ```

#![warn(missing_docs)]

pub mod job;
pub mod pool;
pub mod profile;
pub(crate) mod queue;
pub mod runtime;
pub mod stats;

pub use job::{JobBody, JobHandle, JobOutput, JobResult, JobSpec, PatternSignature};
pub use pool::WorkerPool;
pub use profile::{ProfileEntry, ProfileStore};
pub use runtime::{Runtime, RuntimeConfig};
pub use stats::{RuntimeStats, StatsSnapshot};
