//! # smartapps-runtime — the persistent reduction service
//!
//! The paper's SmartApps vision is a *continuously running* adaptive
//! system: inspect → decide → execute → monitor → adapt (Figure 1).  The
//! library crates implement each stage; this crate makes them a service —
//! the long-lived process shape that amortizes setup and analysis across
//! many invocations, which is where the real speedup of run-time
//! optimization lives.
//!
//! Five pieces, each its own module:
//!
//! * [`pool`] — a **persistent worker pool** ([`WorkerPool`]): fixed
//!   threads, parked on condvars when idle, implementing the
//!   `SpmdExecutor` seam from `smartapps-reductions`.  Reduction
//!   invocations pay zero thread-creation cost on the hot path.
//! * [`runtime`] + [`job`] — a **sharded job queue served by N
//!   shard-affine dispatchers**: [`Runtime::submit`] /
//!   [`Runtime::submit_batch`] accept jobs from any number of client
//!   threads and shard them by [`PatternSignature`]; each dispatcher owns
//!   a subset of shards and steals batches from overloaded peers when its
//!   own drain, so no single consumer caps the job rate.  Same-class jobs
//!   coalesce into one dispatch batch sharing a single scheme decision,
//!   and same-*pattern* members of a batch execute as one **fused sweep**
//!   — one traversal producing every output.  [`JobHandle::wait`] blocks
//!   for the result.
//! * [`profile`] — a **cross-run profile store** ([`ProfileStore`]):
//!   signature → best known scheme + calibration, saved to a text file at
//!   shutdown and loaded at startup, so a restarted service skips full
//!   inspection for workload classes it has seen before.
//! * [`backend`] — the **execution-backend seam** ([`Backend`]): the
//!   dispatcher decides a scheme, a backend executes it and reports a
//!   cost sample.  [`SoftwareBackend`] runs the reduction library on the
//!   pool; [`PclrBackend`] lowers the job to PCLR instruction traces and
//!   runs the paper's simulated hardware (`smartapps-sim`), making the
//!   hardware scheme a first-class competitor in the same profile store.
//! * [`completion`] — the **completion-driven frontend**
//!   ([`CompletionSet`]): [`Runtime::submit_tagged`] routes finished
//!   results onto a bounded MPSC completion queue instead of per-handle
//!   condvars, so one consumer thread multiplexes thousands of in-flight
//!   jobs — the seam `smartapps-server` turns into a network service.
//! * [`error`] — the **structured job failure channel** ([`JobError`]):
//!   every failed job reports a typed [`JobErrorKind`] (body panic,
//!   rejected submission, shutdown race, quarantined class) next to its
//!   message.
//!
//! ## Example
//!
//! ```
//! use smartapps_runtime::{JobSpec, Runtime};
//! use smartapps_workloads::{contribution, Distribution, PatternSpec};
//! use std::sync::Arc;
//!
//! let rt = Runtime::with_workers(4);
//! let pat = Arc::new(
//!     PatternSpec {
//!         num_elements: 2048,
//!         iterations: 10_000,
//!         refs_per_iter: 2,
//!         coverage: 1.0,
//!         dist: Distribution::Uniform,
//!         seed: 5,
//!     }
//!     .generate(),
//! );
//! // First job of a class pays the inspection ...
//! let first = rt.run(JobSpec::f64(pat.clone(), |_i, r| contribution(r)));
//! assert!(!first.profile_hit);
//! // ... repeats are served from the profile store.
//! let again = rt.run(JobSpec::f64(pat, |_i, r| contribution(r)));
//! assert!(again.profile_hit);
//! assert_eq!(again.scheme, first.scheme);
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod completion;
pub mod error;
pub mod intern;
pub mod job;
pub mod pool;
pub mod profile;
pub(crate) mod queue;
pub mod runtime;
pub mod stats;
pub mod telemetry;

pub use backend::{
    Backend, ExecOutcome, ExecRequest, PclrBackend, PclrConfig, SimdBackend, SoftwareBackend,
};
pub use completion::{Completion, CompletionSet};
pub use error::{JobError, JobErrorKind};
pub use intern::{InternError, Interned, PatternInterner};
pub use job::{JobBody, JobHandle, JobOutput, JobResult, JobSpec, PatternSignature};
pub use pool::WorkerPool;
pub use profile::{ProfileEntry, ProfileStore};
pub use runtime::{CalibrationConfig, Runtime, RuntimeConfig};
pub use stats::{RuntimeStats, StatsSnapshot};
pub use telemetry::{RuntimeTelemetry, SlowJob, Stage};
