//! The persistent worker pool: fixed threads, parked when idle, woken by
//! per-worker mailboxes.
//!
//! This is the paper's "warm SPMD workers" made literal: a reduction
//! service handling many invocations cannot afford to create and destroy
//! OS threads per call (the [`SpawnExecutor`] path), so the pool keeps
//! `width - 1` workers parked on condvars and implements [`SpmdExecutor`]
//! by broadcasting the SPMD body to them.  The calling thread always
//! executes `tid 0` itself, so a pool of width `P` runs `P`-way regions
//! with `P - 1` wakeups and zero thread creation.
//!
//! [`SpawnExecutor`]: smartapps_reductions::SpawnExecutor

use smartapps_reductions::SpmdExecutor;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One dispatched SPMD task: the lifetime-erased body, which tid to run it
/// as, and the latch to count down when done.
struct Task {
    /// SAFETY invariant: the referent outlives the task because
    /// [`WorkerPool::spmd`] blocks on `latch` before returning.
    body: &'static (dyn Fn(usize) + Sync),
    tid: usize,
    latch: Arc<Latch>,
}

/// Completion latch for one `spmd` round.
struct Latch {
    remaining: Mutex<usize>,
    cv: Condvar,
    /// First worker-side panic payload of the round, preserved so the
    /// caller re-raises the body's actual panic, not a generic one.
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            cv: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn count_down(&self) {
        let mut g = self.remaining.lock().unwrap_or_else(|p| p.into_inner());
        *g -= 1;
        if *g == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut g = self.remaining.lock().unwrap_or_else(|p| p.into_inner());
        while *g > 0 {
            g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// A worker's inbox.  A queue (not a single slot) so that overlapping
/// `spmd` calls from different client threads never overwrite each other's
/// dispatch.
struct Mailbox {
    tasks: Mutex<VecDeque<Task>>,
    cv: Condvar,
}

/// A fixed-width pool of persistent, parked worker threads implementing
/// [`SpmdExecutor`].
///
/// Dropping the pool joins every worker.
pub struct WorkerPool {
    mailboxes: Vec<Arc<Mailbox>>,
    handles: Vec<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
    width: usize,
    /// Rotating dispatch offset so concurrent narrow regions spread over
    /// the whole pool instead of all piling onto the first mailboxes.
    next_start: AtomicUsize,
}

impl WorkerPool {
    /// Create a pool of SPMD width `width` (≥ 1): `width - 1` parked
    /// worker threads plus the calling thread, which always executes
    /// `tid 0` of every region.
    pub fn new(width: usize) -> Self {
        assert!(width >= 1, "pool width must be at least 1");
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut mailboxes = Vec::with_capacity(width - 1);
        let mut handles = Vec::with_capacity(width - 1);
        for w in 0..width - 1 {
            let mb = Arc::new(Mailbox {
                tasks: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
            });
            mailboxes.push(mb.clone());
            let stop = shutdown.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("smartapps-worker-{w}"))
                    .spawn(move || worker_loop(&mb, &stop))
                    .expect("spawn pool worker"),
            );
        }
        WorkerPool {
            mailboxes,
            handles,
            shutdown,
            width,
            next_start: AtomicUsize::new(0),
        }
    }

    /// The pool's SPMD width (worker threads + the calling thread).
    pub fn width(&self) -> usize {
        self.width
    }
}

fn worker_loop(mb: &Mailbox, shutdown: &AtomicBool) {
    loop {
        let task = {
            let mut g = mb.tasks.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(t) = g.pop_front() {
                    break t;
                }
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                g = mb.cv.wait(g).unwrap_or_else(|p| p.into_inner());
            }
        };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (task.body)(task.tid))) {
            task.latch
                .panic
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .get_or_insert(payload);
        }
        task.latch.count_down();
    }
}

impl SpmdExecutor for WorkerPool {
    /// Run the region on parked workers.  If `threads` exceeds the pool
    /// width, the overflow tids run sequentially on the calling thread —
    /// legal because SPMD bodies only rely on the completion barrier,
    /// never on tids overlapping in time (see
    /// `smartapps_reductions::spmd`).
    fn spmd(&self, threads: usize, body: &(dyn Fn(usize) + Sync)) {
        assert!(threads >= 1, "spmd needs at least one thread");
        if threads == 1 {
            body(0);
            return;
        }
        let dispatched = (threads - 1).min(self.mailboxes.len());
        let base = if dispatched < self.mailboxes.len() {
            self.next_start.fetch_add(1, Ordering::Relaxed)
        } else {
            0
        };
        let latch = Arc::new(Latch::new(dispatched));
        // SAFETY: the erased borrow is only reachable through `Task`s
        // counted by `latch`, and this function does not return before
        // `latch.wait()` observes all of them finished; the referent
        // therefore strictly outlives every use.
        let erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(body) };
        for w in 0..dispatched {
            let mb = &self.mailboxes[(base + w) % self.mailboxes.len()];
            let mut g = mb.tasks.lock().unwrap_or_else(|p| p.into_inner());
            g.push_back(Task {
                body: erased,
                tid: w + 1,
                latch: latch.clone(),
            });
            drop(g);
            mb.cv.notify_one();
        }
        // The caller runs tid 0 plus any overflow beyond the pool width.
        let mine = catch_unwind(AssertUnwindSafe(|| {
            body(0);
            for tid in dispatched + 1..threads {
                body(tid);
            }
        }));
        latch.wait();
        match mine {
            Err(payload) => resume_unwind(payload),
            Ok(()) => {
                let worker_panic = latch.panic.lock().unwrap_or_else(|p| p.into_inner()).take();
                if let Some(payload) = worker_panic {
                    resume_unwind(payload);
                }
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        for mb in &self.mailboxes {
            let _g = mb.tasks.lock().unwrap_or_else(|p| p.into_inner());
            mb.cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pool_runs_every_tid_once() {
        let pool = WorkerPool::new(4);
        for threads in [1usize, 2, 4] {
            let counts: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
            pool.spmd(threads, &|t| {
                counts[t].fetch_add(1, Ordering::Relaxed);
            });
            for (t, c) in counts.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "threads={threads} tid={t}");
            }
        }
    }

    #[test]
    fn overflow_beyond_width_still_covers_all_tids() {
        let pool = WorkerPool::new(2);
        let counts: Vec<AtomicUsize> = (0..7).map(|_| AtomicUsize::new(0)).collect();
        pool.spmd(7, &|t| {
            counts[t].fetch_add(1, Ordering::Relaxed);
        });
        for (t, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "tid {t}");
        }
    }

    #[test]
    fn pool_is_reusable_many_times() {
        let pool = WorkerPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..500 {
            pool.spmd(3, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 1500);
    }

    #[test]
    fn concurrent_spmd_calls_do_not_interfere() {
        let pool = Arc::new(WorkerPool::new(4));
        let total = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = pool.clone();
                let total = total.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        pool.spmd(3, &|_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 100 * 3);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = WorkerPool::new(3);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.spmd(3, &|t| {
                if t == 2 {
                    panic!("boom");
                }
            });
        }));
        // tid 2 runs on a worker; its original payload must reach us.
        let payload = result.unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));
        // The pool must survive a panicked round.
        let hits = AtomicUsize::new(0);
        pool.spmd(3, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }
}
