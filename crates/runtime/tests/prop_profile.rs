//! Property tests for the cross-run profile store's on-disk format:
//! save→load→save is a fixed point for arbitrary entries — including
//! hardware (`pclr`) records — and malformed lines are dropped without
//! poisoning the valid entries around them.

use proptest::prelude::*;
use smartapps_core::calibrate::{CorrLevel, Correction};
use smartapps_core::toolbox::DomainKey;
use smartapps_reductions::Scheme;
use smartapps_runtime::{PatternSignature, ProfileStore};
use std::time::Duration;

fn arb_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::Seq),
        Just(Scheme::Rep),
        Just(Scheme::Ll),
        Just(Scheme::Sel),
        Just(Scheme::Lw),
        Just(Scheme::Hash),
        Just(Scheme::Pclr),
    ]
}

/// One recorded measurement: signature, scheme, width, reference count,
/// elapsed nanoseconds.
type Rec = (u64, Scheme, usize, usize, u64);

fn arb_records() -> impl Strategy<Value = Vec<Rec>> {
    proptest::collection::vec(
        (
            any::<u64>(),
            arb_scheme(),
            0usize..300,
            1usize..2_000_000,
            1u64..50_000_000_000,
        ),
        0..40,
    )
}

fn store_of(records: &[Rec]) -> ProfileStore {
    let mut s = ProfileStore::new();
    for &(sig, scheme, threads, refs, ns) in records {
        s.record(
            PatternSignature(sig),
            scheme,
            threads,
            refs,
            Duration::from_nanos(ns),
        );
    }
    s
}

/// Clearly malformed lines (each shape fails a different parse step).
fn arb_garbage_line() -> impl Strategy<Value = String> {
    prop_oneof![
        // Too few fields.
        (any::<u64>(), arb_scheme()).prop_map(|(s, sch)| format!("{s:016x} {sch} 4")),
        // Unknown scheme.
        any::<u64>().prop_map(|s| format!("{s:016x} warp 4 1.0 1 10")),
        // Non-hex signature.
        Just("not-a-signature rep 4 1.0 1 10".to_string()),
        // Non-finite calibration.
        any::<u64>().prop_map(|s| format!("{s:016x} rep 4 inf 1 10")),
        // Unparsable counters.
        any::<u64>().prop_map(|s| format!("{s:016x} hash x 1.0 one ten")),
        // Trailing junk after a plausible record.
        any::<u64>().prop_map(|s| format!("{s:016x} ll 4 1.0 1 10 extra")),
        // Malformed calibration records: bad value, bad flag, bad scheme,
        // bad domain, trailing junk, truncated cyc.
        any::<u32>().prop_map(|d| format!("corr rep {d:08x} s nope 3")),
        any::<u32>().prop_map(|d| format!("corr rep {d:08x} q 1.0 3")),
        any::<u32>().prop_map(|d| format!("corr warp {d:08x} s 1.0 3")),
        Just("corr rep zzzzzzzz s 1.0 3".to_string()),
        any::<u32>().prop_map(|d| format!("corr rep {d:08x} s 1.0 3 extra")),
        Just("cyc 1.0".to_string()),
        Just("cyc -2.0 5".to_string()),
    ]
}

/// One persisted calibration record (level, value, updates).
fn arb_corr() -> impl Strategy<Value = (CorrLevel, Correction)> {
    let level = prop_oneof![
        Just(CorrLevel::Global),
        (arb_scheme(), any::<bool>()).prop_map(|(s, f)| CorrLevel::Scheme(s, f)),
        (arb_scheme(), any::<u32>(), any::<bool>()).prop_map(|(s, d, f)| CorrLevel::Class(
            s,
            DomainKey::unpack(d),
            f
        )),
    ];
    (level, 1e-6f64..1e9, 0u64..100_000).prop_map(|(l, v, n)| (l, Correction::seeded(v, n)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn save_load_save_is_a_fixed_point(records in arb_records()) {
        let store = store_of(&records);
        let text = store.to_text();
        let reloaded = ProfileStore::from_text(&text).unwrap();
        prop_assert_eq!(reloaded.last_load_skipped(), 0);
        prop_assert_eq!(reloaded.len(), store.len());
        // The second save must reproduce the first byte-for-byte: the
        // format loses nothing and serializes deterministically.
        prop_assert_eq!(&reloaded.to_text(), &text);
        // And every entry survives semantically, not just textually.
        for &(sig, ..) in &records {
            prop_assert_eq!(
                reloaded.get(PatternSignature(sig)),
                store.get(PatternSignature(sig))
            );
        }
    }

    #[test]
    fn malformed_lines_do_not_poison_valid_entries(
        records in arb_records(),
        garbage in proptest::collection::vec(arb_garbage_line(), 1..10),
        salt in any::<u64>(),
    ) {
        let store = store_of(&records);
        let clean = store.to_text();
        // Splice the garbage between valid lines, position keyed by salt.
        let mut lines: Vec<&str> = clean.lines().collect();
        for (k, g) in garbage.iter().enumerate() {
            let pos = 1 + (salt as usize + k) % lines.len();
            lines.insert(pos.min(lines.len()), g);
        }
        let dirty = lines.join("\n");
        let reloaded = ProfileStore::from_text(&dirty).unwrap();
        prop_assert_eq!(reloaded.last_load_skipped(), garbage.len());
        prop_assert_eq!(reloaded.len(), store.len());
        for &(sig, ..) in &records {
            prop_assert_eq!(
                reloaded.get(PatternSignature(sig)),
                store.get(PatternSignature(sig)),
                "entry {:016x} damaged by adjacent garbage", sig
            );
        }
    }

    #[test]
    fn calibration_records_survive_the_fixed_point(
        records in arb_records(),
        corr in proptest::collection::vec(arb_corr(), 1..20),
        cyc_some in any::<bool>(),
        cyc_val in 1e-6f64..1e3,
        cyc_n in 1u64..1000,
    ) {
        let cyc = cyc_some.then_some((cyc_val, cyc_n));
        let mut store = store_of(&records);
        store.set_calibration(corr.clone());
        if let Some((v, n)) = cyc {
            store.set_cycle_fit(Correction::seeded(v, n));
        }
        let expected: std::collections::HashMap<_, _> = corr.into_iter().collect();
        let text = store.to_text();
        let reloaded = ProfileStore::from_text(&text).unwrap();
        prop_assert_eq!(reloaded.last_load_skipped(), 0);
        prop_assert_eq!(reloaded.calibration_len(), expected.len());
        for (level, c) in reloaded.calibration() {
            let orig = expected.get(&level).expect("level must round-trip");
            prop_assert_eq!(orig.updates, c.updates);
            // `{:e}` + parse round-trips f64 exactly for these magnitudes.
            prop_assert_eq!(orig.ns_per_unit, c.ns_per_unit);
        }
        prop_assert_eq!(reloaded.cycle_fit().map(|c| c.updates), cyc.map(|(_, n)| n));
        // The second save reproduces the first byte-for-byte.
        prop_assert_eq!(&reloaded.to_text(), &text);
        // Entry records are untouched by calibration ride-alongs.
        prop_assert_eq!(reloaded.len(), store.len());
    }

    #[test]
    fn disk_round_trip_preserves_everything(records in arb_records()) {
        let dir = std::env::temp_dir().join("smartapps-prop-profile");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("store-{}.txt", std::process::id()));
        let store = store_of(&records);
        store.save(&path).unwrap();
        let back = ProfileStore::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(back.to_text(), store.to_text());
    }
}
