//! Property tests for the cross-run profile store's on-disk format:
//! save→load→save is a fixed point for arbitrary entries — including
//! hardware (`pclr`) records — and malformed lines are dropped without
//! poisoning the valid entries around them.

use proptest::prelude::*;
use smartapps_reductions::Scheme;
use smartapps_runtime::{PatternSignature, ProfileStore};
use std::time::Duration;

fn arb_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::Seq),
        Just(Scheme::Rep),
        Just(Scheme::Ll),
        Just(Scheme::Sel),
        Just(Scheme::Lw),
        Just(Scheme::Hash),
        Just(Scheme::Pclr),
    ]
}

/// One recorded measurement: signature, scheme, width, reference count,
/// elapsed nanoseconds.
type Rec = (u64, Scheme, usize, usize, u64);

fn arb_records() -> impl Strategy<Value = Vec<Rec>> {
    proptest::collection::vec(
        (
            any::<u64>(),
            arb_scheme(),
            0usize..300,
            1usize..2_000_000,
            1u64..50_000_000_000,
        ),
        0..40,
    )
}

fn store_of(records: &[Rec]) -> ProfileStore {
    let mut s = ProfileStore::new();
    for &(sig, scheme, threads, refs, ns) in records {
        s.record(
            PatternSignature(sig),
            scheme,
            threads,
            refs,
            Duration::from_nanos(ns),
        );
    }
    s
}

/// Clearly malformed lines (each shape fails a different parse step).
fn arb_garbage_line() -> impl Strategy<Value = String> {
    prop_oneof![
        // Too few fields.
        (any::<u64>(), arb_scheme()).prop_map(|(s, sch)| format!("{s:016x} {sch} 4")),
        // Unknown scheme.
        any::<u64>().prop_map(|s| format!("{s:016x} warp 4 1.0 1 10")),
        // Non-hex signature.
        Just("not-a-signature rep 4 1.0 1 10".to_string()),
        // Non-finite calibration.
        any::<u64>().prop_map(|s| format!("{s:016x} rep 4 inf 1 10")),
        // Unparsable counters.
        any::<u64>().prop_map(|s| format!("{s:016x} hash x 1.0 one ten")),
        // Trailing junk after a plausible record.
        any::<u64>().prop_map(|s| format!("{s:016x} ll 4 1.0 1 10 extra")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn save_load_save_is_a_fixed_point(records in arb_records()) {
        let store = store_of(&records);
        let text = store.to_text();
        let reloaded = ProfileStore::from_text(&text).unwrap();
        prop_assert_eq!(reloaded.last_load_skipped(), 0);
        prop_assert_eq!(reloaded.len(), store.len());
        // The second save must reproduce the first byte-for-byte: the
        // format loses nothing and serializes deterministically.
        prop_assert_eq!(&reloaded.to_text(), &text);
        // And every entry survives semantically, not just textually.
        for &(sig, ..) in &records {
            prop_assert_eq!(
                reloaded.get(PatternSignature(sig)),
                store.get(PatternSignature(sig))
            );
        }
    }

    #[test]
    fn malformed_lines_do_not_poison_valid_entries(
        records in arb_records(),
        garbage in proptest::collection::vec(arb_garbage_line(), 1..10),
        salt in any::<u64>(),
    ) {
        let store = store_of(&records);
        let clean = store.to_text();
        // Splice the garbage between valid lines, position keyed by salt.
        let mut lines: Vec<&str> = clean.lines().collect();
        for (k, g) in garbage.iter().enumerate() {
            let pos = 1 + (salt as usize + k) % lines.len();
            lines.insert(pos.min(lines.len()), g);
        }
        let dirty = lines.join("\n");
        let reloaded = ProfileStore::from_text(&dirty).unwrap();
        prop_assert_eq!(reloaded.last_load_skipped(), garbage.len());
        prop_assert_eq!(reloaded.len(), store.len());
        for &(sig, ..) in &records {
            prop_assert_eq!(
                reloaded.get(PatternSignature(sig)),
                store.get(PatternSignature(sig)),
                "entry {:016x} damaged by adjacent garbage", sig
            );
        }
    }

    #[test]
    fn disk_round_trip_preserves_everything(records in arb_records()) {
        let dir = std::env::temp_dir().join("smartapps-prop-profile");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("store-{}.txt", std::process::id()));
        let store = store_of(&records);
        store.save(&path).unwrap();
        let back = ProfileStore::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(back.to_text(), store.to_text());
    }
}
