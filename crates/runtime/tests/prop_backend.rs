//! Property tests for the PCLR hardware backend: for arbitrary access
//! patterns, the result read back from the simulated machine equals the
//! software sequential oracle — bit-exact for integer reductions,
//! within reassociation tolerance for floating point — and repeated
//! runs are deterministic down to the cycle count.
//!
//! Patterns are kept small: the event-driven simulator runs orders of
//! magnitude slower than native execution, and these cases each build
//! and drain a whole machine.

use proptest::prelude::*;
use smartapps_reductions::Scheme;
use smartapps_runtime::backend::{Backend, ExecRequest, PclrBackend, PclrConfig};
use smartapps_runtime::JobSpec;
use smartapps_workloads::pattern::{sequential_reduce, sequential_reduce_i64};
use smartapps_workloads::{
    contribution, contribution_i64, AccessPattern, Distribution, PatternSpec,
};
use std::sync::Arc;

/// Strategy: small CSR patterns (empty iterations, duplicate indices,
/// single elements — the shapes that break address/partition math).
fn arb_pattern() -> impl Strategy<Value = AccessPattern> {
    (1usize..120, 0usize..60, 0usize..4).prop_flat_map(|(n, iters, max_refs)| {
        proptest::collection::vec(
            proptest::collection::vec(0u32..n as u32, 0..=max_refs),
            iters..=iters,
        )
        .prop_map(move |lists| AccessPattern::from_iters(n, &lists))
    })
}

/// Strategy: small generator-driven patterns.
fn arb_generated() -> impl Strategy<Value = AccessPattern> {
    (
        8usize..400,
        1usize..120,
        1usize..4,
        10u32..100,
        prop_oneof![
            Just(Distribution::Uniform),
            (4u32..32).prop_map(|w| Distribution::Clustered { window: w }),
        ],
        any::<u64>(),
    )
        .prop_map(|(n, iters, refs, cov_pct, dist, seed)| {
            PatternSpec {
                num_elements: n,
                iterations: iters,
                refs_per_iter: refs,
                coverage: cov_pct as f64 / 100.0,
                dist,
                seed,
            }
            .generate()
        })
}

fn run_pclr(backend: &PclrBackend, pat: &Arc<AccessPattern>, spec: &JobSpec) -> (Vec<i64>, u64) {
    let out = backend.execute(&ExecRequest {
        pattern: pat,
        body: &spec.body,
        threads: backend.config().nodes,
        scheme: Scheme::Pclr,
        inspection: None,
    });
    (
        out.output.as_i64().unwrap().to_vec(),
        out.sim_cycles.expect("pclr reports cycles"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pclr_equals_i64_oracle_on_arbitrary_patterns(
        pat in arb_pattern(),
        nodes in 1usize..5,
    ) {
        let backend = PclrBackend::new(PclrConfig { nodes, ..PclrConfig::default() });
        let pat = Arc::new(pat);
        let spec = JobSpec::i64(pat.clone(), |i, r| {
            contribution_i64(r).wrapping_add(i as i64)
        });
        let (got, cycles) = run_pclr(&backend, &pat, &spec);
        let mut oracle = vec![0i64; pat.num_elements];
        for (i, r, x) in pat.iter_refs() {
            oracle[x as usize] += contribution_i64(r).wrapping_add(i as i64);
        }
        prop_assert_eq!(&got, &oracle, "nodes {}", backend.config().nodes);
        prop_assert!(cycles > 0);
    }

    #[test]
    fn pclr_equals_both_oracles_on_generated_patterns(pat in arb_generated()) {
        let backend = PclrBackend::new(PclrConfig { nodes: 4, ..PclrConfig::default() });
        let pat = Arc::new(pat);
        // Integer flavor: exact.
        let spec = JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r));
        let (got, _) = run_pclr(&backend, &pat, &spec);
        prop_assert_eq!(&got, &sequential_reduce_i64(&pat));
        // Float flavor: reassociated like any parallel scheme.
        let spec = JobSpec::f64(pat.clone(), |_i, r| contribution(r));
        let out = backend.execute(&ExecRequest {
            pattern: &pat,
            body: &spec.body,
            threads: 4,
            scheme: Scheme::Pclr,
            inspection: None,
        });
        let oracle = sequential_reduce(&pat);
        for (e, (a, b)) in oracle.iter().zip(out.output.as_f64().unwrap()).enumerate() {
            prop_assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                "element {}: {} vs {}", e, a, b
            );
        }
    }

    #[test]
    fn pclr_execution_is_deterministic(pat in arb_generated()) {
        // Same job, same machine, twice: identical values *and* cycles —
        // the property the oracle tests (and profile calibration) pin on.
        let backend = PclrBackend::new(PclrConfig { nodes: 2, ..PclrConfig::default() });
        let pat = Arc::new(pat);
        let spec = JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r));
        let (a, cycles_a) = run_pclr(&backend, &pat, &spec);
        let (b, cycles_b) = run_pclr(&backend, &pat, &spec);
        prop_assert_eq!(a, b);
        prop_assert_eq!(cycles_a, cycles_b);
    }
}
