//! Property tests of the SIMD backend's numerics policy (see
//! `docs/MODEL.md`): for arbitrary access patterns — including the
//! degenerate CSR shapes (empty iterations, duplicate indices, single
//! elements) that break lane/stripe math —
//!
//! * **i64 is bit-exact** against the sequential oracle: integer sums
//!   are associative, so lane striping must not change a single bit;
//! * **f64 is run-to-run bit-identical**: the kernel's blocked
//!   summation order is fixed, so the same job produces the same bits
//!   every execution (repeatability the calibrator and the oracle
//!   harness both pin on);
//! * **f64 stays within the documented reassociation bound** of the
//!   sequential left-fold oracle (`1e-9` relative per element for
//!   these magnitudes).

use proptest::prelude::*;
use smartapps_reductions::Scheme;
use smartapps_runtime::backend::{Backend, ExecRequest, SimdBackend};
use smartapps_runtime::{JobSpec, WorkerPool};
use smartapps_workloads::pattern::{sequential_reduce, sequential_reduce_i64};
use smartapps_workloads::{
    contribution, contribution_i64, AccessPattern, Distribution, PatternSpec,
};
use std::sync::Arc;

/// Strategy: small CSR patterns with awkward shapes.
fn arb_pattern() -> impl Strategy<Value = AccessPattern> {
    (1usize..120, 0usize..60, 0usize..4).prop_flat_map(|(n, iters, max_refs)| {
        proptest::collection::vec(
            proptest::collection::vec(0u32..n as u32, 0..=max_refs),
            iters..=iters,
        )
        .prop_map(move |lists| AccessPattern::from_iters(n, &lists))
    })
}

/// Strategy: small generator-driven patterns across distributions.
fn arb_generated() -> impl Strategy<Value = AccessPattern> {
    (
        8usize..400,
        1usize..160,
        1usize..4,
        10u32..100,
        prop_oneof![
            Just(Distribution::Uniform),
            (4u32..32).prop_map(|w| Distribution::Clustered { window: w }),
        ],
        any::<u64>(),
    )
        .prop_map(|(n, iters, refs, cov_pct, dist, seed)| {
            PatternSpec {
                num_elements: n,
                iterations: iters,
                refs_per_iter: refs,
                coverage: cov_pct as f64 / 100.0,
                dist,
                seed,
            }
            .generate()
        })
}

fn run_simd_i64(
    backend: &SimdBackend,
    pat: &Arc<AccessPattern>,
    spec: &JobSpec,
    threads: usize,
) -> Vec<i64> {
    let out = backend.execute(&ExecRequest {
        pattern: pat,
        body: &spec.body,
        threads,
        scheme: Scheme::Simd,
        inspection: None,
    });
    assert!(out.sim_cycles.is_none(), "simd is a wall-clock backend");
    out.output.as_i64().unwrap().to_vec()
}

fn run_simd_f64(
    backend: &SimdBackend,
    pat: &Arc<AccessPattern>,
    spec: &JobSpec,
    threads: usize,
) -> Vec<f64> {
    backend
        .execute(&ExecRequest {
            pattern: pat,
            body: &spec.body,
            threads,
            scheme: Scheme::Simd,
            inspection: None,
        })
        .output
        .as_f64()
        .unwrap()
        .to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn simd_is_bit_exact_against_the_i64_oracle(
        pat in arb_pattern(),
        threads in 1usize..5,
    ) {
        let backend = SimdBackend::new(Arc::new(WorkerPool::new(threads)));
        let pat = Arc::new(pat);
        let spec = JobSpec::i64(pat.clone(), |i, r| {
            contribution_i64(r).wrapping_add(i as i64)
        });
        let got = run_simd_i64(&backend, &pat, &spec, threads);
        let mut oracle = vec![0i64; pat.num_elements];
        for (i, r, x) in pat.iter_refs() {
            oracle[x as usize] += contribution_i64(r).wrapping_add(i as i64);
        }
        prop_assert_eq!(&got, &oracle, "threads {}", threads);
    }

    #[test]
    fn simd_i64_matches_the_scalar_oracle_on_generated_patterns(pat in arb_generated()) {
        let backend = SimdBackend::new(Arc::new(WorkerPool::new(4)));
        let pat = Arc::new(pat);
        let spec = JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r));
        let got = run_simd_i64(&backend, &pat, &spec, 4);
        prop_assert_eq!(&got, &sequential_reduce_i64(&pat));
    }

    #[test]
    fn simd_f64_is_run_to_run_bit_identical_and_near_the_oracle(
        pat in arb_generated(),
        threads in 1usize..5,
    ) {
        let backend = SimdBackend::new(Arc::new(WorkerPool::new(threads)));
        let pat = Arc::new(pat);
        let spec = JobSpec::f64(pat.clone(), |_i, r| contribution(r));
        let first = run_simd_f64(&backend, &pat, &spec, threads);
        // Fixed blocked summation order: repeated runs reproduce every
        // bit, NaN payloads and signed zeros included.
        for run in 0..3 {
            let again = run_simd_f64(&backend, &pat, &spec, threads);
            prop_assert_eq!(first.len(), again.len());
            for (e, (a, b)) in first.iter().zip(&again).enumerate() {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "run {} element {}: {} vs {}", run, e, a, b
                );
            }
        }
        // Divergence from the sequential left fold is bounded
        // reassociation error, not drift.
        let oracle = sequential_reduce(&pat);
        for (e, (a, b)) in oracle.iter().zip(&first).enumerate() {
            prop_assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                "element {}: {} vs {}", e, a, b
            );
        }
    }
}
