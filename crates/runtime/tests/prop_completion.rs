//! Property tests for the completion subsystem's delivery contract:
//! under arbitrary interleavings of tagged submissions (valid, invalid,
//! and panicking) with consumer polls/waits/drains, the [`CompletionSet`]
//! delivers **exactly one** completion per token — none lost, none
//! duplicated — and clean results still match the sequential oracle.
//!
//! The consumer side races the dispatchers on purpose: polls interleave
//! with submissions, drains happen mid-storm, and the final sweep uses
//! `wait_any` until the set reports dry (`in_flight == 0`), which is
//! itself part of the contract under test.

use proptest::prelude::*;
use smartapps_runtime::{Completion, CompletionSet, JobErrorKind, JobSpec, Runtime, RuntimeConfig};
use smartapps_workloads::pattern::sequential_reduce_i64;
use smartapps_workloads::{contribution_i64, AccessPattern, Distribution, PatternSpec};
use std::collections::HashMap;
use std::sync::Arc;

/// What one scripted step does: submit a job of some flavor, or consume.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Submit a clean job of workload class `0..CLASSES`.
    SubmitClean(usize),
    /// Submit a structurally invalid job (rejected before queueing).
    SubmitInvalid,
    /// Submit a job whose body panics.
    SubmitPanic(usize),
    /// Non-blocking poll.
    Poll,
    /// Drain everything currently queued.
    Drain,
    /// Bounded wait.
    WaitTimeout,
}

const CLASSES: usize = 3;

fn arb_op() -> impl Strategy<Value = Op> {
    // Submissions dominate (the vendored stand-in's `prop_oneof` has no
    // weights, so the bias is written out as repeated variants).
    prop_oneof![
        (0usize..CLASSES).prop_map(Op::SubmitClean),
        (0usize..CLASSES).prop_map(Op::SubmitClean),
        (0usize..CLASSES).prop_map(Op::SubmitClean),
        Just(Op::SubmitInvalid),
        (0usize..CLASSES).prop_map(Op::SubmitPanic),
        Just(Op::Poll),
        Just(Op::Poll),
        Just(Op::Drain),
        Just(Op::WaitTimeout),
    ]
}

fn class_pattern(class: usize) -> Arc<AccessPattern> {
    Arc::new(
        PatternSpec {
            num_elements: 300,
            iterations: 400,
            refs_per_iter: 2,
            coverage: 0.9,
            dist: Distribution::Uniform,
            seed: 7000 + class as u64,
        }
        .generate(),
    )
}

fn broken_pattern() -> Arc<AccessPattern> {
    Arc::new(AccessPattern {
        num_elements: 2,
        iter_ptr: vec![0, 1],
        indices: vec![9],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn completion_set_delivers_exactly_once_per_token(
        ops in proptest::collection::vec(arb_op(), 1..60),
        capacity in 1usize..64,
    ) {
        let rt = Runtime::new(RuntimeConfig {
            workers: 2,
            shards: 4,
            dispatchers: 2,
            ..RuntimeConfig::default()
        });
        let set = CompletionSet::with_capacity(capacity);
        let classes: Vec<Arc<AccessPattern>> = (0..CLASSES).map(class_pattern).collect();
        let oracles: Vec<Vec<i64>> = classes.iter().map(|p| sequential_reduce_i64(p)).collect();

        // token → (class, expect) bookkeeping for every submission.
        #[derive(Clone, Copy, PartialEq, Debug)]
        enum Expect { Value(usize), Rejected, Panic }
        let mut submitted: HashMap<u64, Expect> = HashMap::new();
        let mut received: HashMap<u64, Completion> = HashMap::new();
        let mut token = 0u64;

        let record = |c: Completion, received: &mut HashMap<u64, Completion>| {
            prop_assert!(
                received.insert(c.token, c.clone()).is_none(),
                "token {} delivered twice", c.token
            );
            Ok(())
        };

        for op in ops {
            match op {
                Op::SubmitClean(class) => {
                    submitted.insert(token, Expect::Value(class));
                    rt.submit_tagged(
                        JobSpec::i64(classes[class].clone(), |_i, r| contribution_i64(r)),
                        token,
                        &set,
                    );
                    token += 1;
                }
                Op::SubmitInvalid => {
                    submitted.insert(token, Expect::Rejected);
                    rt.submit_tagged(JobSpec::i64(broken_pattern(), |_i, _r| 1), token, &set);
                    token += 1;
                }
                Op::SubmitPanic(class) => {
                    submitted.insert(token, Expect::Panic);
                    rt.submit_tagged(
                        JobSpec::i64(classes[class].clone(), |_i, _r| panic!("prop poison")),
                        token,
                        &set,
                    );
                    token += 1;
                }
                Op::Poll => {
                    if let Some(c) = set.poll() {
                        record(c, &mut received)?;
                    }
                }
                Op::Drain => {
                    for c in set.drain() {
                        record(c, &mut received)?;
                    }
                }
                Op::WaitTimeout => {
                    if let Some(c) = set.wait_timeout(std::time::Duration::from_millis(5)) {
                        record(c, &mut received)?;
                    }
                }
            }
        }

        // Final sweep: wait_any must hand over every outstanding event
        // and then — and only then — report the set dry.
        while let Some(c) = set.wait_any() {
            record(c, &mut received)?;
        }
        prop_assert_eq!(set.in_flight(), 0);
        prop_assert_eq!(received.len(), submitted.len(), "lost or phantom completions");

        for (tok, expect) in &submitted {
            let c = &received[tok];
            match expect {
                Expect::Value(class) => {
                    prop_assert!(c.result.error.is_none(), "token {}: {:?}", tok, c.result.error);
                    prop_assert_eq!(c.result.output.as_i64().unwrap(), &oracles[*class][..]);
                }
                Expect::Rejected => {
                    prop_assert_eq!(
                        c.result.error.as_ref().map(|e| e.kind),
                        Some(JobErrorKind::Rejected)
                    );
                }
                Expect::Panic => {
                    prop_assert_eq!(
                        c.result.error.as_ref().map(|e| e.kind),
                        Some(JobErrorKind::Panic)
                    );
                }
            }
        }
        rt.shutdown();
    }

    #[test]
    fn mixed_sinks_each_deliver_exactly_once(
        jobs in 1usize..24,
        seed in 0u64..1000,
    ) {
        // The three delivery channels — handle, tagged queue, callback —
        // share the dispatcher path; interleaved submissions must reach
        // exactly their own sink, exactly once.
        let rt = Runtime::new(RuntimeConfig {
            workers: 2,
            shards: 4,
            dispatchers: 2,
            ..RuntimeConfig::default()
        });
        let set = CompletionSet::with_capacity(16);
        let pat = class_pattern((seed % CLASSES as u64) as usize);
        let oracle = sequential_reduce_i64(&pat);
        let via_callback = Arc::new(std::sync::Mutex::new(Vec::<Completion>::new()));

        let mut handles = Vec::new();
        let mut tagged = 0usize;
        let mut callbacks = 0usize;
        for j in 0..jobs {
            match (seed as usize + j) % 3 {
                0 => handles.push(rt.submit(JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)))),
                1 => {
                    rt.submit_tagged(
                        JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)),
                        j as u64,
                        &set,
                    );
                    tagged += 1;
                }
                _ => {
                    let sink = via_callback.clone();
                    rt.submit_callback(
                        JobSpec::i64(pat.clone(), |_i, r| contribution_i64(r)),
                        j as u64,
                        move |c| sink.lock().unwrap().push(c),
                    );
                    callbacks += 1;
                }
            }
        }
        for h in handles {
            let r = h.wait();
            prop_assert!(r.error.is_none());
            prop_assert_eq!(r.output.as_i64().unwrap(), &oracle[..]);
        }
        let mut seen_tagged = 0usize;
        while let Some(c) = set.wait_any() {
            prop_assert!(c.result.error.is_none());
            prop_assert_eq!(c.result.output.as_i64().unwrap(), &oracle[..]);
            seen_tagged += 1;
        }
        prop_assert_eq!(seen_tagged, tagged);
        // Callbacks fire on dispatcher threads; the runtime shutdown
        // joins them, so afterwards every callback has run.
        rt.shutdown();
        let got = via_callback.lock().unwrap();
        prop_assert_eq!(got.len(), callbacks);
        let mut cb_tokens: Vec<u64> = got.iter().map(|c| c.token).collect();
        cb_tokens.sort_unstable();
        cb_tokens.dedup();
        prop_assert_eq!(cb_tokens.len(), callbacks, "duplicate callback delivery");
    }
}
