//! Differential property tests of the simplification pass (see
//! `docs/MODEL.md`): a runtime with `simplify: true` must be
//! *semantically invisible* relative to one with the pass disabled —
//! the rewrite may only change how fast an answer arrives, never which
//! answer arrives.
//!
//! * **i64 is bit-exact** across the two engines: the difference-array
//!   rewrite works in the wrapping-integer group, so recognized jobs
//!   must reproduce the normal pipeline's sums to the bit;
//! * **f64 is run-to-run bit-identical** when simplified (the scan's
//!   sequential order is fixed) and tolerance-equal to the pass-through
//!   engine (bounded reassociation, not drift);
//! * **near-miss patterns are never mis-rewritten**: a single corrupted
//!   row (aliased slot, reversed run, off-by-one gap) must structurally
//!   reject and fall through to the normal pipeline with the exact
//!   answer;
//! * **lying uniformity declarations are refuted**: a slot-dependent
//!   body declared iteration-uniform must lose the rewrite — and only
//!   the rewrite, never the answer.

use proptest::prelude::*;
use smartapps_reductions::{recognize, CostGuard};
use smartapps_runtime::{JobSpec, Runtime, RuntimeConfig};
use smartapps_workloads::pattern::sequential_reduce_i64;
use smartapps_workloads::{contribution, contribution_i64, AccessPattern};
use std::sync::Arc;

fn runtime(simplify: bool) -> Runtime {
    Runtime::new(RuntimeConfig {
        workers: 2,
        dispatchers: 1,
        simplify,
        ..RuntimeConfig::default()
    })
}

/// Rows of a sliding window: iteration `i` reads the contiguous run
/// starting at `(i * stride) % (n - width + 1)`.
fn window_rows(n: usize, iters: usize, width: usize, stride: usize) -> Vec<Vec<u32>> {
    (0..iters)
        .map(|i| {
            let lo = (i * stride) % (n - width + 1);
            (lo as u32..(lo + width) as u32).collect()
        })
        .collect()
}

/// Strategy: patterns from the three recognized scan families —
/// overlapping windows, growing prefixes, shrinking suffixes — at sizes
/// that straddle the default cost guard (some recognized, some declined
/// as unprofitable; both paths must agree with the pass-through engine).
fn arb_scan_pattern() -> impl Strategy<Value = AccessPattern> {
    (64usize..512, 64usize..2048, 2usize..24, 1usize..8, 0u8..3).prop_map(
        |(n, iters, width, stride, family)| {
            let width = width.min(n - 1);
            let rows: Vec<Vec<u32>> = match family {
                0 => window_rows(n, iters, width, stride),
                1 => (0..iters).map(|i| (0..=(i % n) as u32).collect()).collect(),
                _ => (0..iters)
                    .map(|i| ((i % n) as u32..n as u32).collect())
                    .collect(),
            };
            AccessPattern::from_iters(n, &rows)
        },
    )
}

/// Per-element oracle for an iteration-uniform i64 body, accumulated in
/// the same wrapping group the engine uses.
fn oracle_i64(pat: &AccessPattern, body: impl Fn(usize) -> i64) -> Vec<i64> {
    let mut out = vec![0i64; pat.num_elements];
    for (i, _r, x) in pat.iter_refs() {
        out[x as usize] = out[x as usize].wrapping_add(body(i));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn simplified_i64_is_bit_exact_against_the_pass_through_runtime(
        pat in arb_scan_pattern(),
        scale in 1i64..100,
    ) {
        let pat = Arc::new(pat);
        // Modest magnitudes: the pass-through pipeline may sum with a
        // checked `+`, so keep totals far from i64::MAX.
        let body = move |i: usize, _r: usize| (i as i64 + 1).wrapping_mul(scale);
        let on = runtime(true);
        let off = runtime(false);
        let got = on
            .submit(JobSpec::i64(pat.clone(), body).with_uniform_body(true))
            .wait();
        let want = off
            .submit(JobSpec::i64(pat.clone(), body).with_uniform_body(true))
            .wait();
        prop_assert!(got.error.is_none());
        prop_assert!(want.error.is_none());
        prop_assert_eq!(
            got.output.as_i64().unwrap(),
            want.output.as_i64().unwrap()
        );
        // The pass fires exactly when the recognizer accepts the class.
        let expect = recognize(&pat, &CostGuard::default()).is_ok();
        prop_assert_eq!(on.stats().simplified_jobs > 0, expect);
        prop_assert_eq!(off.stats().simplified_jobs, 0);
        prop_assert_eq!(off.stats().simplify_rejects, 0);
    }

    #[test]
    fn simplified_f64_is_deterministic_and_tolerance_equal(
        pat in arb_scan_pattern(),
    ) {
        let pat = Arc::new(pat);
        let body = |i: usize, _r: usize| contribution(i);
        let on = runtime(true);
        let runs: Vec<Vec<f64>> = (0..3)
            .map(|_| {
                on.submit(JobSpec::f64(pat.clone(), body).with_uniform_body(true))
                    .wait()
                    .output
                    .as_f64()
                    .unwrap()
                    .to_vec()
            })
            .collect();
        // The rewrite's scan order is fixed, so simplified reruns
        // reproduce every bit (the pass-through pipeline makes no such
        // promise across scheme choices, so only assert when it fired).
        if on.stats().simplified_jobs >= 3 {
            for run in &runs[1..] {
                prop_assert!(
                    runs[0].iter().zip(run).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "simplified f64 rerun changed bits"
                );
            }
        }
        let off = runtime(false);
        let want = off
            .submit(JobSpec::f64(pat.clone(), body).with_uniform_body(true))
            .wait();
        for (e, (a, b)) in want.output.as_f64().unwrap().iter().zip(&runs[0]).enumerate() {
            prop_assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                "element {}: {} vs {}", e, a, b
            );
        }
    }

    #[test]
    fn near_miss_patterns_are_never_mis_rewritten(
        (n, iters, width, stride) in (64usize..256, 128usize..1024, 3usize..16, 1usize..6),
        row_pick in any::<usize>(),
        slot_pick in any::<usize>(),
        defect in 0u8..3,
    ) {
        let width = width.min(n - 1);
        let mut rows = window_rows(n, iters, width, stride);
        // One corrupted row: any single-element change to a strictly
        // ascending run produces a duplicate, a gap, or a descent — all
        // structural rejects the recognizer must catch.
        let r = row_pick % iters;
        match defect {
            0 => {
                let j = 1 + slot_pick % (width - 1);
                rows[r][j] = rows[r][j - 1];
            }
            1 => rows[r].reverse(),
            _ => {
                let j = slot_pick % width;
                rows[r][j] = (rows[r][j] + 1) % n as u32;
            }
        }
        let pat = Arc::new(AccessPattern::from_iters(n, &rows));
        prop_assert!(
            recognize(&pat, &CostGuard { min_refs: 1, min_gain: 0.0 }).is_err(),
            "corruption must break recognition"
        );
        let body = |i: usize, _r: usize| i as i64 + 1;
        let on = runtime(true);
        let got = on
            .submit(JobSpec::i64(pat.clone(), body).with_uniform_body(true))
            .wait();
        prop_assert!(got.error.is_none());
        prop_assert_eq!(
            got.output.as_i64().unwrap(),
            &oracle_i64(&pat, |i| i as i64 + 1)
        );
        let stats = on.stats();
        prop_assert_eq!(stats.simplified_jobs, 0);
        prop_assert_eq!(stats.simplify_rejects, 1);
    }

    #[test]
    fn slot_dependent_bodies_declared_uniform_pass_through_exactly(
        pat in arb_scan_pattern(),
    ) {
        let pat = Arc::new(pat);
        // A lying declaration: the body reads the reference slot, which
        // the rewrite would collapse to each row's first slot.  The
        // probe must refute it and the normal pipeline must answer.
        let body = |_i: usize, r: usize| contribution_i64(r);
        let on = runtime(true);
        let got = on
            .submit(JobSpec::i64(pat.clone(), body).with_uniform_body(true))
            .wait();
        prop_assert!(got.error.is_none());
        prop_assert_eq!(
            got.output.as_i64().unwrap(),
            &sequential_reduce_i64(&pat)
        );
        let stats = on.stats();
        prop_assert_eq!(stats.simplified_jobs, 0);
        prop_assert_eq!(stats.simplify_rejects, 1);
    }
}
