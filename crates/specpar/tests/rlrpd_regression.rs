//! Regression test: the minimal failing case proptest found for the
//! read-then-reduce stale-accumulator bug in `ShadowArray` (an exposed
//! read activated the element, and the subsequent reduction accumulated
//! onto a stale private slot from an earlier speculative window, making
//! R-LRPD commit a wrong partial).  Kept as a deterministic multi-round
//! R-LRPD walk with per-round assertions.
use smartapps_specpar::lrpd::{run_sequential, SpecAccess, Speculator};

#[derive(Debug, Clone, Copy)]
enum Op {
    R(usize),
    W(usize, i32),
    Rd(usize, i32),
    C(usize, usize),
}
use Op::*;

fn ops() -> Vec<Vec<Op>> {
    vec![
        vec![W(5, 1)],
        vec![R(4)],
        vec![Rd(18, 64)],
        vec![W(13, 86)],
        vec![Rd(21, -59), W(10, -23), R(3)],
        vec![R(13), W(21, -73), C(17, 13), R(19)],
        vec![C(20, 13), C(18, 18), Rd(2, -38)],
        vec![C(18, 22), R(15)],
        vec![W(8, -27), Rd(0, -88), Rd(7, -18)],
        vec![W(16, -8), R(18), R(14), R(5)],
        vec![Rd(5, -82), W(8, 36), R(13)],
        vec![Rd(14, -88), R(19), W(19, 83), W(2, -61)],
        vec![C(2, 12), C(6, 13)],
        vec![W(20, 22), R(1)],
        vec![W(23, 97)],
        vec![W(10, 29)],
        vec![W(4, -70), C(14, 16)],
        vec![C(22, 10), R(13), W(19, -32), R(22)],
        vec![Rd(12, -24), W(15, 52), Rd(17, -32), R(20)],
        vec![C(3, 11), Rd(12, -47)],
        vec![R(21), R(15), Rd(3, -37), C(5, 5)],
        vec![Rd(5, 51)],
        vec![R(17), W(3, -92), W(4, 29)],
        vec![W(4, 22)],
        vec![W(13, 95), Rd(17, 95), Rd(18, 12)],
        vec![R(16)],
        vec![W(23, -73), C(5, 21)],
        vec![C(19, 14), R(20), Rd(17, -85)],
        vec![W(22, -95), C(2, 19)],
        vec![Rd(8, 51)],
        vec![Rd(23, 55), Rd(6, 19)],
        vec![R(3)],
        vec![W(19, -14)],
        vec![R(17), C(18, 23), C(0, 22)],
        vec![Rd(11, 65), W(18, 55), W(20, 63), Rd(23, 91)],
        vec![C(12, 4)],
        vec![Rd(18, -26), W(10, 72), Rd(10, 76)],
        vec![W(19, 21)],
        vec![W(10, -45), Rd(8, 75), Rd(8, -8)],
        vec![Rd(16, 54), W(12, 12), W(21, -87)],
    ]
}

#[test]
fn rlrpd_multi_round_regression() {
    let ops = ops();
    let body = |i: usize, ctx: &mut dyn SpecAccess| {
        let mut acc = 0.0f64;
        for op in &ops[i] {
            match *op {
                R(x) => acc += ctx.read(x),
                W(x, v) => ctx.write(x, v as f64 + acc * 1e-9),
                Rd(x, v) => ctx.reduce(x, v as f64),
                C(a, b) => {
                    let v = ctx.read(a);
                    ctx.write(b, v + 1.0);
                }
            }
        }
    };
    let seeds: Vec<f64> = vec![
        23., 21., -18., 39., 14., 14., -40., 27., -25., -11., -36., -43., -21., 6., -49., -22.,
        -6., 34., 36., -45., 49., 30., -33., -33.,
    ];
    let mut expect = seeds.clone();
    run_sequential(&mut expect, 0..ops.len(), &body);

    // Manual R-LRPD with tracing.
    let threads = 5;
    let mut data = seeds.clone();
    let mut spec = Speculator::new(data.len(), threads);
    let mut start = 0usize;
    let mut round = 0;
    while start < ops.len() {
        round += 1;
        let chunks = spec.run_window(&data, start..ops.len(), &body);
        let outcome = spec.analyze(&chunks);
        eprintln!(
            "round {round}: window [{start}..{}) chunks {:?} earliest {:?}",
            ops.len(),
            chunks,
            outcome.earliest
        );
        match outcome.earliest {
            None => {
                spec.commit(&mut data, threads);
                start = ops.len();
            }
            Some(dep) => {
                spec.commit(&mut data, dep.sink_chunk);
                start = chunks[dep.sink_chunk].start;
            }
        }
        eprintln!("  data[5] = {}", data[5]);
    }
    eprintln!("expect[5] = {}", expect[5]);
    assert_eq!(data, expect);
}
