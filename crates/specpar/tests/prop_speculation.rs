//! Property tests for speculative parallelization: whatever dependence
//! structure a random loop has, LRPD either commits a correct parallel
//! execution or falls back, and R-LRPD always produces the sequential
//! result (bit-exact except for the commutative reassociation of
//! floating-point reduction partials, which reduction parallelization
//! accepts by definition — compared within 1 part in 10^12).

use proptest::prelude::*;
use smartapps_specpar::lrpd::{lrpd_execute, run_sequential, SpecAccess};
use smartapps_specpar::rlrpd::rlrpd_execute;
use smartapps_specpar::wavefront::{execute as wf_execute, inspect as wf_inspect, IterAccess};

/// A randomly generated loop body over a small array: per iteration, a
/// list of operations.
#[derive(Debug, Clone)]
enum Op {
    Read(usize),
    Write(usize, i32),
    Reduce(usize, i32),
    /// Read element a, write the value (plus a constant) to element b —
    /// creates real flow dependences when another iteration writes a.
    Chain(usize, usize),
}

fn arb_loop(n_elems: usize) -> impl Strategy<Value = Vec<Vec<Op>>> {
    let op = prop_oneof![
        (0..n_elems).prop_map(Op::Read),
        ((0..n_elems), -100..100i32).prop_map(|(x, v)| Op::Write(x, v)),
        ((0..n_elems), -100..100i32).prop_map(|(x, v)| Op::Reduce(x, v)),
        ((0..n_elems), (0..n_elems)).prop_map(|(a, b)| Op::Chain(a, b)),
    ];
    proptest::collection::vec(proptest::collection::vec(op, 0..5), 0..120)
}

/// Tolerant comparison: reduction partials are reassociated, so values
/// derived from them may differ by a few ULPs from the sequential run.
fn assert_close(got: &[f64], expect: &[f64]) -> Result<(), TestCaseError> {
    for (e, (a, b)) in expect.iter().zip(got.iter()).enumerate() {
        prop_assert!(
            (a - b).abs() <= 1e-12 * a.abs().max(1.0),
            "element {}: {} vs {}",
            e,
            a,
            b
        );
    }
    Ok(())
}

fn make_body(ops: &[Vec<Op>]) -> impl Fn(usize, &mut dyn SpecAccess) + Sync + '_ {
    move |i: usize, ctx: &mut dyn SpecAccess| {
        let mut acc = 0.0f64;
        for op in &ops[i] {
            match *op {
                Op::Read(x) => acc += ctx.read(x),
                Op::Write(x, v) => ctx.write(x, v as f64 + acc * 1e-9),
                Op::Reduce(x, v) => ctx.reduce(x, v as f64),
                Op::Chain(a, b) => {
                    let v = ctx.read(a);
                    ctx.write(b, v + 1.0);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// R-LRPD == sequential, always, for any dependence structure.
    #[test]
    fn rlrpd_always_exact(
        ops in arb_loop(24),
        threads in 1usize..6,
        seed_vals in proptest::collection::vec(-50..50i32, 24),
    ) {
        let body = make_body(&ops);
        let init: Vec<f64> = seed_vals.iter().map(|&v| v as f64).collect();
        let mut expect = init.clone();
        run_sequential(&mut expect, 0..ops.len(), &body);
        let mut got = init.clone();
        rlrpd_execute(&mut got, ops.len(), threads, &body);
        assert_close(&got, &expect)?;
    }

    /// LRPD: if it commits, the answer is the sequential answer; if it
    /// fails, the fallback also produces the sequential answer.  Either
    /// way the output is exact.
    #[test]
    fn lrpd_commit_or_fallback_exact(
        ops in arb_loop(24),
        threads in 1usize..6,
    ) {
        let body = make_body(&ops);
        let mut expect = vec![0.0f64; 24];
        run_sequential(&mut expect, 0..ops.len(), &body);
        let mut got = vec![0.0f64; 24];
        let report = lrpd_execute(&mut got, ops.len(), threads, &body);
        let _ = report.succeeded;
        assert_close(&got, &expect)?;
        // Single-threaded speculation must always succeed.
        if threads == 1 {
            prop_assert!(report.succeeded);
        }
    }

    /// Loops with only disjoint writes and reductions always commit in
    /// parallel (no false positives on the easy case).
    #[test]
    fn lrpd_no_false_positives_on_independent_loops(
        iters in 1usize..200,
        threads in 2usize..6,
    ) {
        let body = move |i: usize, ctx: &mut dyn SpecAccess| {
            ctx.write(i % 64, i as f64);
            ctx.reduce(64, 1.0);
        };
        let mut data = vec![0.0f64; 65];
        let report = lrpd_execute(&mut data, iters, threads, &body);
        prop_assert!(report.succeeded, "independent loop misdiagnosed");
        prop_assert_eq!(data[64], iters as f64);
    }

    /// Wavefront execution preserves sequential semantics for arbitrary
    /// read/write sets (the inspector orders all dependence kinds).
    #[test]
    fn wavefront_matches_sequential(
        accs_raw in proptest::collection::vec(
            (
                proptest::collection::vec(0u32..16, 0..3),
                proptest::collection::vec(0u32..16, 1..3),
            ),
            0..60,
        )
    ) {
        let accs: Vec<IterAccess> = accs_raw
            .iter()
            .map(|(r, w)| IterAccess { reads: r.clone(), writes: w.clone() })
            .collect();
        let wf = wf_inspect(16, &accs);
        // Body: each iteration writes (sum of reads + iteration index) to
        // its write set.
        let accs2 = accs.clone();
        let body = move |i: usize, data: &smartapps_specpar::wavefront::WfData<'_>| {
            let s: f64 = accs2[i].reads.iter().map(|&r| data.get(r as usize)).sum();
            for &w in &accs2[i].writes {
                data.set(w as usize, s + i as f64);
            }
        };
        let mut seq = vec![0.0f64; 16];
        for (i, acc) in accs.iter().enumerate() {
            let s: f64 = acc.reads.iter().map(|&r| seq[r as usize]).sum();
            for &w in &acc.writes {
                seq[w as usize] = s + i as f64;
            }
        }
        let mut par = vec![0.0f64; 16];
        wf_execute(&wf, &mut par, 4, &body);
        prop_assert_eq!(par, seq);
        // Levels partition the iteration space.
        let total: usize = wf.levels.iter().map(Vec::len).sum();
        prop_assert_eq!(total, accs.len());
    }
}
