//! The LRPD test: speculative run-time parallelization of loops with
//! privatization and reduction validation (Rauchwerger & Padua).
//!
//! The loop is executed speculatively in parallel: each processor runs a
//! block of iterations against a *private copy-in view* of the array under
//! test, marking shadow state.  Afterwards a cross-processor analysis
//! checks that no flow dependence crossed a block boundary:
//!
//! * an **exposed read** (read not covered by an earlier write in the same
//!   block) of an element that an earlier block wrote or reduced is a flow
//!   dependence — speculation failed;
//! * plain writes privatize (last value wins, committed in block order);
//! * reduction-shaped updates (`x += e`) commute and merge across blocks.
//!
//! On success the private results are committed; on failure the loop
//! re-executes sequentially (the speculative run never modified the shared
//! array, so no rollback of data is needed).

use crate::shadow::{ReadView, ShadowArray};

/// The access interface the instrumented loop body uses.  The compiler
/// stage of SmartApps generates exactly these calls around each access to
/// the array under test.
pub trait SpecAccess {
    /// Read element `x`.
    fn read(&mut self, x: usize) -> f64;
    /// Write element `x`.
    fn write(&mut self, x: usize, v: f64);
    /// Reduction update `x += v`.
    fn reduce(&mut self, x: usize, v: f64);
}

/// Speculative context: reads fall back to the frozen base array.
struct SpecCtx<'a> {
    shadow: &'a mut ShadowArray,
    base: &'a [f64],
    iter: u32,
}

impl SpecAccess for SpecCtx<'_> {
    #[inline]
    fn read(&mut self, x: usize) -> f64 {
        match self.shadow.read(x, self.iter) {
            ReadView::Covered(v) => v,
            ReadView::Partial(p) => self.base[x] + p,
            ReadView::Exposed => self.base[x],
        }
    }
    #[inline]
    fn write(&mut self, x: usize, v: f64) {
        self.shadow.write(x, self.iter, v);
    }
    #[inline]
    fn reduce(&mut self, x: usize, v: f64) {
        self.shadow.reduce(x, self.iter, v);
    }
}

/// Sequential context: operates directly on the array.
struct SeqCtx<'a> {
    data: &'a mut [f64],
}

impl SpecAccess for SeqCtx<'_> {
    #[inline]
    fn read(&mut self, x: usize) -> f64 {
        self.data[x]
    }
    #[inline]
    fn write(&mut self, x: usize, v: f64) {
        self.data[x] = v;
    }
    #[inline]
    fn reduce(&mut self, x: usize, v: f64) {
        self.data[x] += v;
    }
}

/// Execute `range` sequentially on `data`.
pub fn run_sequential<F>(data: &mut [f64], range: std::ops::Range<usize>, body: &F)
where
    F: Fn(usize, &mut dyn SpecAccess),
{
    let mut ctx = SeqCtx { data };
    for i in range {
        body(i, &mut ctx);
    }
}

/// Reusable speculative execution state (shadow arrays reset cheaply
/// between windows via epochs).
pub struct Speculator {
    shadows: Vec<ShadowArray>,
}

/// A detected cross-block flow dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dependence {
    /// Element carrying the dependence.
    pub element: u32,
    /// Global iteration of the sink (the exposed read that came too late).
    pub sink_iter: u32,
    /// Index of the block containing the sink.
    pub sink_chunk: usize,
}

/// Result of one speculative window.
#[derive(Debug, Clone)]
pub struct WindowOutcome {
    /// The earliest dependence found, if any (by sink iteration).
    pub earliest: Option<Dependence>,
    /// Number of elements carrying cross-block flow dependences.
    pub conflicts: usize,
}

/// Report of a full LRPD execution.
#[derive(Debug, Clone)]
pub struct LrpdReport {
    /// Whether the speculative parallel execution committed.
    pub succeeded: bool,
    /// Dependent elements found (zero on success).
    pub conflicts: usize,
    /// Iterations executed speculatively (once, whether or not committed).
    pub speculative_iterations: usize,
}

impl Speculator {
    /// Create a speculator for `threads` processors over arrays of `n`
    /// elements.
    pub fn new(n: usize, threads: usize) -> Self {
        assert!(threads >= 1);
        Speculator {
            shadows: (0..threads).map(|_| ShadowArray::new(n)).collect(),
        }
    }

    /// Number of processors.
    pub fn threads(&self) -> usize {
        self.shadows.len()
    }

    /// Run one speculative window over `range`, block-scheduled.  `data`
    /// is only read.  Returns the chunk boundaries used.
    pub fn run_window<F>(
        &mut self,
        data: &[f64],
        range: std::ops::Range<usize>,
        body: &F,
    ) -> Vec<std::ops::Range<usize>>
    where
        F: Fn(usize, &mut dyn SpecAccess) + Sync,
    {
        let threads = self.shadows.len();
        let total = range.len();
        let chunks: Vec<std::ops::Range<usize>> = (0..threads)
            .map(|t| {
                let lo = range.start + total * t / threads;
                let hi = range.start + total * (t + 1) / threads;
                lo..hi
            })
            .collect();
        rayon::scope(|s| {
            for (shadow, chunk) in self.shadows.iter_mut().zip(chunks.iter()) {
                let chunk = chunk.clone();
                s.spawn(move |_| {
                    shadow.reset();
                    for i in chunk {
                        let mut ctx = SpecCtx {
                            shadow,
                            base: data,
                            iter: i as u32,
                        };
                        body(i, &mut ctx);
                    }
                });
            }
        });
        chunks
    }

    /// Cross-processor analysis: find flow dependences between blocks.
    ///
    /// A dependence exists on element `x` when a block performs an exposed
    /// read of `x` and any *earlier* block wrote or reduced `x` — the
    /// speculative read returned the stale base value.
    pub fn analyze(&self, chunks: &[std::ops::Range<usize>]) -> WindowOutcome {
        let threads = self.shadows.len();
        let mut earliest: Option<Dependence> = None;
        let mut conflicts = 0usize;
        for b in 1..threads {
            for &xu in self.shadows[b].touched() {
                let x = xu as usize;
                let mb = self.shadows[b].marks(x);
                if !mb.exposed_read {
                    continue;
                }
                let produced_earlier = (0..b).any(|a| {
                    let ma = self.shadows[a].marks(x);
                    ma.written || ma.reduced
                });
                if produced_earlier {
                    conflicts += 1;
                    let sink_iter = self.shadows[b].first_access(x).expect("touched element");
                    let dep = Dependence {
                        element: xu,
                        sink_iter,
                        sink_chunk: b,
                    };
                    if earliest.is_none_or(|e| sink_iter < e.sink_iter) {
                        earliest = Some(dep);
                    }
                }
            }
        }
        let _ = chunks;
        WindowOutcome {
            earliest,
            conflicts,
        }
    }

    /// Commit blocks `0..upto` into `data`, in block order (last value for
    /// writes, merge for reduction partials).
    pub fn commit(&self, data: &mut [f64], upto: usize) {
        for shadow in &self.shadows[..upto] {
            for &xu in shadow.touched() {
                let x = xu as usize;
                let m = shadow.marks(x);
                if m.written {
                    data[x] = shadow.value(x);
                } else if m.reduced {
                    data[x] += shadow.value(x);
                }
            }
        }
    }
}

/// Execute a loop under the (processor-wise) LRPD test with copy-in
/// privatization and reduction validation.  On dependence detection the
/// loop re-executes sequentially.
pub fn lrpd_execute<F>(data: &mut [f64], n_iters: usize, threads: usize, body: &F) -> LrpdReport
where
    F: Fn(usize, &mut dyn SpecAccess) + Sync,
{
    let mut spec = Speculator::new(data.len(), threads);
    let chunks = spec.run_window(data, 0..n_iters, body);
    let outcome = spec.analyze(&chunks);
    match outcome.earliest {
        None => {
            spec.commit(data, threads);
            LrpdReport {
                succeeded: true,
                conflicts: 0,
                speculative_iterations: n_iters,
            }
        }
        Some(_) => {
            run_sequential(data, 0..n_iters, body);
            LrpdReport {
                succeeded: false,
                conflicts: outcome.conflicts,
                speculative_iterations: n_iters,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fully parallel loop: disjoint writes.
    #[test]
    fn fully_parallel_loop_commits() {
        let mut data = vec![0.0; 64];
        let mut expect = data.clone();
        let body = |i: usize, ctx: &mut dyn SpecAccess| {
            ctx.write(i % 64, i as f64);
        };
        run_sequential(&mut expect, 0..64, &body);
        let r = lrpd_execute(&mut data, 64, 4, &body);
        assert!(r.succeeded);
        assert_eq!(r.conflicts, 0);
        assert_eq!(data, expect);
    }

    /// A reduction loop: every iteration updates shared elements; valid in
    /// parallel because reductions commute.
    #[test]
    fn reduction_loop_commits() {
        let mut data = vec![1.0; 8];
        let mut expect = data.clone();
        let body = |i: usize, ctx: &mut dyn SpecAccess| {
            ctx.reduce(i % 8, 1.0);
            ctx.reduce(0, 0.5);
        };
        run_sequential(&mut expect, 0..80, &body);
        let r = lrpd_execute(&mut data, 80, 4, &body);
        assert!(r.succeeded, "reductions must validate");
        for (a, b) in data.iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    /// A loop with a real flow dependence: iteration i reads what i-1
    /// wrote.  Speculation must fail and fall back to sequential, still
    /// producing the sequential answer.
    #[test]
    fn flow_dependence_falls_back_to_sequential() {
        let n = 64;
        let body = |i: usize, ctx: &mut dyn SpecAccess| {
            let prev = if i == 0 { 1.0 } else { ctx.read(i - 1) };
            ctx.write(i, prev + 1.0);
        };
        let mut expect = vec![0.0; n];
        run_sequential(&mut expect, 0..n, &body);
        let mut data = vec![0.0; n];
        let r = lrpd_execute(&mut data, n, 4, &body);
        assert!(!r.succeeded);
        assert!(r.conflicts > 0);
        assert_eq!(data, expect, "fallback must be exact");
    }

    /// Privatizable temporaries: every iteration writes then reads its own
    /// scratch element — no exposed reads, fully parallel.
    #[test]
    fn privatization_hides_waw() {
        let n = 100;
        let body = |i: usize, ctx: &mut dyn SpecAccess| {
            ctx.write(0, i as f64); // shared scratch, written first
            let t = ctx.read(0); // covered read
            ctx.write(1 + (i % 63), t * 2.0);
        };
        let mut expect = vec![0.0; 64];
        run_sequential(&mut expect, 0..n, &body);
        let mut data = vec![0.0; 64];
        let r = lrpd_execute(&mut data, n, 4, &body);
        assert!(r.succeeded, "privatizable scratch must pass the test");
        assert_eq!(data, expect);
    }

    /// Anti-dependences (read early, written later) are legal under
    /// copy-in speculation.
    #[test]
    fn anti_dependence_is_legal() {
        let n = 40;
        // Iteration i reads element i+1 (written by a later iteration) and
        // writes element i: sequentially each read sees the ORIGINAL value.
        let body = |i: usize, ctx: &mut dyn SpecAccess| {
            let v = if i + 1 < 40 { ctx.read(i + 1) } else { 0.0 };
            ctx.write(i, v + 1.0);
        };
        let mut expect: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let mut data = expect.clone();
        run_sequential(&mut expect, 0..n, &body);
        let r = lrpd_execute(&mut data, n, 4, &body);
        assert!(
            r.succeeded,
            "anti-dependences do not invalidate copy-in speculation"
        );
        assert_eq!(data, expect);
    }

    /// Exposed read of an element reduced by an earlier block fails.
    #[test]
    fn read_of_reduction_variable_fails() {
        let n = 64;
        let body = |i: usize, ctx: &mut dyn SpecAccess| {
            if i == 50 {
                let v = ctx.read(3); // reads the accumulating total
                ctx.write(10, v);
            } else {
                ctx.reduce(3, 1.0);
            }
        };
        let mut expect = vec![0.0; 64];
        run_sequential(&mut expect, 0..n, &body);
        let mut data = vec![0.0; 64];
        let r = lrpd_execute(&mut data, n, 4, &body);
        assert!(!r.succeeded);
        assert_eq!(data, expect);
    }

    /// Single-threaded speculation always succeeds (no cross-block pairs).
    #[test]
    fn single_thread_never_conflicts() {
        let body = |i: usize, ctx: &mut dyn SpecAccess| {
            let v = if i == 0 { 0.0 } else { ctx.read(i - 1) };
            ctx.write(i, v + 1.0);
        };
        let mut data = vec![0.0; 32];
        let r = lrpd_execute(&mut data, 32, 1, &body);
        assert!(r.succeeded);
        assert_eq!(data[31], 32.0);
    }
}
