//! Feedback-guided blocked scheduling (Section 3): "load balancing will be
//! achieved through feedback guided blocked scheduling which allows highly
//! imbalanced loops to be block scheduled by predicting a good work
//! distribution from previous measured execution times of iteration
//! blocks."
//!
//! The scheduler keeps a piecewise-constant estimate of per-iteration cost
//! built from the measured times of the previous invocation's blocks, and
//! partitions the next invocation so every processor gets an equal share
//! of *predicted work* rather than an equal share of iterations.

use std::ops::Range;

/// A feedback-guided block scheduler for a repeatedly invoked loop.
#[derive(Debug, Clone)]
pub struct FgbsScheduler {
    threads: usize,
    iters: usize,
    /// Last schedule handed out.
    blocks: Vec<Range<usize>>,
    /// Per-iteration cost estimate from the last feedback: the previous
    /// blocks and their measured rates.
    rates: Option<(Vec<Range<usize>>, Vec<f64>)>,
}

impl FgbsScheduler {
    /// Create a scheduler for a loop of `iters` iterations on `threads`
    /// processors.
    pub fn new(iters: usize, threads: usize) -> Self {
        assert!(threads >= 1);
        let blocks = (0..threads)
            .map(|t| iters * t / threads..iters * (t + 1) / threads)
            .collect();
        FgbsScheduler {
            threads,
            iters,
            blocks,
            rates: None,
        }
    }

    /// The block boundaries for the next invocation.  Before any feedback
    /// this is a plain equal-iteration block schedule; afterwards the
    /// boundaries equalize predicted work.
    pub fn schedule(&self) -> &[Range<usize>] {
        &self.blocks
    }

    /// Report the measured execution times of the blocks of the last
    /// schedule; recomputes the boundaries for the next invocation.
    pub fn feedback(&mut self, times: &[f64]) {
        assert_eq!(times.len(), self.threads, "one time per block");
        assert!(times.iter().all(|t| *t >= 0.0), "negative block time");
        // Piecewise-constant per-iteration cost from the last invocation.
        let rate: Vec<f64> = self
            .blocks
            .iter()
            .zip(times)
            .map(|(b, t)| {
                if b.is_empty() {
                    0.0
                } else {
                    t / b.len() as f64
                }
            })
            .collect();
        let total: f64 = times.iter().sum();
        if total <= 0.0 {
            return; // no information; keep the old schedule
        }
        self.rates = Some((self.blocks.clone(), rate.clone()));
        let target = total / self.threads as f64;
        // Walk iterations, cutting a boundary whenever the accumulated
        // predicted work reaches the target.
        let mut new_blocks = Vec::with_capacity(self.threads);
        let mut start = 0usize;
        let mut acc = 0.0;
        let mut block_idx = 0usize;
        for i in 0..self.iters {
            while block_idx + 1 < self.blocks.len() && i >= self.blocks[block_idx].end {
                block_idx += 1;
            }
            acc += rate[block_idx];
            if acc >= target && new_blocks.len() + 1 < self.threads {
                new_blocks.push(start..i + 1);
                start = i + 1;
                acc = 0.0;
            }
        }
        new_blocks.push(start..self.iters);
        while new_blocks.len() < self.threads {
            new_blocks.push(self.iters..self.iters);
        }
        self.blocks = new_blocks;
    }

    /// Predicted load imbalance of the current schedule under the last
    /// measured rates: max predicted block work / mean (1.0 = perfect).
    pub fn predicted_imbalance(&self) -> f64 {
        let Some((prev_blocks, rates)) = &self.rates else {
            return 1.0;
        };
        let rate_at = |i: usize| -> f64 {
            let k = prev_blocks
                .iter()
                .position(|b| b.contains(&i))
                .unwrap_or(prev_blocks.len() - 1);
            rates[k]
        };
        let works: Vec<f64> = self
            .blocks
            .iter()
            .map(|b| b.clone().map(rate_at).sum())
            .collect();
        let mean = works.iter().sum::<f64>() / works.len() as f64;
        let max = works.iter().cloned().fold(0.0, f64::max);
        if mean > 0.0 {
            (max / mean).max(1.0)
        } else {
            1.0
        }
    }

    /// Run one invocation of `body` under the current schedule, measure
    /// block times, and feed them back.  Returns the measured imbalance of
    /// this invocation (max block time / mean block time).
    pub fn run_invocation<F>(&mut self, body: F) -> f64
    where
        F: Fn(usize) + Sync,
    {
        let mut times = vec![0.0f64; self.blocks.len()];
        rayon::scope(|s| {
            for (b, slot) in self.blocks.iter().zip(times.iter_mut()) {
                let b = b.clone();
                let body = &body;
                s.spawn(move |_| {
                    let t0 = std::time::Instant::now();
                    for i in b {
                        body(i);
                    }
                    *slot = t0.elapsed().as_secs_f64();
                });
            }
        });
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let max = times.iter().cloned().fold(0.0, f64::max);
        self.feedback(&times);
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_schedule_is_equal_blocks() {
        let s = FgbsScheduler::new(100, 4);
        let blocks = s.schedule();
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks[0], 0..25);
        assert_eq!(blocks[3], 75..100);
    }

    #[test]
    fn feedback_shrinks_expensive_blocks() {
        let mut s = FgbsScheduler::new(100, 4);
        // Block 0 is 10x as expensive per iteration as the others.
        s.feedback(&[10.0, 1.0, 1.0, 1.0]);
        let blocks = s.schedule();
        assert_eq!(blocks.len(), 4);
        assert!(blocks[0].len() < 15, "hot block must shrink: {:?}", blocks);
        // Iterations still partition exactly.
        let covered: usize = blocks.iter().map(|b| b.len()).sum();
        assert_eq!(covered, 100);
        assert_eq!(blocks.last().unwrap().end, 100);
    }

    #[test]
    fn uniform_feedback_keeps_near_equal_blocks() {
        let mut s = FgbsScheduler::new(128, 4);
        s.feedback(&[1.0, 1.0, 1.0, 1.0]);
        for b in s.schedule() {
            assert!((b.len() as i64 - 32).abs() <= 1, "{:?}", s.schedule());
        }
    }

    #[test]
    fn convergence_on_linear_imbalance() {
        // Per-iteration cost grows linearly (triangular loop): the classic
        // imbalanced shape.  Simulate measured times analytically.
        let iters = 1_000usize;
        let cost = |i: usize| (i + 1) as f64;
        let mut s = FgbsScheduler::new(iters, 4);
        let mut imbalances = Vec::new();
        for _ in 0..6 {
            let times: Vec<f64> = s
                .schedule()
                .iter()
                .map(|b| b.clone().map(cost).sum::<f64>())
                .collect();
            let mean = times.iter().sum::<f64>() / 4.0;
            let max = times.iter().cloned().fold(0.0, f64::max);
            imbalances.push(max / mean);
            s.feedback(&times);
        }
        // Initially ~ 7/4 imbalance; must converge near 1.
        assert!(imbalances[0] > 1.5, "triangular loop starts imbalanced");
        let last = *imbalances.last().unwrap();
        assert!(
            last < 1.1,
            "converged imbalance {last}, history {imbalances:?}"
        );
    }

    #[test]
    fn zero_feedback_keeps_schedule() {
        let mut s = FgbsScheduler::new(50, 2);
        let before = s.schedule().to_vec();
        s.feedback(&[0.0, 0.0]);
        assert_eq!(s.schedule(), &before[..]);
    }

    #[test]
    fn run_invocation_measures_and_adapts() {
        let mut s = FgbsScheduler::new(4_000, 4);
        // Busy-work proportional to iteration index.
        let body = |i: usize| {
            let mut acc = 0u64;
            for k in 0..(i / 4) {
                acc = acc.wrapping_add(k as u64);
            }
            std::hint::black_box(acc);
        };
        // Triangular work: the first invocation is imbalanced and feedback
        // improves it.  Wall-clock imbalance on a loaded (or single-CPU)
        // host is noisy, so accept the bound from any of a few attempts —
        // the property under test is that feedback helps, not that every
        // measurement is quiet.
        let mut outcomes = Vec::new();
        for _ in 0..3 {
            let first = s.run_invocation(body);
            let mut last = first;
            for _ in 0..4 {
                last = s.run_invocation(body);
            }
            if last <= first * 1.2 + 0.2 {
                return;
            }
            outcomes.push((first, last));
            s = FgbsScheduler::new(4_000, 4);
        }
        panic!("feedback never improved imbalance: {outcomes:?}");
    }

    #[test]
    #[should_panic(expected = "one time per block")]
    fn feedback_arity_checked() {
        let mut s = FgbsScheduler::new(10, 2);
        s.feedback(&[1.0]);
    }
}
