//! WHILE-loop parallelization (Section 3, technique iii): do-loops with an
//! unknown number of iterations and/or linked-list traversals
//! (Rauchwerger & Padua, IPPS'95).
//!
//! Two cooperating techniques:
//!
//! * [`collect_list`] — the inspector: a sequential pointer chase that
//!   materializes the traversal order (cheap: one dereference per node),
//!   after which the loop body runs fully parallel over the collected
//!   nodes (`execute_over`);
//! * [`speculative_while`] — when even the iteration *count* is unknown
//!   (termination depends on computed values), processors execute strips
//!   of iterations speculatively; work past the first satisfied exit
//!   condition is discarded, the prefix commits.

/// A singly linked list laid out in an arena (index-linked, as irregular
/// codes store them in arrays).
#[derive(Debug, Clone)]
pub struct ListArena {
    /// `next[i]` is the successor of node `i`, or `u32::MAX` at the tail.
    pub next: Vec<u32>,
    /// Payload per node.
    pub value: Vec<f64>,
    /// Entry node.
    pub head: u32,
}

/// End-of-list sentinel.
pub const NIL: u32 = u32::MAX;

impl ListArena {
    /// Build a list threading `order` through the arena.
    pub fn from_order(order: &[u32], values: &[f64]) -> Self {
        assert_eq!(order.len(), values.len());
        assert!(!order.is_empty());
        let n = values.len();
        let mut next = vec![NIL; n];
        for w in order.windows(2) {
            next[w[0] as usize] = w[1];
        }
        ListArena {
            next,
            value: values.to_vec(),
            head: order[0],
        }
    }
}

/// Inspector: chase the pointers once, collecting the traversal order.
/// This is the serial bottleneck of list loops — O(length) dereferences —
/// after which the body runs in parallel.
pub fn collect_list(list: &ListArena) -> Vec<u32> {
    let mut order = Vec::new();
    let mut cur = list.head;
    let mut guard = 0usize;
    while cur != NIL {
        order.push(cur);
        cur = list.next[cur as usize];
        guard += 1;
        assert!(guard <= list.next.len(), "cycle detected in list");
    }
    order
}

/// Executor: run `body(position, node)` over the collected nodes in
/// parallel; results are written into a per-position output vector
/// (iteration-private, so no dependence concerns).
pub fn execute_over<F>(order: &[u32], list: &ListArena, threads: usize, body: F) -> Vec<f64>
where
    F: Fn(usize, u32, &ListArena) -> f64 + Sync,
{
    assert!(threads >= 1);
    let mut out = vec![0.0; order.len()];
    let body = &body;
    rayon::scope(|s| {
        for (t, chunk) in out
            .chunks_mut(order.len().div_ceil(threads).max(1))
            .enumerate()
        {
            let base = t * order.len().div_ceil(threads).max(1);
            s.spawn(move |_| {
                for (k, slot) in chunk.iter_mut().enumerate() {
                    let pos = base + k;
                    *slot = body(pos, order[pos], list);
                }
            });
        }
    });
    out
}

/// Outcome of a speculative while-loop execution.
#[derive(Debug, Clone)]
pub struct WhileReport {
    /// Iterations that logically executed (up to and including the one
    /// that satisfied the exit condition).
    pub committed: usize,
    /// Speculative iterations discarded past the exit.
    pub discarded: usize,
    /// Strip-mining rounds used.
    pub rounds: usize,
}

/// Speculatively execute `while !exit(i) { out[i] = body(i) }` with an
/// unknown trip count, strip-mined in rounds of `threads × strip`
/// iterations.  `body` must be side-effect-free (its result is buffered
/// and only the prefix up to the exit commits).  Returns the committed
/// results and a report.
pub fn speculative_while<B, E>(
    threads: usize,
    strip: usize,
    max_iters: usize,
    body: B,
    exit: E,
) -> (Vec<f64>, WhileReport)
where
    B: Fn(usize) -> f64 + Sync,
    E: Fn(usize) -> bool + Sync,
{
    assert!(threads >= 1 && strip >= 1);
    let mut committed: Vec<f64> = Vec::new();
    let mut report = WhileReport {
        committed: 0,
        discarded: 0,
        rounds: 0,
    };
    let mut start = 0usize;
    while start < max_iters {
        report.rounds += 1;
        let round_len = (threads * strip).min(max_iters - start);
        // Each processor runs a strip, buffering results and noting the
        // first exit it observes.
        let mut bufs: Vec<(usize, Vec<f64>, Option<usize>)> =
            (0..threads).map(|_| (0, Vec::new(), None)).collect();
        rayon::scope(|s| {
            for (t, slot) in bufs.iter_mut().enumerate() {
                let lo = start + round_len * t / threads;
                let hi = start + round_len * (t + 1) / threads;
                let body = &body;
                let exit = &exit;
                s.spawn(move |_| {
                    let mut buf = Vec::with_capacity(hi - lo);
                    let mut exit_at = None;
                    for i in lo..hi {
                        if exit(i) {
                            exit_at = Some(i);
                            break;
                        }
                        buf.push(body(i));
                    }
                    *slot = (lo, buf, exit_at);
                });
            }
        });
        // Find the earliest exit across strips; commit everything before.
        let earliest_exit = bufs.iter().filter_map(|(_, _, e)| *e).min();
        let commit_until = earliest_exit.unwrap_or(start + round_len);
        for (lo, buf, _) in &bufs {
            for (k, v) in buf.iter().enumerate() {
                let i = lo + k;
                if i < commit_until {
                    committed.push(*v);
                } else {
                    report.discarded += 1;
                }
            }
        }
        if earliest_exit.is_some() {
            report.committed = commit_until;
            return (committed, report);
        }
        start += round_len;
    }
    report.committed = committed.len();
    (committed, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shuffled_list(n: usize, seed: u64) -> ListArena {
        // Deterministic pseudo-shuffle via multiplicative stepping.
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let values: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        ListArena::from_order(&order, &values)
    }

    #[test]
    fn collect_visits_every_node_once() {
        let list = shuffled_list(500, 7);
        let order = collect_list(&list);
        assert_eq!(order.len(), 500);
        let mut seen = vec![false; 500];
        for &x in &order {
            assert!(!seen[x as usize], "node visited twice");
            seen[x as usize] = true;
        }
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_detection() {
        let mut list = shuffled_list(10, 3);
        // Close the list into a ring.
        let order = {
            let mut cur = list.head;
            let mut last = cur;
            while cur != NIL {
                last = cur;
                cur = list.next[cur as usize];
            }
            last
        };
        list.next[order as usize] = list.head;
        collect_list(&list);
    }

    #[test]
    fn execute_over_matches_sequential() {
        let list = shuffled_list(1000, 11);
        let order = collect_list(&list);
        let body = |pos: usize, node: u32, l: &ListArena| l.value[node as usize] * 2.0 + pos as f64;
        let par = execute_over(&order, &list, 4, body);
        let seq: Vec<f64> = order
            .iter()
            .enumerate()
            .map(|(p, &n)| body(p, n, &list))
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn speculative_while_commits_exact_prefix() {
        // Exit at iteration 137 — unknown to the scheduler.
        let (out, rep) = speculative_while(4, 16, 10_000, |i| i as f64, |i| i == 137);
        assert_eq!(out.len(), 137);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f64);
        }
        assert_eq!(rep.committed, 137);
        assert!(rep.rounds >= 2, "137 > one 64-iteration round");
    }

    #[test]
    fn speculative_while_without_exit_runs_to_bound() {
        let (out, rep) = speculative_while(3, 8, 100, |i| i as f64, |_| false);
        assert_eq!(out.len(), 100);
        assert_eq!(rep.discarded, 0);
        assert_eq!(rep.committed, 100);
    }

    #[test]
    fn speculative_while_discards_overshoot() {
        let (out, rep) = speculative_while(4, 32, 100_000, |i| i as f64, |i| i == 3);
        assert_eq!(out.len(), 3);
        assert!(rep.discarded > 0, "strips past the exit must be discarded");
    }

    #[test]
    fn immediate_exit() {
        let (out, rep) = speculative_while(2, 4, 100, |i| i as f64, |i| i == 0);
        assert!(out.is_empty());
        assert_eq!(rep.committed, 0);
    }
}
