//! Inspector/executor wavefront parallelization: computing "sequences of
//! mutually independent sets of iterations that can be executed in
//! parallel" (Section 3, technique ii).
//!
//! The inspector walks the loop's access pattern once, assigns each
//! iteration a dependence level (one more than the deepest level among
//! earlier iterations it conflicts with), and the executor sweeps the
//! levels, running each level's iterations in parallel.

use std::ops::Range;

/// Declared per-iteration accesses (the inspector's input; in SmartApps
//  the compiler extracts this address computation as a side-effect-free
/// slice of the loop).
#[derive(Debug, Clone, Default)]
pub struct IterAccess {
    /// Elements read by the iteration.
    pub reads: Vec<u32>,
    /// Elements written by the iteration.
    pub writes: Vec<u32>,
}

/// The inspector's output: iterations grouped into dependence levels
/// ("wavefronts").
#[derive(Debug, Clone)]
pub struct Wavefronts {
    /// `levels[k]` lists the iterations of wavefront `k`.
    pub levels: Vec<Vec<u32>>,
    /// Per-iteration level (inverse of `levels`).
    pub level_of: Vec<u32>,
}

impl Wavefronts {
    /// Number of wavefronts (critical-path length in iterations).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Average parallelism: iterations / depth.
    pub fn parallelism(&self) -> f64 {
        if self.levels.is_empty() {
            return 0.0;
        }
        self.level_of.len() as f64 / self.levels.len() as f64
    }
}

/// Run the inspector: compute wavefronts from per-iteration accesses over
/// an array of `n_elements`.
///
/// Dependences considered: flow (read-after-write), anti
/// (write-after-read) and output (write-after-write) — the executor runs
/// iterations *in place*, so all three order the levels.
pub fn inspect(n_elements: usize, accesses: &[IterAccess]) -> Wavefronts {
    // For each element: the deepest level that wrote it and the deepest
    // level that read it so far.
    let mut last_write_level = vec![0i64; n_elements]; // 0 = none, else level+1
    let mut last_read_level = vec![0i64; n_elements];
    let mut level_of = Vec::with_capacity(accesses.len());
    let mut levels: Vec<Vec<u32>> = Vec::new();
    for (i, acc) in accesses.iter().enumerate() {
        let mut lvl = 0i64;
        for &r in &acc.reads {
            lvl = lvl.max(last_write_level[r as usize]); // flow
        }
        for &w in &acc.writes {
            lvl = lvl.max(last_write_level[w as usize]); // output
            lvl = lvl.max(last_read_level[w as usize]); // anti
        }
        let lvl = lvl as usize;
        if levels.len() <= lvl {
            levels.resize_with(lvl + 1, Vec::new);
        }
        levels[lvl].push(i as u32);
        level_of.push(lvl as u32);
        for &r in &acc.reads {
            last_read_level[r as usize] = last_read_level[r as usize].max(lvl as i64 + 1);
        }
        for &w in &acc.writes {
            last_write_level[w as usize] = lvl as i64 + 1;
        }
    }
    Wavefronts { levels, level_of }
}

/// Shared element view handed to wavefront loop bodies: per-element cell
/// access, sound because iterations within one level touch disjoint
/// elements (the inspector's invariant).
pub struct WfData<'a> {
    cells: &'a [std::cell::UnsafeCell<f64>],
}

unsafe impl Send for WfData<'_> {}
unsafe impl Sync for WfData<'_> {}

impl WfData<'_> {
    /// Read element `i`.
    ///
    /// Within a level, only iterations that declared `i` in their access
    /// sets may touch it; the inspector keeps conflicting iterations in
    /// different levels, so reads and writes never race.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        unsafe { *self.cells[i].get() }
    }

    /// Write element `i` (see [`WfData::get`] for the non-racing argument).
    #[inline]
    pub fn set(&self, i: usize, v: f64) {
        unsafe { *self.cells[i].get() = v }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Execute the loop level by level; iterations within a level run in
/// parallel on `threads` threads.  The body receives the iteration index
/// and a [`WfData`] element view; disjointness within a level is
/// guaranteed by the inspector.
pub fn execute<F>(wf: &Wavefronts, data: &mut [f64], threads: usize, body: &F)
where
    F: Fn(usize, &WfData<'_>) + Sync,
{
    assert!(threads >= 1);
    // SAFETY: `&mut [f64]` and `&[UnsafeCell<f64>]` have identical layout;
    // exclusive access is handed to the cells for the duration.
    let cells = unsafe { &*(data as *mut [f64] as *const [std::cell::UnsafeCell<f64>]) };
    let view = WfData { cells };
    let view = &view;
    for level in &wf.levels {
        rayon::scope(|s| {
            for t in 0..threads {
                let chunk: Range<usize> =
                    level.len() * t / threads..level.len() * (t + 1) / threads;
                let level = &level[chunk];
                s.spawn(move |_| {
                    for &i in level {
                        body(i as usize, view);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(reads: &[u32], writes: &[u32]) -> IterAccess {
        IterAccess {
            reads: reads.to_vec(),
            writes: writes.to_vec(),
        }
    }

    #[test]
    fn independent_iterations_form_one_level() {
        let accs: Vec<IterAccess> = (0..16).map(|i| acc(&[], &[i])).collect();
        let wf = inspect(16, &accs);
        assert_eq!(wf.depth(), 1);
        assert_eq!(wf.levels[0].len(), 16);
        assert_eq!(wf.parallelism(), 16.0);
    }

    #[test]
    fn chain_is_fully_sequential() {
        // i reads i-1's output.
        let accs: Vec<IterAccess> = (0..8)
            .map(|i| {
                if i == 0 {
                    acc(&[], &[0])
                } else {
                    acc(&[i - 1], &[i])
                }
            })
            .collect();
        let wf = inspect(8, &accs);
        assert_eq!(wf.depth(), 8);
        for (i, &l) in wf.level_of.iter().enumerate() {
            assert_eq!(l as usize, i);
        }
    }

    #[test]
    fn diamond_dependences() {
        // 0 writes a; 1 and 2 read a, write b/c; 3 reads b and c.
        let accs = vec![
            acc(&[], &[0]),
            acc(&[0], &[1]),
            acc(&[0], &[2]),
            acc(&[1, 2], &[3]),
        ];
        let wf = inspect(4, &accs);
        assert_eq!(wf.depth(), 3);
        assert_eq!(wf.level_of, vec![0, 1, 1, 2]);
    }

    #[test]
    fn anti_and_output_dependences_order_levels() {
        // 0 reads x; 1 writes x (anti: must come after 0's level).
        let accs = vec![acc(&[5], &[0]), acc(&[], &[5])];
        let wf = inspect(8, &accs);
        assert!(wf.level_of[1] > wf.level_of[0]);
        // Output: two writes to the same element.
        let accs = vec![acc(&[], &[5]), acc(&[], &[5])];
        let wf = inspect(8, &accs);
        assert!(wf.level_of[1] > wf.level_of[0]);
    }

    #[test]
    fn execute_matches_sequential_sweep() {
        // A wavefront-friendly stencil: x[i] += x[i-4] over a ring,
        // expressed with explicit accesses.
        let n = 64;
        let accs: Vec<IterAccess> = (0..n)
            .map(|i| {
                if i < 4 {
                    acc(&[], &[i as u32])
                } else {
                    acc(&[(i - 4) as u32], &[i as u32])
                }
            })
            .collect();
        let wf = inspect(n, &accs);
        assert!(wf.depth() < n, "parallelism exists");
        let body = |i: usize, data: &WfData<'_>| {
            if i < 4 {
                data.set(i, i as f64 + 1.0);
            } else {
                data.set(i, data.get(i - 4) * 2.0);
            }
        };
        let mut seq = vec![0.0; n];
        {
            let cells = unsafe {
                &*(seq.as_mut_slice() as *mut [f64] as *const [std::cell::UnsafeCell<f64>])
            };
            let view = WfData { cells };
            for i in 0..n {
                body(i, &view);
            }
        }
        let mut par = vec![0.0; n];
        execute(&wf, &mut par, 4, &body);
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_loop() {
        let wf = inspect(8, &[]);
        assert_eq!(wf.depth(), 0);
        assert_eq!(wf.parallelism(), 0.0);
        let mut data = vec![0.0; 8];
        execute(&wf, &mut data, 2, &|_, _: &WfData<'_>| {
            panic!("no iterations")
        });
    }
}
