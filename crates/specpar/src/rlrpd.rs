//! The Recursive LRPD test (R-LRPD, Dang–Yu–Rauchwerger): extracting the
//! maximum available parallelism from *partially parallel* loops.
//!
//! "In any block-scheduled loop executed under the processor-wise LRPD
//! test with copy-in, the chunks of iterations that are less than or equal
//! to the source of the first detected dependence arc are always executed
//! correctly.  Only the processors executing iterations larger or equal to
//! the earliest sink of any dependence arc need to re-execute their
//! portion of work."
//!
//! The implementation runs speculative windows, commits the conflict-free
//! prefix of blocks, and restarts from the block containing the earliest
//! dependence sink — recursively, until the loop completes.  A fully
//! parallel loop commits in one window; a fully serial chain degrades to
//! roughly one block per round, never worse than sequential execution plus
//! bounded speculative overhead.  This technique made the TRACK Perfect
//! code — previously considered sequential — speed up.

use crate::lrpd::{SpecAccess, Speculator};

/// Report of a Recursive LRPD execution.
#[derive(Debug, Clone)]
pub struct RlrpdReport {
    /// Speculative windows executed (1 = fully parallel).
    pub rounds: usize,
    /// Iterations executed speculatively, including re-executions.
    pub speculative_iterations: usize,
    /// Iterations whose speculative work was discarded and re-executed.
    pub reexecuted_iterations: usize,
    /// Dependences observed per round (element, sink iteration).
    pub dependences_per_round: Vec<usize>,
}

impl RlrpdReport {
    /// Parallel efficiency proxy: useful speculative work over total.
    pub fn efficiency(&self) -> f64 {
        if self.speculative_iterations == 0 {
            return 1.0;
        }
        1.0 - self.reexecuted_iterations as f64 / self.speculative_iterations as f64
    }
}

/// Execute a (possibly partially parallel) loop under the Recursive LRPD
/// test on `threads` processors.
pub fn rlrpd_execute<F>(data: &mut [f64], n_iters: usize, threads: usize, body: &F) -> RlrpdReport
where
    F: Fn(usize, &mut dyn SpecAccess) + Sync,
{
    let mut spec = Speculator::new(data.len(), threads);
    let mut start = 0usize;
    let mut report = RlrpdReport {
        rounds: 0,
        speculative_iterations: 0,
        reexecuted_iterations: 0,
        dependences_per_round: Vec::new(),
    };
    while start < n_iters {
        report.rounds += 1;
        let window = start..n_iters;
        let window_len = window.len();
        let chunks = spec.run_window(data, window, body);
        report.speculative_iterations += window_len;
        let outcome = spec.analyze(&chunks);
        report.dependences_per_round.push(outcome.conflicts);
        match outcome.earliest {
            None => {
                spec.commit(data, threads);
                start = n_iters;
            }
            Some(dep) => {
                // Commit every block before the one containing the
                // earliest sink; re-execute from that block's start.
                let cutoff_chunk = dep.sink_chunk;
                debug_assert!(cutoff_chunk >= 1, "sink cannot be in block 0");
                spec.commit(data, cutoff_chunk);
                let new_start = chunks[cutoff_chunk].start;
                debug_assert!(new_start > start, "progress guarantee");
                report.reexecuted_iterations += n_iters - new_start;
                start = new_start;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lrpd::run_sequential;

    /// Oracle comparison helper.
    fn check<F>(n_elems: usize, n_iters: usize, threads: usize, body: &F) -> RlrpdReport
    where
        F: Fn(usize, &mut dyn SpecAccess) + Sync,
    {
        let mut expect = vec![0.0f64; n_elems];
        run_sequential(&mut expect, 0..n_iters, body);
        let mut data = vec![0.0f64; n_elems];
        let report = rlrpd_execute(&mut data, n_iters, threads, body);
        assert_eq!(data, expect, "R-LRPD result must equal sequential");
        report
    }

    #[test]
    fn fully_parallel_loop_takes_one_round() {
        let body = |i: usize, ctx: &mut dyn SpecAccess| {
            ctx.write(i, (i * 3) as f64);
        };
        let r = check(256, 256, 4, &body);
        assert_eq!(r.rounds, 1);
        assert_eq!(r.reexecuted_iterations, 0);
        assert_eq!(r.efficiency(), 1.0);
    }

    /// A single dependence in the middle (the TRACK shape): the prefix
    /// commits in round one, the suffix re-executes and commits.
    #[test]
    fn single_midpoint_dependence_two_rounds() {
        let n = 400;
        let body = move |i: usize, ctx: &mut dyn SpecAccess| {
            if i == 250 {
                let v = ctx.read(10); // written by iteration 10
                ctx.write(300, v + 1.0);
            } else if i == 10 {
                ctx.write(10, 7.0);
            } else {
                ctx.write(i, i as f64);
            }
        };
        let r = check(512, n, 4, &body);
        assert!(r.rounds <= 3, "rounds = {}", r.rounds);
        assert!(r.reexecuted_iterations < n, "partial commit must save work");
    }

    /// A dense dependence chain: every iteration reads the previous one.
    /// R-LRPD still terminates with the exact sequential result.
    #[test]
    fn serial_chain_terminates_exactly() {
        let n = 64;
        let body = |i: usize, ctx: &mut dyn SpecAccess| {
            let prev = if i == 0 { 1.0 } else { ctx.read(i - 1) };
            ctx.write(i, prev + 1.0);
        };
        let r = check(64, n, 4, &body);
        assert!(r.rounds >= 2, "a serial chain cannot commit in one window");
        assert!(r.rounds <= n, "termination within n rounds");
    }

    /// Dependences early in the loop hurt more than late ones (less work
    /// commits per round) — the asymmetry the paper's theorem exploits.
    #[test]
    fn late_dependences_waste_less_work() {
        let mk = |dep_at: usize| {
            move |i: usize, ctx: &mut dyn SpecAccess| {
                if i == dep_at {
                    let v = ctx.read(0);
                    ctx.write(1, v);
                } else if i == 1 {
                    ctx.write(0, 5.0);
                } else {
                    ctx.write(2 + (i % 500), i as f64);
                }
            }
        };
        let n = 1000;
        let early = {
            let body = mk(n / 4 + 130);
            let mut d = vec![0.0; 512];
            rlrpd_execute(&mut d, n, 4, &body)
        };
        let late = {
            let body = mk(n - 60);
            let mut d = vec![0.0; 512];
            rlrpd_execute(&mut d, n, 4, &body)
        };
        assert!(
            late.reexecuted_iterations <= early.reexecuted_iterations,
            "late {} vs early {}",
            late.reexecuted_iterations,
            early.reexecuted_iterations
        );
    }

    /// Reductions mixed with independent writes stay single-round.
    #[test]
    fn reductions_do_not_trigger_reexecution() {
        let body = |i: usize, ctx: &mut dyn SpecAccess| {
            ctx.reduce(0, 1.0);
            ctx.write(1 + (i % 100), i as f64);
        };
        let r = check(128, 500, 8, &body);
        assert_eq!(r.rounds, 1);
    }

    /// Efficiency metric sanity.
    #[test]
    fn efficiency_bounds() {
        let body = |i: usize, ctx: &mut dyn SpecAccess| {
            ctx.write(i % 32, 1.0);
        };
        let r = check(32, 100, 4, &body);
        assert!(r.efficiency() > 0.0 && r.efficiency() <= 1.0);
    }
}
