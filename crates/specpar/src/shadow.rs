//! Shadow structures for speculative loop execution.
//!
//! The LRPD test instruments every access to the array under test with
//! marking operations on *shadow* state: per-element flags recording
//! whether the element was written, read without a covering prior write
//! ("exposed read", which defeats privatization), or used exclusively in a
//! reduction-shaped update.  The cross-processor analysis of those flags
//! decides whether the speculative parallel execution was legal.

/// What a speculative read observes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReadView {
    /// Covered by an earlier private write: use this value.
    Covered(f64),
    /// Element only reduced so far: use `base + partial`.
    Partial(f64),
    /// Exposed: read the original array.
    Exposed,
}

/// Per-element access flags accumulated by one processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Marks {
    /// Element was written (plain write, not a reduction update).
    pub written: bool,
    /// Element was read before any write by this processor (an exposed
    /// read: its value came from outside the iteration block).
    pub exposed_read: bool,
    /// Element was updated only through reduction operations.
    pub reduced: bool,
}

impl Marks {
    /// True if this processor touched the element at all.
    pub fn touched(&self) -> bool {
        self.written || self.exposed_read || self.reduced
    }
}

/// One processor's speculative view of the array under test: private
/// values plus shadow marks, with O(1) reset between speculative windows
/// via epoch tags.
#[derive(Debug)]
pub struct ShadowArray {
    values: Vec<f64>,
    marks: Vec<Marks>,
    /// First iteration (within the processor's chunk) that accessed each
    /// element — used by the Recursive LRPD test to locate dependence
    /// sources and sinks.
    first_access: Vec<u32>,
    epoch: Vec<u32>,
    current_epoch: u32,
    touched: Vec<u32>,
}

impl ShadowArray {
    /// Create a shadow for an array of `n` elements.
    pub fn new(n: usize) -> Self {
        ShadowArray {
            values: vec![0.0; n],
            marks: vec![Marks::default(); n],
            first_access: vec![u32::MAX; n],
            epoch: vec![0; n],
            current_epoch: 0,
            touched: Vec::new(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the shadow covers no elements.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Begin a new speculative window, logically clearing all marks.
    pub fn reset(&mut self) {
        self.current_epoch += 1;
        self.touched.clear();
    }

    #[inline]
    fn activate(&mut self, x: usize, iter: u32) {
        if self.epoch[x] != self.current_epoch {
            self.epoch[x] = self.current_epoch;
            self.marks[x] = Marks::default();
            self.first_access[x] = iter;
            // Zero the private slot on first touch of the window so a later
            // reduction accumulates from the neutral element even when the
            // first access was a read (stale values from earlier windows
            // must never leak into partial sums).
            self.values[x] = 0.0;
            self.touched.push(x as u32);
        }
    }

    /// Record a read of element `x` at (chunk-local) iteration `iter`.
    ///
    /// * a read covered by an earlier private write returns the private
    ///   value;
    /// * a read of an element this processor has only *reduced* returns
    ///   the partial sum — the caller reconstructs `base + partial`, which
    ///   is sequentially exact within the block — but is also marked as an
    ///   exposed read, because partials accumulated by *other* blocks are
    ///   invisible to it (the cross-block analysis turns that into a
    ///   dependence when an earlier block produced the element);
    /// * any other read is exposed: the caller reads the original array.
    #[inline]
    pub fn read(&mut self, x: usize, iter: u32) -> ReadView {
        self.activate(x, iter);
        let m = &mut self.marks[x];
        if m.written {
            ReadView::Covered(self.values[x])
        } else if m.reduced {
            m.exposed_read = true;
            ReadView::Partial(self.values[x])
        } else {
            m.exposed_read = true;
            ReadView::Exposed
        }
    }

    /// Record a plain write of element `x`.
    #[inline]
    pub fn write(&mut self, x: usize, iter: u32, v: f64) {
        self.activate(x, iter);
        self.marks[x].written = true;
        self.values[x] = v;
    }

    /// Record a reduction update (`x += v` shape) of element `x`.
    /// The accumulation starts from zero (`activate` clears the slot):
    /// partial sums are combined with the original value at commit time.
    #[inline]
    pub fn reduce(&mut self, x: usize, iter: u32, v: f64) {
        self.activate(x, iter);
        self.marks[x].reduced = true;
        self.values[x] += v;
    }

    /// Marks of element `x` in the current window.
    #[inline]
    pub fn marks(&self, x: usize) -> Marks {
        if self.epoch[x] == self.current_epoch {
            self.marks[x]
        } else {
            Marks::default()
        }
    }

    /// Private value of element `x` (meaningful only if touched).
    #[inline]
    pub fn value(&self, x: usize) -> f64 {
        self.values[x]
    }

    /// Chunk-local iteration of the first access to `x` in this window.
    #[inline]
    pub fn first_access(&self, x: usize) -> Option<u32> {
        if self.epoch[x] == self.current_epoch && self.first_access[x] != u32::MAX {
            Some(self.first_access[x])
        } else {
            None
        }
    }

    /// Elements touched during the current window.
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposed_read_vs_covered_read() {
        let mut s = ShadowArray::new(8);
        s.reset();
        // Read before write: exposed.
        assert_eq!(s.read(3, 0), ReadView::Exposed);
        assert!(s.marks(3).exposed_read);
        // Write then read: covered, returns private value.
        s.write(4, 1, 2.5);
        assert_eq!(s.read(4, 2), ReadView::Covered(2.5));
        assert!(s.marks(4).written);
        assert!(!s.marks(4).exposed_read);
        // Reduce then read: partial view, marked exposed.
        s.reduce(5, 3, 4.0);
        assert_eq!(s.read(5, 4), ReadView::Partial(4.0));
        assert!(s.marks(5).exposed_read && s.marks(5).reduced);
    }

    #[test]
    fn reduction_accumulates_from_zero() {
        let mut s = ShadowArray::new(4);
        s.reset();
        s.reduce(1, 0, 2.0);
        s.reduce(1, 1, 3.0);
        assert_eq!(s.value(1), 5.0);
        assert!(s.marks(1).reduced);
        assert!(!s.marks(1).written);
    }

    #[test]
    fn reset_clears_marks_cheaply() {
        let mut s = ShadowArray::new(4);
        s.reset();
        s.write(0, 0, 1.0);
        s.reduce(1, 0, 1.0);
        assert!(s.marks(0).written);
        s.reset();
        assert_eq!(s.marks(0), Marks::default());
        assert_eq!(s.marks(1), Marks::default());
        assert!(s.touched().is_empty());
        assert_eq!(s.first_access(0), None);
    }

    #[test]
    fn touched_list_tracks_current_window() {
        let mut s = ShadowArray::new(10);
        s.reset();
        s.write(2, 0, 1.0);
        s.read(7, 1);
        s.reduce(2, 2, 1.0); // already touched: not re-listed
        let mut t = s.touched().to_vec();
        t.sort_unstable();
        assert_eq!(t, vec![2, 7]);
    }

    #[test]
    fn first_access_records_earliest_iteration() {
        let mut s = ShadowArray::new(4);
        s.reset();
        s.read(0, 5);
        s.write(0, 9, 1.0);
        assert_eq!(s.first_access(0), Some(5));
    }

    #[test]
    fn read_then_reduce_starts_partial_from_zero() {
        // Regression: an exposed read activates the element; the following
        // reduce must still accumulate from zero, not from stale storage.
        let mut s = ShadowArray::new(4);
        s.reset();
        s.write(2, 0, 123.0); // pollute the slot in window 1
        s.reset();
        assert_eq!(s.read(2, 0), ReadView::Exposed);
        s.reduce(2, 1, -5.0);
        assert_eq!(s.value(2), -5.0, "partial must not include stale 123.0");
        let m = s.marks(2);
        assert!(m.reduced && m.exposed_read && !m.written);
    }

    #[test]
    fn mixed_write_then_reduce_flags_both() {
        let mut s = ShadowArray::new(4);
        s.reset();
        s.write(0, 0, 7.0);
        s.reduce(0, 1, 1.0);
        let m = s.marks(0);
        assert!(m.written && m.reduced);
        // Value semantics: reduce accumulates into the written value.
        assert_eq!(s.value(0), 8.0);
    }
}
