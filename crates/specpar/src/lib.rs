//! # smartapps-specpar — speculative run-time loop parallelization
//!
//! The Section 3 substrate of the SmartApps paper: the run-time techniques
//! the compiler embeds to "detect and exploit loop level parallelism in
//! various cases encountered in irregular applications":
//!
//! * [`lrpd`] — the **LRPD test**: speculative parallel execution with
//!   privatization and reduction validation; falls back to sequential
//!   execution when a cross-processor flow dependence is detected;
//! * [`rlrpd`] — the **Recursive LRPD test**: for *partially parallel*
//!   loops, commits the correct prefix of blocks and re-executes only from
//!   the earliest dependence sink (the technique that made TRACK speed up);
//! * [`wavefront`] — **inspector/executor** wavefront parallelization:
//!   dependence levels computed by an inspector, levels swept in parallel;
//! * [`whileloop`] — **WHILE-loop parallelization**: linked-list traversal
//!   collection plus speculative strip-mining under unknown trip counts;
//! * [`fgbs`] — **feedback-guided blocked scheduling**: block boundaries
//!   predicted from previous invocations' measured block times.
//!
//! ## Example: speculating on an irregular loop
//!
//! ```
//! use smartapps_specpar::lrpd::{lrpd_execute, SpecAccess};
//!
//! let mut data = vec![0.0f64; 128];
//! let report = lrpd_execute(&mut data, 128, 4, &|i, ctx: &mut dyn SpecAccess| {
//!     ctx.write(i, i as f64); // independent writes: fully parallel
//! });
//! assert!(report.succeeded);
//! assert_eq!(data[100], 100.0);
//! ```

#![warn(missing_docs)]

pub mod fgbs;
pub mod lrpd;
pub mod rlrpd;
pub mod shadow;
pub mod wavefront;
pub mod whileloop;

pub use fgbs::FgbsScheduler;
pub use lrpd::{lrpd_execute, run_sequential, LrpdReport, SpecAccess, Speculator};
pub use rlrpd::{rlrpd_execute, RlrpdReport};
pub use shadow::{Marks, ShadowArray};
pub use wavefront::{inspect as wavefront_inspect, Wavefronts, WfData};
pub use whileloop::{collect_list, execute_over, speculative_while, ListArena};
