//! The decision model: predict each reduction scheme's cost from measured
//! pattern characteristics and pick the best match.
//!
//! "To make this choice we use a decision algorithm that takes as input
//! measured, real, code characteristics, and a library of available
//! techniques, and selects an algorithm for the given instance."
//!
//! The model charges every scheme the common loop-body work and then its
//! scheme-specific costs:
//!
//! * `rep` — private-array initialization (O(N) stores), cache behaviour
//!   of the touched private footprint, and an O(N) merge that does not
//!   shrink with more processors;
//! * `ll` — lazy initialization via touched-line links (no O(N) init), a
//!   per-reference link-maintenance overhead, and a merge proportional to
//!   the touched lines;
//! * `sel` — an inspector pass, a per-reference indirection through the
//!   element→compact map (whose footprint scales with N, the reason `sel`
//!   degrades on huge arrays it does not pay O(N) sweeps for), and a merge
//!   proportional to the conflicting elements;
//! * `lw` — an inspector pass plus *iteration replication*: the loop body
//!   re-executes once per owner of each iteration's references;
//! * `hash` — a per-reference hashing overhead with a working set
//!   proportional to the referenced (not dimensioned) elements, and a
//!   merge proportional to the distinct elements;
//! * `simd` — lane-striped private accumulation (see
//!   [`crate::simd`]): a cheaper chain-free vector update per reference,
//!   paid for by a `SIMD_LANES`-fold private footprint and slightly
//!   heavier init and merge sweeps.
//!
//! Constants are calibrated for this crate's implementations (see
//! `ModelParams`); the same procedure the original system used — model
//! constants measured on the target machine, inputs measured at run time.

use crate::inspect::Inspection;
use crate::scheme::Scheme;
use serde::{Deserialize, Serialize};
use smartapps_workloads::PatternChars;

/// Calibration constants (abstract cost units per operation; only ratios
/// matter).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelParams {
    /// Cost of one private-array element store during `rep` init.
    pub init_store: f64,
    /// Cost of one element visit during the `rep` merge (loads from P
    /// partial arrays amortized per element, plus the store).
    pub rep_merge_elem: f64,
    /// Per-reference link-bitmap maintenance overhead of `ll`.
    pub ll_link_overhead: f64,
    /// Per-touched-line merge cost of `ll` (8 combines + stripe lock).
    pub ll_merge_line: f64,
    /// Per-reference compact-map indirection overhead of `sel`.
    pub sel_indirect: f64,
    /// Per-conflicting-element merge cost of `sel`.
    pub sel_merge_elem: f64,
    /// Per-reference hashing overhead factor of `hash` (relative to a
    /// plain cached update).
    pub hash_per_ref: f64,
    /// Per-distinct-element merge cost of `hash`.
    pub hash_merge_elem: f64,
    /// Inspector cost per reference (one characterization pass).
    pub inspector_per_ref: f64,
    /// Per-scanned-reference ownership test in `lw` (replicated iterations
    /// scan all their references but commit only the owned ones).
    pub lw_scan: f64,
    /// Body work per reduction reference (address generation plus the
    /// contribution's flops).
    pub body_per_ref: f64,
    /// Fixed body work per iteration.
    pub body_per_iter: f64,
    /// Base cost of one update hitting in cache.
    pub update_hit: f64,
    /// Additional cost of one update missing the cache.
    pub update_miss_penalty: f64,
    /// Cache capacity per processor, bytes (paper's L2: 512 KB).
    pub cache_bytes: f64,
    /// Invocation count the inspector amortizes over (reduction loops are
    /// typically re-entered many times per run; Table 2 shows up to 3855).
    pub amortize_invocations: f64,
    /// Per-reference cost of a PCLR reduction update (the
    /// `load&pin`/add/`store&unpin` triple hitting a reduction-state
    /// line; misses are filled locally with neutral lines, so the
    /// effective per-reference cost stays near a cache hit).
    pub pclr_update: f64,
    /// Per-resident-line cost of the PCLR end-of-loop cache flush (sweep
    /// plus background combine at the home).
    pub pclr_flush_line: f64,
    /// Fixed per-invocation cost of offloading to the PCLR backend
    /// (controller configuration syscall, trace lowering, readback).
    pub pclr_offload_fixed: f64,
    /// Per-reference cost of a `simd` lane-striped update: the rotation
    /// removes the serial dependency chain on hot elements, so this
    /// undercuts a scalar `update_hit`.
    pub simd_update: f64,
    /// Per-element cost of initializing the `SIMD_LANES` private slots
    /// during `simd` init (vectorized neutral stores).
    pub simd_init_elem: f64,
    /// Per-element cost of the `simd` tiled merge: slot-wise vector
    /// accumulation across P stripes plus the horizontal tree fold.
    pub simd_merge_elem: f64,
}

impl Default for ModelParams {
    fn default() -> Self {
        ModelParams {
            init_store: 1.0,
            rep_merge_elem: 2.0,
            ll_link_overhead: 0.55,
            ll_merge_line: 10.0,
            sel_indirect: 0.5,
            sel_merge_elem: 2.5,
            hash_per_ref: 2.5,
            hash_merge_elem: 4.0,
            inspector_per_ref: 1.5,
            lw_scan: 0.25,
            body_per_ref: 3.0,
            body_per_iter: 2.0,
            update_hit: 1.0,
            update_miss_penalty: 2.0,
            cache_bytes: 512.0 * 1024.0,
            amortize_invocations: 5.0,
            pclr_update: 1.3,
            pclr_flush_line: 12.0,
            pclr_offload_fixed: 60_000.0,
            simd_update: 0.7,
            simd_init_elem: 1.6,
            simd_merge_elem: 2.6,
        }
    }
}

impl ModelParams {
    /// Per-access cost for a working set of `bytes`: `update_hit` while it
    /// fits in cache, growing smoothly to `update_hit +
    /// update_miss_penalty` when it exceeds cache several-fold.
    ///
    /// ```
    /// let q = smartapps_reductions::ModelParams::default();
    /// let resident = q.locality_cost(64.0 * 1024.0);      // fits: base cost
    /// let thrashing = q.locality_cost(64.0 * 1024.0 * 1024.0);
    /// assert_eq!(resident, q.update_hit);
    /// assert!(thrashing > resident);
    /// assert!(thrashing <= q.update_hit + q.update_miss_penalty + 1e-9);
    /// ```
    pub fn locality_cost(&self, bytes: f64) -> f64 {
        if bytes <= self.cache_bytes {
            self.update_hit
        } else {
            let overflow = (bytes / self.cache_bytes).log2().min(3.0) / 3.0;
            self.update_hit + self.update_miss_penalty * overflow
        }
    }
}

/// Everything the model needs about one loop instance.
#[derive(Debug, Clone)]
pub struct ModelInput {
    /// Measured characterization (MO, CON, SP, CH...).
    pub chars: PatternChars,
    /// Number of conflicting elements under block scheduling (from the
    /// inspector; estimated from CH if unavailable).
    pub conflicting: usize,
    /// Iteration replication factor for owner-computes (from the
    /// inspector; estimated from MO if unavailable).
    pub replication: f64,
    /// Processor count.
    pub threads: usize,
    /// Whether local write is applicable (iteration replication is illegal
    /// when the loop body has other side effects).
    pub lw_feasible: bool,
    /// Number of contribution functions fused into one traversal (see
    /// [`crate::fused`]).  `1` is a plain single-output execution; `K > 1`
    /// shares the pattern walk and iteration scaffolding across K outputs
    /// while paying K-fold body, update, and merge costs.
    pub fanout: usize,
    /// Whether a PCLR-capable execution backend is available for this
    /// instance.  When `false` (the default) the hardware
    /// [`Scheme::Pclr`] never enters the ranking, preserving the
    /// software-only competition of Section 4.
    pub pclr_available: bool,
    /// Whether the vectorized [`Scheme::Simd`] backend is available *and*
    /// feasible for this instance (dense/privatizing regime — see
    /// [`crate::simd::simd_feasible`]).  When `false` (the default) the
    /// vector scheme never enters the ranking, exactly like an
    /// infeasible `lw`.
    pub simd_available: bool,
}

impl ModelInput {
    /// Build from a full inspection (single-output, `fanout == 1`).
    pub fn from_inspection(insp: &Inspection, lw_feasible: bool) -> Self {
        ModelInput {
            chars: insp.chars.clone(),
            conflicting: insp.conflicts.num_conflicting,
            replication: insp.owners.replication,
            threads: insp.conflicts.threads,
            lw_feasible,
            fanout: 1,
            pclr_available: false,
            simd_available: false,
        }
    }

    /// The same instance evaluated as a fused batch of `fanout`
    /// contribution functions sharing one traversal.
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        self.fanout = fanout.max(1);
        self
    }

    /// The same instance with a PCLR execution backend (un)available, so
    /// the hardware scheme can join the ranking.
    pub fn with_pclr(mut self, available: bool) -> Self {
        self.pclr_available = available;
        self
    }

    /// The same instance with the vectorized SIMD backend (un)available
    /// and feasible, so [`Scheme::Simd`] can join the ranking.
    pub fn with_simd(mut self, available: bool) -> Self {
        self.simd_available = available;
        self
    }

    /// Estimate the conflicting-element count from the CH histogram when
    /// no inspector ran: an element with k references spread uniformly
    /// over P blocks stays conflict-free with probability ~P^(1-k).
    pub fn estimate_conflicts(chars: &PatternChars, threads: usize) -> usize {
        let p = threads as f64;
        let mut c = 0.0;
        for (b, &count) in chars.ch.iter().enumerate() {
            let k = (b + 1) as f64;
            let conflict_prob = 1.0 - p.powf(1.0 - k);
            c += count as f64 * conflict_prob.max(0.0);
        }
        c.round() as usize
    }

    /// Estimate the replication factor from MO: expected owner blocks hit
    /// by MO uniform references.
    pub fn estimate_replication(chars: &PatternChars, threads: usize) -> f64 {
        let p = threads as f64;
        (p * (1.0 - (1.0 - 1.0 / p).powf(chars.mo))).max(1.0)
    }
}

/// A predicted cost ranking.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Prediction {
    /// Schemes with predicted per-processor costs, ascending (best first).
    pub ranking: Vec<(Scheme, f64)>,
}

impl Prediction {
    /// The recommended scheme.
    pub fn best(&self) -> Scheme {
        self.ranking[0].0
    }

    /// Predicted cost of a scheme.
    pub fn cost_of(&self, s: Scheme) -> Option<f64> {
        self.ranking.iter().find(|(x, _)| *x == s).map(|(_, c)| *c)
    }
}

/// The decision model.
#[derive(Debug, Clone, Default)]
pub struct DecisionModel {
    /// Calibration constants.
    pub params: ModelParams,
}

impl DecisionModel {
    /// Build with custom constants.
    pub fn new(params: ModelParams) -> Self {
        DecisionModel { params }
    }

    /// Predict the per-processor cost of one scheme.
    ///
    /// With `input.fanout == K > 1` the instance is a fused batch (see
    /// [`crate::fused`]): the traversal scaffolding (`body_per_iter`,
    /// address generation, link maintenance, `sel` indirection, `lw`
    /// ownership scans, hash probing) is charged **once**, while body
    /// evaluation, updates, private-storage footprints, initialization,
    /// and merges scale with K.
    pub fn predict(&self, s: Scheme, input: &ModelInput) -> f64 {
        let q = &self.params;
        let c = &input.chars;
        let p = input.threads.max(1) as f64;
        let k = input.fanout.max(1) as f64;
        let n = c.num_elements as f64;
        let r = c.references as f64;
        let d = c.distinct as f64;
        let iters = c.iterations as f64;
        // Common loop-body work, perfectly parallel: the iteration
        // scaffolding is shared across fused outputs, the per-reference
        // contributions are not.
        let body = (iters * q.body_per_iter + k * r * q.body_per_ref) / p;
        // Touched private footprint per thread (per output).
        let d_t = d.min(r / p);
        let insp = r * q.inspector_per_ref / q.amortize_invocations / p;
        match s {
            Scheme::Seq => iters * q.body_per_iter + k * r * (q.body_per_ref + q.update_hit),
            Scheme::Rep => {
                let upd = q.locality_cost(k * d_t * 8.0);
                q.init_store * k * n + body + k * (r / p) * upd + q.rep_merge_elem * k * n
            }
            Scheme::Ll => {
                // Touched lines per thread: disjoint regions when the
                // pattern partitions cleanly (low conflicts), shared
                // everywhere when it scatters (high conflicts).  Fused
                // outputs touch identical lines, so the link list is
                // shared; the buffers and merges are not.
                let lines = c.distinct_lines as f64;
                let cf = if d > 0.0 {
                    input.conflicting as f64 / d
                } else {
                    0.0
                };
                let lines_t = (r / p).min(lines * (cf + (1.0 - cf) / p));
                let upd = q.locality_cost(k * lines_t * 64.0);
                body + (r / p) * (k * upd + q.ll_link_overhead) + q.ll_merge_line * k * lines_t
            }
            Scheme::Sel => {
                let conf = input.conflicting as f64;
                // The compact map (4 bytes/element over the whole array,
                // shared by all outputs) plus K copies of the
                // directly-updated shared elements; the indirection is
                // paid once per reference.
                let upd = q.locality_cost(n * 4.0 + k * d_t * 8.0);
                insp + body + (r / p) * (k * upd + q.sel_indirect) + q.sel_merge_elem * k * conf
            }
            Scheme::Lw => {
                if !input.lw_feasible {
                    return f64::INFINITY;
                }
                // Owner blocks partition the array: footprint N/P per
                // output.  Only the iteration scaffolding and ownership
                // scans replicate — once for the whole fused batch;
                // contributions and commits scale with K.
                let upd = q.locality_cost(k * n / p * 8.0);
                insp + input.replication * (iters * q.body_per_iter) / p
                    + input.replication * (r / p) * q.lw_scan
                    + k * (r / p) * (q.body_per_ref + upd)
            }
            Scheme::Hash => {
                // Table entries are ~(8 + 8K) bytes (key + K values); the
                // resident working set follows the *hot* reference mass
                // (CH tail), not the raw distinct count — under contention
                // the table stays cache-sized while arrays do not.  One
                // probe per reference serves all K outputs.
                let d_hot = (c.effective_distinct(0.9) as f64).min(r / p);
                let loc = q.locality_cost(d_hot * (8.0 + 8.0 * k));
                body + (r / p) * loc * (q.hash_per_ref + (k - 1.0)) + q.hash_merge_elem * k * d_t
            }
            Scheme::Pclr => {
                // Hardware combining (Section 5): no private-array init,
                // no software merge.  Reduction misses are filled locally
                // with neutral lines, so updates cost near a cache hit
                // regardless of the array's dimension; the "merge" is the
                // end-of-loop flush of resident reduction lines, combined
                // by the home controllers in the background.  Fused
                // sweeps and unavailable backends never route here.
                if !input.pclr_available || input.fanout > 1 {
                    return f64::INFINITY;
                }
                // Only *resident* reduction lines are flushed: "the work
                // is at worst proportional to the size of the cache".
                let resident = (c.distinct_lines as f64)
                    .min(r / p)
                    .min(q.cache_bytes / 64.0);
                // The offload overhead (configuration, trace lowering,
                // readback) is serial — it does not shrink with pool
                // width, like the software merges above.
                body + (r / p) * q.pclr_update + q.pclr_flush_line * resident + q.pclr_offload_fixed
            }
            Scheme::Simd => {
                // Lane-striped `rep` (see `crate::simd`): the chain-free
                // vector update undercuts a scalar hit, but the private
                // footprint, init, and merge all carry the lane factor —
                // so the scheme only wins dense high-reuse floods where
                // the per-reference savings dominate the O(N) sweeps.
                // Masked instances and fused sweeps never route here.
                if !input.simd_available || input.fanout > 1 {
                    return f64::INFINITY;
                }
                let lanes = crate::simd::SIMD_LANES as f64;
                let upd = q.simd_update + (q.locality_cost(k * lanes * d_t * 8.0) - q.update_hit);
                q.simd_init_elem * k * n + body + k * (r / p) * upd + q.simd_merge_elem * k * n
            }
        }
    }

    /// Rank all parallel schemes for the given instance.  The hardware
    /// [`Scheme::Pclr`] joins the ranking only when the instance reports
    /// a PCLR backend ([`ModelInput::with_pclr`]), and the vectorized
    /// [`Scheme::Simd`] only when a SIMD backend is available and the
    /// pattern is feasible ([`ModelInput::with_simd`]); software-only
    /// callers keep the five-scheme competition of Section 4.
    ///
    /// These are *analytic prior* costs — the runtime's calibrator
    /// multiplies each by a learned measured/predicted correction before
    /// acting on the ranking (see `docs/MODEL.md`).
    ///
    /// ```
    /// use smartapps_reductions::{DecisionModel, Inspector, ModelInput};
    /// use smartapps_workloads::{Distribution, PatternSpec};
    ///
    /// let pat = PatternSpec {
    ///     num_elements: 4096, iterations: 20_000, refs_per_iter: 2,
    ///     coverage: 1.0, dist: Distribution::Uniform, seed: 7,
    /// }.generate();
    /// let insp = Inspector::analyze(&pat, 4);
    /// let pred = DecisionModel::default().decide(&ModelInput::from_inspection(&insp, false));
    /// assert_eq!(pred.ranking.len(), 5);        // software-only competition
    /// assert!(pred.cost_of(pred.best()).unwrap() <= pred.ranking[1].1);
    /// ```
    pub fn decide(&self, input: &ModelInput) -> Prediction {
        let mut ranking: Vec<(Scheme, f64)> = Scheme::all_parallel()
            .into_iter()
            .map(|s| (s, self.predict(s, input)))
            .collect();
        if input.pclr_available {
            ranking.push((Scheme::Pclr, self.predict(Scheme::Pclr, input)));
        }
        if input.simd_available {
            ranking.push((Scheme::Simd, self.predict(Scheme::Simd, input)));
        }
        ranking.sort_by(|a, b| a.1.total_cmp(&b.1));
        Prediction { ranking }
    }

    /// Predicted parallel speedup of a scheme over sequential execution.
    pub fn predicted_speedup(&self, s: Scheme, input: &ModelInput) -> f64 {
        let seq = self.predict(Scheme::Seq, input);
        let par = self.predict(s, input);
        if par.is_finite() && par > 0.0 {
            seq / par
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartapps_workloads::{Distribution, PatternSpec};

    fn chars_for(n: usize, iters: usize, mo: usize, coverage: f64) -> PatternChars {
        let pat = PatternSpec {
            num_elements: n,
            iterations: iters,
            refs_per_iter: mo,
            coverage,
            dist: Distribution::Uniform,
            seed: 1,
        }
        .generate();
        PatternChars::measure(&pat)
    }

    fn input(chars: PatternChars, threads: usize, lw: bool) -> ModelInput {
        let conflicting = ModelInput::estimate_conflicts(&chars, threads);
        let replication = ModelInput::estimate_replication(&chars, threads);
        ModelInput {
            chars,
            conflicting,
            replication,
            threads,
            lw_feasible: lw,
            fanout: 1,
            pclr_available: false,
            simd_available: false,
        }
    }

    #[test]
    fn dense_high_reuse_prefers_rep_family() {
        // Small array, massive reuse: private arrays amortize fully.
        let c = chars_for(10_000, 500_000, 2, 1.0);
        let m = DecisionModel::default();
        let pred = m.decide(&input(c, 8, false));
        assert!(
            matches!(pred.best(), Scheme::Rep | Scheme::Ll),
            "got {:?}",
            pred.ranking
        );
    }

    #[test]
    fn extremely_sparse_prefers_hash() {
        // SPICE shape: huge dimension, tiny touched set, almost no reuse.
        let c = chars_for(200_000, 10, 28, 0.0015);
        let m = DecisionModel::default();
        let pred = m.decide(&input(c, 8, false));
        assert_eq!(pred.best(), Scheme::Hash, "ranking: {:?}", pred.ranking);
        // And by a wide margin over rep, which pays O(N) sweeps.
        let hash = pred.cost_of(Scheme::Hash).unwrap();
        let rep = pred.cost_of(Scheme::Rep).unwrap();
        assert!(rep > 5.0 * hash, "rep {rep} vs hash {hash}");
    }

    #[test]
    fn lw_infeasible_is_never_recommended() {
        let c = chars_for(50_000, 100_000, 2, 0.3);
        let m = DecisionModel::default();
        let inp = input(c, 8, false);
        assert!(m.predict(Scheme::Lw, &inp).is_infinite());
        assert_ne!(m.decide(&inp).best(), Scheme::Lw);
    }

    #[test]
    fn growing_dimension_moves_away_from_rep() {
        // Same touched volume, growing dimension: rep's O(N) init+merge
        // eventually loses.
        let m = DecisionModel::default();
        let small = m.decide(&input(chars_for(20_000, 200_000, 2, 1.0), 8, false));
        let large = m.decide(&input(chars_for(2_000_000, 10_000, 2, 0.0025), 8, false));
        let rep_rank_small = small
            .ranking
            .iter()
            .position(|(s, _)| *s == Scheme::Rep)
            .unwrap();
        let rep_rank_large = large
            .ranking
            .iter()
            .position(|(s, _)| *s == Scheme::Rep)
            .unwrap();
        assert!(
            rep_rank_large > rep_rank_small,
            "rep rank should drop: {:?} -> {:?}",
            small.ranking,
            large.ranking
        );
        assert!(matches!(large.best(), Scheme::Sel | Scheme::Hash));
    }

    #[test]
    fn predicted_speedup_positive_and_bounded() {
        let c = chars_for(10_000, 100_000, 2, 1.0);
        let m = DecisionModel::default();
        let inp = input(c, 8, true);
        for s in Scheme::all_parallel() {
            let sp = m.predicted_speedup(s, &inp);
            assert!((0.0..=16.0).contains(&sp), "{s}: {sp}");
        }
        assert!(m.predicted_speedup(Scheme::Rep, &inp) > 1.0);
    }

    #[test]
    fn conflict_estimate_matches_intuition() {
        let c = chars_for(10_000, 40_000, 1, 1.0);
        // With high reuse, most elements conflict under 8 threads.
        let est = ModelInput::estimate_conflicts(&c, 8);
        assert!(est > c.distinct / 2, "est {est} of {}", c.distinct);
        // With single references, nothing conflicts.
        let c1 = chars_for(100_000, 10_000, 1, 1.0);
        // Most elements have exactly 1 reference here.
        let est1 = ModelInput::estimate_conflicts(&c1, 8);
        assert!(est1 < c1.distinct / 4, "est1 {est1} of {}", c1.distinct);
    }

    #[test]
    fn replication_estimate_bounds() {
        let c = chars_for(1_000, 1_000, 2, 1.0);
        for p in [1usize, 2, 8, 16] {
            let f = ModelInput::estimate_replication(&c, p);
            assert!((1.0..=2.0 + 1e-9).contains(&f), "p={p}: {f}");
        }
        let c28 = chars_for(10_000, 100, 28, 1.0);
        let f = ModelInput::estimate_replication(&c28, 8);
        assert!(
            f > 7.0,
            "MO=28 over 8 threads replicates to almost all: {f}"
        );
    }

    #[test]
    fn fused_fanout_beats_k_separate_runs() {
        // A fused batch of K shares the traversal: its predicted cost must
        // be strictly below K independent executions, for every scheme.
        let c = chars_for(10_000, 100_000, 2, 1.0);
        let m = DecisionModel::default();
        let single = input(c.clone(), 8, true);
        for k in [2usize, 4, 8] {
            let fused = single.clone().with_fanout(k);
            for s in Scheme::all_parallel() {
                let one = m.predict(s, &single);
                let batched = m.predict(s, &fused);
                assert!(
                    batched < k as f64 * one,
                    "{s} fanout {k}: fused {batched} vs {k}x single {}",
                    k as f64 * one
                );
                assert!(batched > one, "{s} fanout {k}: more outputs cost more");
            }
        }
        // fanout == 1 (and with_fanout(0) clamping to 1) is the identity.
        assert_eq!(
            m.predict(Scheme::Rep, &single),
            m.predict(Scheme::Rep, &single.clone().with_fanout(0))
        );
    }

    #[test]
    fn pclr_joins_the_ranking_only_when_available() {
        let c = chars_for(50_000, 100_000, 2, 0.3);
        let m = DecisionModel::default();
        let inp = input(c, 8, false);
        // Software-only callers never see the hardware scheme.
        assert!(m.predict(Scheme::Pclr, &inp).is_infinite());
        assert_eq!(m.decide(&inp).ranking.len(), 5);
        // With a backend, pclr competes with a finite cost.
        let with = inp.clone().with_pclr(true);
        assert_eq!(m.decide(&with).ranking.len(), 6);
        assert!(m.predict(Scheme::Pclr, &with).is_finite());
        assert!(m.decide(&with).cost_of(Scheme::Pclr).is_some());
        // Fused batches never route to the hardware path.
        assert!(m.predict(Scheme::Pclr, &with.with_fanout(2)).is_infinite());
    }

    #[test]
    fn simd_joins_the_ranking_only_when_available() {
        let c = chars_for(10_000, 500_000, 2, 1.0);
        let m = DecisionModel::default();
        let inp = input(c, 8, false);
        // Masked instances (sparse regime, no backend) never see it.
        assert!(m.predict(Scheme::Simd, &inp).is_infinite());
        assert_eq!(m.decide(&inp).ranking.len(), 5);
        // With a feasible backend it competes with a finite cost.
        let with = inp.clone().with_simd(true);
        assert_eq!(m.decide(&with).ranking.len(), 6);
        assert!(m.predict(Scheme::Simd, &with).is_finite());
        // Fused batches never route to the vector path.
        assert!(m.predict(Scheme::Simd, &with.with_fanout(2)).is_infinite());
    }

    #[test]
    fn simd_undercuts_rep_on_dense_high_reuse_floods() {
        let m = DecisionModel::default();
        // Cache-resident array, massive reuse: the per-reference savings
        // of the chain-free vector update dominate the O(N) sweeps.
        let flood = input(chars_for(4_096, 500_000, 2, 1.0), 8, false).with_simd(true);
        let simd = m.predict(Scheme::Simd, &flood);
        let rep = m.predict(Scheme::Rep, &flood);
        assert!(simd < rep, "dense flood: simd {simd} vs rep {rep}");
        // Low reuse: the heavier init/merge sweeps make simd lose.
        let cold = input(chars_for(100_000, 20_000, 2, 1.0), 8, false).with_simd(true);
        let simd = m.predict(Scheme::Simd, &cold);
        let rep = m.predict(Scheme::Rep, &cold);
        assert!(simd > rep, "low reuse: simd {simd} vs rep {rep}");
    }

    #[test]
    fn pclr_wins_huge_scattered_classes_and_loses_small_ones() {
        let m = DecisionModel::default();
        // Huge dimension, scattered references, heavy traffic: every
        // software scheme pays O(N) sweeps, misses, or giant merges; the
        // hardware combines in place with no init and a cache-bounded
        // flush (the Figure 6 regime where Hw wins).
        let heavy = chars_for(2_000_000, 500_000, 2, 0.4);
        let pred = m.decide(&input(heavy, 8, false).with_pclr(true));
        assert_eq!(pred.best(), Scheme::Pclr, "ranking: {:?}", pred.ranking);
        // A small loop cannot amortize the offload: software keeps it.
        let tiny = chars_for(512, 200, 2, 1.0);
        let pred = m.decide(&input(tiny, 8, false).with_pclr(true));
        assert_ne!(pred.best(), Scheme::Pclr, "ranking: {:?}", pred.ranking);
    }

    #[test]
    fn simd_mask_tracks_the_sparsity_threshold_exactly() {
        use crate::simd::simd_feasible;
        // Distinct coverage straddling SP = 0.25 on a 1000-element
        // array: 249 distinct elements (sp 0.249) must mask the vector
        // path out of the ranking, 250 (sp 0.25) must admit it — the
        // exact boundary `simd_feasible` gates `with_simd` on.
        let m = DecisionModel::default();
        for (distinct, feasible) in [(249usize, false), (250usize, true)] {
            let rows: Vec<Vec<u32>> = (0..2000).map(|i| vec![(i % distinct) as u32]).collect();
            let pat = smartapps_workloads::AccessPattern::from_iters(1000, &rows);
            let chars = PatternChars::measure(&pat);
            let admit = simd_feasible(&chars);
            assert_eq!(admit, feasible, "sp {}", chars.sp);
            let inp = input(chars, 8, false).with_simd(admit);
            let pred = m.decide(&inp);
            assert_eq!(
                pred.cost_of(Scheme::Simd).is_some(),
                feasible,
                "ranking: {:?}",
                pred.ranking
            );
            assert_eq!(m.predict(Scheme::Simd, &inp).is_finite(), feasible);
        }
    }

    #[test]
    fn locality_cost_is_monotone() {
        let q = ModelParams::default();
        let a = q.locality_cost(100.0 * 1024.0);
        let b = q.locality_cost(1024.0 * 1024.0);
        let c = q.locality_cost(16.0 * 1024.0 * 1024.0);
        assert!(a <= b && b <= c);
        assert_eq!(a, q.update_hit);
        assert!(c <= q.update_hit + q.update_miss_penalty + 1e-9);
    }
}
