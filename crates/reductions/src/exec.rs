//! Unified execution front end: dispatch a [`Scheme`] with optional
//! inspector reuse, and measure scheme rankings the way Figure 3's
//! experimental column does.

use crate::algorithms;
use crate::inspect::{Inspection, Inspector};
use crate::scheme::{RedElem, Scheme};
use crate::spmd::{SpawnExecutor, SpmdExecutor};
use smartapps_workloads::pattern::AccessPattern;
use std::time::{Duration, Instant};

/// Execute one scheme on freshly spawned threads (the per-call path).
/// `sel` and `lw` need an inspection; if none is supplied one is computed
/// (and its cost is the caller's to account).
pub fn run_scheme<T: RedElem>(
    scheme: Scheme,
    pat: &AccessPattern,
    body: &(impl Fn(usize, usize) -> T + Sync),
    threads: usize,
    insp: Option<&Inspection>,
) -> Vec<T> {
    run_scheme_on(scheme, pat, body, threads, insp, &SpawnExecutor)
}

/// Execute one scheme on the supplied [`SpmdExecutor`] — the pooled
/// execution path used by `smartapps-runtime`, which routes the SPMD
/// region onto persistent workers instead of spawning threads per call.
///
/// # Panics
///
/// Panics for [`Scheme::Pclr`]: the hardware scheme has no software
/// kernel and must be routed to a PCLR-capable execution backend
/// (`smartapps-runtime`'s `PclrBackend`).
pub fn run_scheme_on<T: RedElem>(
    scheme: Scheme,
    pat: &AccessPattern,
    body: &(impl Fn(usize, usize) -> T + Sync),
    threads: usize,
    insp: Option<&Inspection>,
    exec: &(impl SpmdExecutor + ?Sized),
) -> Vec<T> {
    // `sel`/`lw` need the inspector's pre-analyses; reuse the caller's if
    // supplied, otherwise run one here.
    let own;
    let insp = match (scheme, insp) {
        (Scheme::Sel | Scheme::Lw, Some(i)) => Some(i),
        (Scheme::Sel | Scheme::Lw, None) => {
            own = Inspector::analyze(pat, threads);
            Some(&own)
        }
        _ => None,
    };
    match scheme {
        Scheme::Seq => algorithms::seq(pat, body),
        Scheme::Rep => algorithms::rep_on(pat, body, threads, exec),
        Scheme::Ll => algorithms::ll_on(pat, body, threads, exec),
        Scheme::Hash => algorithms::hash_on(pat, body, threads, exec),
        Scheme::Sel => algorithms::sel_on(pat, body, threads, &insp.unwrap().conflicts, exec),
        Scheme::Lw => algorithms::lw_on(pat, body, threads, &insp.unwrap().owners, exec),
        Scheme::Pclr => {
            panic!("Scheme::Pclr has no software kernel; route it to a PCLR execution backend")
        }
        Scheme::Simd => {
            panic!("Scheme::Simd is not dispatched here; route it to a SIMD execution backend")
        }
    }
}

/// Timing result of one scheme execution.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Scheme measured.
    pub scheme: Scheme,
    /// Wall time of the best repetition.
    pub elapsed: Duration,
}

/// Measure a scheme: run `reps` repetitions and keep the fastest (loops in
/// the paper's codes are invoked repeatedly; the steady-state invocation
/// time is what the rankings compare).
pub fn time_scheme<T: RedElem>(
    scheme: Scheme,
    pat: &AccessPattern,
    body: &(impl Fn(usize, usize) -> T + Sync),
    threads: usize,
    insp: Option<&Inspection>,
    reps: usize,
) -> (Vec<T>, Timing) {
    assert!(reps >= 1);
    let mut best = Duration::MAX;
    let mut out = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        out = run_scheme(scheme, pat, body, threads, insp);
        let dt = t0.elapsed();
        if dt < best {
            best = dt;
        }
    }
    (
        out,
        Timing {
            scheme,
            elapsed: best,
        },
    )
}

/// Measure all parallel schemes plus the sequential baseline, returning
/// timings sorted fastest-first (the experimental ranking of Figure 3) and
/// the sequential time for speedup computation.
///
/// Schemes whose results disagree with the sequential oracle (beyond FP
/// tolerance) panic — a wrong answer must never win a ranking.
pub fn rank_schemes(
    pat: &AccessPattern,
    body: &(impl Fn(usize, usize) -> f64 + Sync),
    threads: usize,
    lw_feasible: bool,
    reps: usize,
) -> (Vec<Timing>, Duration) {
    let insp = Inspector::analyze(pat, threads);
    let (oracle, seq_t) = time_scheme(Scheme::Seq, pat, body, 1, None, reps);
    let mut timings = Vec::new();
    for s in Scheme::all_parallel() {
        if s == Scheme::Lw && !lw_feasible {
            continue;
        }
        let (out, t) = time_scheme(s, pat, body, threads, Some(&insp), reps);
        for (e, (a, b)) in oracle.iter().zip(out.iter()).enumerate() {
            assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                "{s} wrong at element {e}: {a} vs {b}"
            );
        }
        timings.push(t);
    }
    timings.sort_by_key(|t| t.elapsed);
    (timings, seq_t.elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartapps_workloads::pattern::{contribution, sequential_reduce};
    use smartapps_workloads::{Distribution, PatternSpec};

    fn pat() -> AccessPattern {
        PatternSpec {
            num_elements: 2_000,
            iterations: 4_000,
            refs_per_iter: 2,
            coverage: 0.8,
            dist: Distribution::Uniform,
            seed: 13,
        }
        .generate()
    }

    #[test]
    fn run_scheme_dispatches_all() {
        let p = pat();
        let body = |_i: usize, r: usize| contribution(r);
        let oracle = sequential_reduce(&p);
        for s in [
            Scheme::Seq,
            Scheme::Rep,
            Scheme::Ll,
            Scheme::Sel,
            Scheme::Lw,
            Scheme::Hash,
        ] {
            let got = run_scheme(s, &p, &body, 4, None);
            for (a, b) in oracle.iter().zip(got.iter()) {
                assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{s}");
            }
        }
    }

    #[test]
    fn time_scheme_returns_fastest_rep() {
        let p = pat();
        let body = |_i: usize, r: usize| contribution(r);
        let (_, t) = time_scheme(Scheme::Rep, &p, &body, 2, None, 3);
        assert!(t.elapsed > Duration::ZERO);
        assert_eq!(t.scheme, Scheme::Rep);
    }

    #[test]
    fn rank_schemes_excludes_infeasible_lw() {
        let p = pat();
        let body = |_i: usize, r: usize| contribution(r);
        let (ranking, seq_t) = rank_schemes(&p, &body, 2, false, 1);
        assert_eq!(ranking.len(), 4);
        assert!(ranking.iter().all(|t| t.scheme != Scheme::Lw));
        assert!(seq_t > Duration::ZERO);
        // Sorted ascending.
        for w in ranking.windows(2) {
            assert!(w[0].elapsed <= w[1].elapsed);
        }
        let (with_lw, _) = rank_schemes(&p, &body, 2, true, 1);
        assert_eq!(with_lw.len(), 5);
    }
}
