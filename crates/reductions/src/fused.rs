//! Fused multi-output reduction kernels: one pattern traversal, K
//! contribution functions, K result arrays.
//!
//! A service coalescing same-class jobs (see `smartapps-runtime`) often
//! holds a batch whose members reduce over the *same* [`AccessPattern`]
//! with *different* contribution bodies — dashboards firing the same
//! sparse loop with K different statistics.  Executing them one by one
//! repeats the expensive part K times: walking `iter_ptr`/`indices`,
//! generating addresses, and (for the parallel schemes) initializing and
//! merging private storage.  The kernels here walk the pattern **once**
//! and accumulate all K outputs per visited reference — the same
//! share-the-traversal insight the polyhedral-reduction line exploits when
//! it fuses reductions into a single scan.
//!
//! Every kernel is the fused analogue of its single-output sibling in
//! [`crate::algorithms`] and upholds the same oracle contract: output `k`
//! equals `algorithms::seq(pat, bodies[k])` bit-for-bit for integer
//! monoids and within floating-point tolerance otherwise.  With `K = 1`
//! each kernel degenerates to (a traversal-identical twin of) its sibling.
//!
//! Memory: the privatizing schemes (`rep`, `ll`, `sel`) allocate K times
//! the private storage per thread, so callers should bound K (the runtime
//! caps it with its `max_fuse` knob).

use crate::algorithms::{LINK_LINE, MERGE_STRIPES};
use crate::inspect::{ConflictInfo, Inspection, Inspector, OwnerLists};
use crate::scheme::{RedElem, Scheme, UnsafeSlice};
use crate::spmd::{SpawnExecutor, SpmdExecutor};
use parking_lot::Mutex;
use smartapps_workloads::pattern::AccessPattern;
use smartapps_workloads::{block_range, elem_block_range};

/// A borrowed contribution body, as the fused kernels consume them.
pub type FusedBody<'a, T> = &'a (dyn Fn(usize, usize) -> T + Sync);

/// Execute `scheme` once over `pat`, producing one output array per body
/// in `bodies` — the multi-output twin of [`crate::run_scheme_on`].
///
/// `sel` and `lw` need an inspection; the caller's is reused when
/// supplied, otherwise one is computed here.  An empty `bodies` slice
/// yields an empty result vector without touching the pattern.
///
/// # Panics
///
/// Panics for [`Scheme::Pclr`]: the hardware scheme has no software
/// kernel (and the simulated PCLR machine executes one reduction per
/// loop, so fused sweeps never route there).
pub fn run_fused_on<T: RedElem>(
    scheme: Scheme,
    pat: &AccessPattern,
    bodies: &[FusedBody<'_, T>],
    threads: usize,
    insp: Option<&Inspection>,
    exec: &(impl SpmdExecutor + ?Sized),
) -> Vec<Vec<T>> {
    if bodies.is_empty() {
        return Vec::new();
    }
    let own;
    let insp = match (scheme, insp) {
        (Scheme::Sel | Scheme::Lw, Some(i)) => Some(i),
        (Scheme::Sel | Scheme::Lw, None) => {
            own = Inspector::analyze(pat, threads);
            Some(&own)
        }
        _ => None,
    };
    match scheme {
        Scheme::Seq => seq_fused(pat, bodies),
        Scheme::Rep => rep_fused(pat, bodies, threads, exec),
        Scheme::Ll => ll_fused(pat, bodies, threads, exec),
        Scheme::Hash => hash_fused(pat, bodies, threads, exec),
        Scheme::Sel => sel_fused(pat, bodies, threads, &insp.unwrap().conflicts, exec),
        Scheme::Lw => lw_fused(pat, bodies, threads, &insp.unwrap().owners, exec),
        Scheme::Pclr => {
            panic!("Scheme::Pclr has no software kernel; route it to a PCLR execution backend")
        }
        Scheme::Simd => {
            panic!("Scheme::Simd is not dispatched here; route it to a SIMD execution backend")
        }
    }
}

/// [`run_fused_on`] on freshly spawned threads ([`SpawnExecutor`]).
pub fn run_fused<T: RedElem>(
    scheme: Scheme,
    pat: &AccessPattern,
    bodies: &[FusedBody<'_, T>],
    threads: usize,
    insp: Option<&Inspection>,
) -> Vec<Vec<T>> {
    run_fused_on(scheme, pat, bodies, threads, insp, &SpawnExecutor)
}

/// Allocate K neutral-initialized output arrays.
fn neutral_outputs<T: RedElem>(k: usize, n: usize) -> Vec<Vec<T>> {
    (0..k).map(|_| vec![T::neutral(); n]).collect()
}

/// Wrap each output array for disjoint concurrent writes.
fn out_slices<'a, T>(outs: &'a mut [Vec<T>]) -> Vec<UnsafeSlice<'a, T>> {
    outs.iter_mut().map(|o| UnsafeSlice::new(o)).collect()
}

/// Fused sequential baseline: one traversal, K accumulations per
/// reference, written straight into the K output arrays (which must be
/// allocated regardless — an extra interleaved buffer would cost `K x N`
/// stores and copies that sparse patterns never amortize).
///
/// The *privatizing* fused kernels below do use stride-K interleaved
/// private storage — all K partial values of an element adjacent — since
/// they allocate private buffers anyway, and the layout lets one touched
/// cache line serve the whole batch.
pub fn seq_fused<T: RedElem>(pat: &AccessPattern, bodies: &[FusedBody<'_, T>]) -> Vec<Vec<T>> {
    let mut outs = neutral_outputs(bodies.len(), pat.num_elements);
    for i in 0..pat.num_iterations() {
        for r in pat.ref_range(i) {
            let x = pat.indices[r] as usize;
            for (kk, body) in bodies.iter().enumerate() {
                outs[kk][x] = T::combine(outs[kk][x], body(i, r));
            }
        }
    }
    outs
}

/// Fused `rep`: each thread accumulates into K replicated private arrays
/// (stride-K interleaved storage) during one traversal of its iteration
/// block; the merge combines all K per visited element.
pub fn rep_fused<T: RedElem>(
    pat: &AccessPattern,
    bodies: &[FusedBody<'_, T>],
    threads: usize,
    exec: &(impl SpmdExecutor + ?Sized),
) -> Vec<Vec<T>> {
    assert!(threads >= 1);
    let k = bodies.len();
    let n = pat.num_elements;
    let mut privates: Vec<Vec<T>> = (0..threads).map(|_| Vec::new()).collect();
    {
        let slots = UnsafeSlice::new(&mut privates);
        let slots = &slots;
        exec.spmd(threads, &|t| {
            let mut w = vec![T::neutral(); k * n];
            for i in block_range(pat.num_iterations(), t, threads) {
                for r in pat.ref_range(i) {
                    let base = pat.indices[r] as usize * k;
                    for (kk, body) in bodies.iter().enumerate() {
                        w[base + kk] = T::combine(w[base + kk], body(i, r));
                    }
                }
            }
            // SAFETY: each tid writes only its own slot.
            unsafe { slots.write(t, w) };
        });
    }
    let mut outs = neutral_outputs(k, n);
    let privates = &privates;
    {
        let slices = out_slices(&mut outs);
        let slices = &slices;
        exec.spmd(threads, &|t| {
            for e in elem_block_range(n, t, threads) {
                for (kk, out) in slices.iter().enumerate() {
                    let mut acc = T::neutral();
                    for p in privates {
                        acc = T::combine(acc, p[e * k + kk]);
                    }
                    // SAFETY: element blocks are disjoint across threads.
                    unsafe { out.write(e, acc) };
                }
            }
        });
    }
    outs
}

/// Fused `ll`: stride-K interleaved private buffers plus **one**
/// touched-line list per thread — all K outputs touch exactly the same
/// lines because they share the traversal — merged line by line under
/// stripe locks.
pub fn ll_fused<T: RedElem>(
    pat: &AccessPattern,
    bodies: &[FusedBody<'_, T>],
    threads: usize,
    exec: &(impl SpmdExecutor + ?Sized),
) -> Vec<Vec<T>> {
    assert!(threads >= 1);
    let k = bodies.len();
    let n = pat.num_elements;
    let n_lines = n.div_ceil(LINK_LINE);
    let mut outs = neutral_outputs(k, n);
    let stripes: Vec<Mutex<()>> = (0..MERGE_STRIPES).map(|_| Mutex::new(())).collect();
    {
        let slices = out_slices(&mut outs);
        let slices = &slices;
        let stripes = &stripes;
        exec.spmd(threads, &|t| {
            let mut w = vec![T::neutral(); k * n];
            let mut touched_line = vec![false; n_lines];
            let mut links: Vec<u32> = Vec::new();
            for i in block_range(pat.num_iterations(), t, threads) {
                for r in pat.ref_range(i) {
                    let x = pat.indices[r] as usize;
                    let line = x / LINK_LINE;
                    if !touched_line[line] {
                        touched_line[line] = true;
                        links.push(line as u32);
                    }
                    let base = x * k;
                    for (kk, body) in bodies.iter().enumerate() {
                        w[base + kk] = T::combine(w[base + kk], body(i, r));
                    }
                }
            }
            for &line in &links {
                let lo = line as usize * LINK_LINE;
                let hi = (lo + LINK_LINE).min(n);
                let _g = stripes[line as usize % MERGE_STRIPES].lock();
                for e in lo..hi {
                    for (kk, out) in slices.iter().enumerate() {
                        // SAFETY: the stripe lock serializes all access to
                        // this line across threads, for every output.
                        unsafe { out.combine_into(e, w[e * k + kk]) };
                    }
                }
            }
        });
    }
    outs
}

/// Fused `sel`: only conflicting elements get (compact, stride-K
/// interleaved) private storage; non-conflicting elements are combined
/// straight into all K shared outputs — legal because a non-conflicting
/// element has exactly one writing thread regardless of how many outputs
/// it feeds.
pub fn sel_fused<T: RedElem>(
    pat: &AccessPattern,
    bodies: &[FusedBody<'_, T>],
    threads: usize,
    conflicts: &ConflictInfo,
    exec: &(impl SpmdExecutor + ?Sized),
) -> Vec<Vec<T>> {
    assert!(threads >= 1);
    assert_eq!(
        conflicts.threads, threads,
        "conflict info computed for wrong P"
    );
    let k = bodies.len();
    let n = pat.num_elements;
    let nc = conflicts.num_conflicting;
    let mut outs = neutral_outputs(k, n);
    let mut privates: Vec<Vec<T>> = (0..threads).map(|_| Vec::new()).collect();
    {
        let slices = out_slices(&mut outs);
        let slices = &slices;
        let slots = UnsafeSlice::new(&mut privates);
        let slots = &slots;
        exec.spmd(threads, &|t| {
            let mut priv_c = vec![T::neutral(); k * nc];
            for i in block_range(pat.num_iterations(), t, threads) {
                for r in pat.ref_range(i) {
                    let x = pat.indices[r] as usize;
                    let c = conflicts.compact[x];
                    if c != u32::MAX {
                        let base = c as usize * k;
                        for (kk, body) in bodies.iter().enumerate() {
                            priv_c[base + kk] = T::combine(priv_c[base + kk], body(i, r));
                        }
                    } else {
                        for (kk, body) in bodies.iter().enumerate() {
                            // SAFETY: non-conflicting element — exactly one
                            // thread (this one) ever touches index x, in
                            // any output.
                            unsafe { slices[kk].combine_into(x, body(i, r)) };
                        }
                    }
                }
            }
            // SAFETY: each tid writes only its own slot.
            unsafe { slots.write(t, priv_c) };
        });
    }
    let privates = &privates;
    let conflict_elems = &conflicts.conflicting_elements;
    {
        let slices = out_slices(&mut outs);
        let slices = &slices;
        exec.spmd(threads, &|t| {
            for ci in block_range(nc, t, threads) {
                let e = conflict_elems[ci] as usize;
                for (kk, out) in slices.iter().enumerate() {
                    let mut acc = T::neutral();
                    for p in privates {
                        acc = T::combine(acc, p[ci * k + kk]);
                    }
                    // SAFETY: disjoint compact blocks across merge threads;
                    // loop threads never wrote conflicting elements
                    // directly.
                    unsafe { out.combine_into(e, acc) };
                }
            }
        });
    }
    outs
}

/// Fused `lw` (owner computes): iteration replication exactly as in the
/// single-output kernel, but each owned reference commits all K
/// contributions — the ownership test and index load are paid once for the
/// whole batch.
pub fn lw_fused<T: RedElem>(
    pat: &AccessPattern,
    bodies: &[FusedBody<'_, T>],
    threads: usize,
    owners: &OwnerLists,
    exec: &(impl SpmdExecutor + ?Sized),
) -> Vec<Vec<T>> {
    assert!(threads >= 1);
    assert_eq!(owners.threads, threads, "owner lists computed for wrong P");
    let n = pat.num_elements;
    let mut outs = neutral_outputs(bodies.len(), n);
    {
        let slices = out_slices(&mut outs);
        let slices = &slices;
        exec.spmd(threads, &|t| {
            let my = elem_block_range(n, t, threads);
            for &i in &owners.iters_of[t] {
                let i = i as usize;
                for r in pat.ref_range(i) {
                    let x = pat.indices[r] as usize;
                    if my.contains(&x) {
                        for (kk, body) in bodies.iter().enumerate() {
                            // SAFETY: x is owned by this thread's disjoint
                            // element block, in every output.
                            unsafe { slices[kk].combine_into(x, body(i, r)) };
                        }
                    }
                }
            }
        });
    }
    outs
}

/// Sentinel for an empty [`FusedTable`] slot.
const EMPTY: u32 = u32::MAX;

/// Open-addressing accumulation table holding K values per key (stride-K
/// value storage) — the fused counterpart of
/// [`AccTable`](crate::algorithms::AccTable).  One probe per reference
/// accumulates all K contributions.
struct FusedTable<T> {
    keys: Vec<u32>,
    vals: Vec<T>,
    mask: usize,
    len: usize,
    k: usize,
}

impl<T: RedElem> FusedTable<T> {
    fn with_capacity(cap: usize, k: usize) -> Self {
        let size = (cap.max(8) * 2).next_power_of_two();
        FusedTable {
            keys: vec![EMPTY; size],
            vals: vec![T::neutral(); size * k],
            mask: size - 1,
            len: 0,
            k,
        }
    }

    #[inline]
    fn slot(&self, key: u32) -> usize {
        ((key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as usize & self.mask
    }

    /// Find (or claim) the slot of `key`, growing first if needed, and
    /// return the base index of its K-value stripe.
    #[inline]
    fn stripe_of(&mut self, key: u32) -> usize {
        debug_assert_ne!(key, EMPTY);
        if self.len * 10 >= self.keys.len() * 7 {
            self.grow();
        }
        let mut s = self.slot(key);
        loop {
            let existing = self.keys[s];
            if existing == key {
                return s * self.k;
            }
            if existing == EMPTY {
                self.keys[s] = key;
                self.len += 1;
                return s * self.k;
            }
            s = (s + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let mut bigger = FusedTable::<T>::with_capacity(self.keys.len(), self.k);
        for (s, &key) in self.keys.iter().enumerate() {
            if key == EMPTY {
                continue;
            }
            let dst = bigger.stripe_of(key);
            bigger.vals[dst..dst + self.k]
                .copy_from_slice(&self.vals[s * self.k..(s + 1) * self.k]);
        }
        *self = bigger;
    }

    /// Iterate occupied `(key, value-stripe)` pairs.
    fn iter(&self) -> impl Iterator<Item = (u32, &[T])> + '_ {
        self.keys
            .iter()
            .enumerate()
            .filter(|(_, k)| **k != EMPTY)
            .map(|(s, k)| (*k, &self.vals[s * self.k..(s + 1) * self.k]))
    }
}

/// Fused `hash`: per-thread stride-K hash tables — one probe per reference
/// accumulates all K contributions — merged under stripe locks.
pub fn hash_fused<T: RedElem>(
    pat: &AccessPattern,
    bodies: &[FusedBody<'_, T>],
    threads: usize,
    exec: &(impl SpmdExecutor + ?Sized),
) -> Vec<Vec<T>> {
    assert!(threads >= 1);
    let k = bodies.len();
    let n = pat.num_elements;
    let mut outs = neutral_outputs(k, n);
    let stripes: Vec<Mutex<()>> = (0..MERGE_STRIPES).map(|_| Mutex::new(())).collect();
    {
        let slices = out_slices(&mut outs);
        let slices = &slices;
        let stripes = &stripes;
        exec.spmd(threads, &|t| {
            let mut table = FusedTable::<T>::with_capacity(64, k);
            for i in block_range(pat.num_iterations(), t, threads) {
                for r in pat.ref_range(i) {
                    let base = table.stripe_of(pat.indices[r]);
                    for (kk, body) in bodies.iter().enumerate() {
                        table.vals[base + kk] = T::combine(table.vals[base + kk], body(i, r));
                    }
                }
            }
            for (key, stripe) in table.iter() {
                let e = key as usize;
                let _g = stripes[(e / LINK_LINE) % MERGE_STRIPES].lock();
                for (kk, out) in slices.iter().enumerate() {
                    // SAFETY: serialized by the stripe lock.
                    unsafe { out.combine_into(e, stripe[kk]) };
                }
            }
        });
    }
    outs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms;
    use smartapps_workloads::pattern::contribution_i64;
    use smartapps_workloads::{Distribution, PatternSpec};

    fn pattern(seed: u64) -> AccessPattern {
        PatternSpec {
            num_elements: 600,
            iterations: 900,
            refs_per_iter: 3,
            coverage: 0.6,
            dist: Distribution::Uniform,
            seed,
        }
        .generate()
    }

    /// K bodies with distinct, recognizable contributions.
    fn bodies_i64(k: usize) -> Vec<Box<dyn Fn(usize, usize) -> i64 + Sync + Send>> {
        (0..k)
            .map(|kk| {
                let scale = kk as i64 + 1;
                Box::new(move |_i: usize, r: usize| contribution_i64(r).wrapping_mul(scale))
                    as Box<dyn Fn(usize, usize) -> i64 + Sync + Send>
            })
            .collect()
    }

    fn as_refs<T>(boxed: &[Box<dyn Fn(usize, usize) -> T + Sync + Send>]) -> Vec<FusedBody<'_, T>> {
        boxed.iter().map(|b| &**b as FusedBody<'_, T>).collect()
    }

    #[test]
    fn every_scheme_matches_k_sequential_oracles() {
        let pat = pattern(21);
        for k in [1usize, 3, 5] {
            let boxed = bodies_i64(k);
            let bodies = as_refs(&boxed);
            let oracles: Vec<Vec<i64>> = boxed.iter().map(|b| algorithms::seq(&pat, b)).collect();
            for threads in [1usize, 4] {
                for scheme in [
                    Scheme::Seq,
                    Scheme::Rep,
                    Scheme::Ll,
                    Scheme::Sel,
                    Scheme::Lw,
                    Scheme::Hash,
                ] {
                    let got = run_fused(scheme, &pat, &bodies, threads, None);
                    assert_eq!(got.len(), k, "{scheme} k={k}");
                    for (kk, oracle) in oracles.iter().enumerate() {
                        assert_eq!(&got[kk], oracle, "{scheme} x{threads} output {kk}");
                    }
                }
            }
        }
    }

    #[test]
    fn fused_f64_within_tolerance() {
        let pat = pattern(22);
        let b0 = |_i: usize, r: usize| smartapps_workloads::pattern::contribution(r);
        let b1 = |_i: usize, r: usize| smartapps_workloads::pattern::contribution(r) * 0.5;
        let bodies: Vec<FusedBody<'_, f64>> = vec![&b0, &b1];
        let oracles = [algorithms::seq(&pat, &b0), algorithms::seq(&pat, &b1)];
        for scheme in [
            Scheme::Rep,
            Scheme::Ll,
            Scheme::Sel,
            Scheme::Lw,
            Scheme::Hash,
        ] {
            let got = run_fused(scheme, &pat, &bodies, 4, None);
            for (kk, oracle) in oracles.iter().enumerate() {
                for (e, (a, b)) in oracle.iter().zip(got[kk].iter()).enumerate() {
                    assert!(
                        (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                        "{scheme} output {kk} elem {e}: {a} vs {b}"
                    );
                }
            }
        }
    }

    /// Runs tids sequentially — fused kernels, like their siblings, may
    /// only rely on the completion barrier.
    struct SerialExec;
    impl SpmdExecutor for SerialExec {
        fn spmd(&self, threads: usize, body: &(dyn Fn(usize) + Sync)) {
            for t in 0..threads {
                body(t);
            }
        }
    }

    #[test]
    fn fused_kernels_are_executor_agnostic() {
        let pat = pattern(23);
        let boxed = bodies_i64(3);
        let bodies = as_refs(&boxed);
        let oracles: Vec<Vec<i64>> = boxed.iter().map(|b| algorithms::seq(&pat, b)).collect();
        let insp = Inspector::analyze(&pat, 4);
        for scheme in [
            Scheme::Rep,
            Scheme::Ll,
            Scheme::Sel,
            Scheme::Lw,
            Scheme::Hash,
        ] {
            let got = run_fused_on(scheme, &pat, &bodies, 4, Some(&insp), &SerialExec);
            assert_eq!(got, oracles, "{scheme} serial");
        }
    }

    #[test]
    fn empty_bodies_and_empty_pattern() {
        let pat = pattern(24);
        let none: Vec<FusedBody<'_, i64>> = Vec::new();
        assert!(run_fused(Scheme::Rep, &pat, &none, 4, None).is_empty());
        let empty = AccessPattern::from_iters(16, &[]);
        let boxed = bodies_i64(2);
        let bodies = as_refs(&boxed);
        let got = run_fused(Scheme::Hash, &empty, &bodies, 3, None);
        assert_eq!(got, vec![vec![0i64; 16], vec![0i64; 16]]);
    }

    #[test]
    fn fused_table_grows_and_keeps_stripes() {
        let mut t = FusedTable::<i64>::with_capacity(4, 3);
        for key in 0..500u32 {
            let base = t.stripe_of(key);
            for kk in 0..3 {
                t.vals[base + kk] = t.vals[base + kk].wrapping_add((key as i64) * (kk as i64 + 1));
            }
        }
        assert_eq!(t.len, 500);
        for (key, stripe) in t.iter() {
            for (kk, v) in stripe.iter().enumerate() {
                assert_eq!(*v, (key as i64) * (kk as i64 + 1), "key {key} k {kk}");
            }
        }
    }

    #[test]
    fn single_hot_element_fused() {
        // Maximal contention across every output.
        let pat = AccessPattern::from_iters(4, &vec![vec![0u32, 0, 0]; 80]);
        let boxed = bodies_i64(4);
        let bodies = as_refs(&boxed);
        let oracles: Vec<Vec<i64>> = boxed.iter().map(|b| algorithms::seq(&pat, b)).collect();
        for scheme in [
            Scheme::Rep,
            Scheme::Ll,
            Scheme::Sel,
            Scheme::Lw,
            Scheme::Hash,
        ] {
            assert_eq!(
                run_fused(scheme, &pat, &bodies, 4, None),
                oracles,
                "{scheme}"
            );
        }
    }
}
