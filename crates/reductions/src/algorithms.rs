//! The parallel reduction algorithm library of Section 4.
//!
//! Every executor computes, for an [`AccessPattern`] `pat` and a
//! contribution function `body(iteration, ref_slot) -> T`, the array
//!
//! ```text
//! w[x] = ⊕ { body(i, r) : pat.indices[r] == x, r ∈ pat.ref_range(i) }
//! ```
//!
//! exactly as the sequential loop would — they differ only in *how* the
//! partial results are privatized and merged, which is precisely what the
//! adaptive selection of the paper chooses between:
//!
//! | scheme | private storage        | merge cost              | best when |
//! |--------|------------------------|-------------------------|-----------|
//! | `rep`  | full array × P         | O(N) per processor      | dense, high reuse (CHR high) |
//! | `ll`   | full array × P + links | O(touched)              | large array, moderate sparsity |
//! | `sel`  | conflicting elems only | O(conflicts)            | sparse, low contention |
//! | `lw`   | none (owner computes)  | none (iter replication) | feasible loops, moderate MO |
//! | `hash` | per-thread hash table  | O(distinct)             | extremely sparse (SP ≪ 1%) |
//!
//! Threading runs one SPMD block task per logical processor through a
//! [`SpmdExecutor`] — the `*_on` variants accept any executor (the
//! `smartapps-runtime` persistent worker pool on the service path), while
//! the plain-named wrappers fork fresh threads per call via
//! [`SpawnExecutor`].  Block scheduling matches the paper's
//! block-scheduled loops.

use crate::inspect::{ConflictInfo, OwnerLists};
use crate::scheme::{RedElem, UnsafeSlice};
use crate::spmd::{SpawnExecutor, SpmdExecutor};
use parking_lot::Mutex;
use smartapps_workloads::pattern::AccessPattern;
use smartapps_workloads::{block_range, elem_block_range};

/// Number of lock stripes used by merge phases that combine into shared
/// storage (`ll`, `hash`) — shared with the fused kernels in
/// [`crate::fused`].
pub(crate) const MERGE_STRIPES: usize = 256;

/// Elements per touched-line bucket in the `ll` scheme (one cache line of
/// f64) — shared with the fused kernels in [`crate::fused`].
pub(crate) const LINK_LINE: usize = 8;

/// Sequential baseline.
pub fn seq<T: RedElem>(pat: &AccessPattern, body: &(impl Fn(usize, usize) -> T + Sync)) -> Vec<T> {
    let mut w = vec![T::neutral(); pat.num_elements];
    for i in 0..pat.num_iterations() {
        for r in pat.ref_range(i) {
            let x = pat.indices[r] as usize;
            w[x] = T::combine(w[x], body(i, r));
        }
    }
    w
}

/// `rep` on freshly spawned threads (see [`rep_on`]).
pub fn rep<T: RedElem>(
    pat: &AccessPattern,
    body: &(impl Fn(usize, usize) -> T + Sync),
    threads: usize,
) -> Vec<T> {
    rep_on(pat, body, threads, &SpawnExecutor)
}

/// `rep`: fully replicated private arrays + block-parallel merge.
pub fn rep_on<T: RedElem>(
    pat: &AccessPattern,
    body: &(impl Fn(usize, usize) -> T + Sync),
    threads: usize,
    exec: &(impl SpmdExecutor + ?Sized),
) -> Vec<T> {
    assert!(threads >= 1);
    let n = pat.num_elements;
    // Loop phase: every thread owns a fully replicated array, initialized
    // to the neutral element (this allocation + sweep is the Init cost the
    // paper charges to the software scheme).
    let mut privates: Vec<Vec<T>> = (0..threads).map(|_| Vec::new()).collect();
    {
        let slots = UnsafeSlice::new(&mut privates);
        let slots = &slots;
        exec.spmd(threads, &|t| {
            let mut w = vec![T::neutral(); n];
            for i in block_range(pat.num_iterations(), t, threads) {
                for r in pat.ref_range(i) {
                    let x = pat.indices[r] as usize;
                    w[x] = T::combine(w[x], body(i, r));
                }
            }
            // SAFETY: each tid writes only its own slot.
            unsafe { slots.write(t, w) };
        });
    }
    // Merge phase: element blocks across threads; every thread reads all P
    // partial arrays over its block — the non-scaling step.
    let mut result = vec![T::neutral(); n];
    let privates = &privates;
    {
        let out = UnsafeSlice::new(&mut result);
        let out = &out;
        exec.spmd(threads, &|t| {
            for e in elem_block_range(n, t, threads) {
                let mut acc = T::neutral();
                for p in privates {
                    acc = T::combine(acc, p[e]);
                }
                // SAFETY: element blocks are disjoint across threads.
                unsafe { out.write(e, acc) };
            }
        });
    }
    result
}

/// `ll` on freshly spawned threads (see [`ll_on`]).
pub fn ll<T: RedElem>(
    pat: &AccessPattern,
    body: &(impl Fn(usize, usize) -> T + Sync),
    threads: usize,
) -> Vec<T> {
    ll_on(pat, body, threads, &SpawnExecutor)
}

/// `ll`: replicated buffers with links — private arrays plus a list of
/// touched lines, so the merge walks only written storage.
pub fn ll_on<T: RedElem>(
    pat: &AccessPattern,
    body: &(impl Fn(usize, usize) -> T + Sync),
    threads: usize,
    exec: &(impl SpmdExecutor + ?Sized),
) -> Vec<T> {
    assert!(threads >= 1);
    let n = pat.num_elements;
    let n_lines = n.div_ceil(LINK_LINE);
    let mut result = vec![T::neutral(); n];
    let stripes: Vec<Mutex<()>> = (0..MERGE_STRIPES).map(|_| Mutex::new(())).collect();
    {
        let out = UnsafeSlice::new(&mut result);
        let out = &out;
        let stripes = &stripes;
        exec.spmd(threads, &|t| {
            let mut w = vec![T::neutral(); n];
            let mut touched_line = vec![false; n_lines];
            let mut links: Vec<u32> = Vec::new();
            for i in block_range(pat.num_iterations(), t, threads) {
                for r in pat.ref_range(i) {
                    let x = pat.indices[r] as usize;
                    let line = x / LINK_LINE;
                    if !touched_line[line] {
                        touched_line[line] = true;
                        links.push(line as u32);
                    }
                    w[x] = T::combine(w[x], body(i, r));
                }
            }
            // Merge only the touched lines, under stripe locks.
            for &line in &links {
                let lo = line as usize * LINK_LINE;
                let hi = (lo + LINK_LINE).min(n);
                let _g = stripes[line as usize % MERGE_STRIPES].lock();
                for (e, &v) in w[lo..hi].iter().enumerate().map(|(k, v)| (lo + k, v)) {
                    // SAFETY: the stripe lock serializes all access
                    // to this line across threads.
                    unsafe { out.combine_into(e, v) };
                }
            }
        });
    }
    result
}

/// `sel` on freshly spawned threads (see [`sel_on`]).
pub fn sel<T: RedElem>(
    pat: &AccessPattern,
    body: &(impl Fn(usize, usize) -> T + Sync),
    threads: usize,
    conflicts: &ConflictInfo,
) -> Vec<T> {
    sel_on(pat, body, threads, conflicts, &SpawnExecutor)
}

/// `sel`: selective privatization.  The inspector's conflict analysis
/// marks elements referenced by more than one thread; only those get
/// (compact) private storage.  Non-conflicting elements are updated
/// directly in the shared array — each has exactly one writing thread.
pub fn sel_on<T: RedElem>(
    pat: &AccessPattern,
    body: &(impl Fn(usize, usize) -> T + Sync),
    threads: usize,
    conflicts: &ConflictInfo,
    exec: &(impl SpmdExecutor + ?Sized),
) -> Vec<T> {
    assert!(threads >= 1);
    assert_eq!(
        conflicts.threads, threads,
        "conflict info computed for wrong P"
    );
    let n = pat.num_elements;
    let nc = conflicts.num_conflicting;
    let mut result = vec![T::neutral(); n];
    // Loop phase.
    let mut privates: Vec<Vec<T>> = (0..threads).map(|_| Vec::new()).collect();
    {
        let out = UnsafeSlice::new(&mut result);
        let out = &out;
        let slots = UnsafeSlice::new(&mut privates);
        let slots = &slots;
        exec.spmd(threads, &|t| {
            let mut priv_c = vec![T::neutral(); nc];
            for i in block_range(pat.num_iterations(), t, threads) {
                for r in pat.ref_range(i) {
                    let x = pat.indices[r] as usize;
                    let c = conflicts.compact[x];
                    let v = body(i, r);
                    if c != u32::MAX {
                        let ci = c as usize;
                        priv_c[ci] = T::combine(priv_c[ci], v);
                    } else {
                        // SAFETY: non-conflicting element — exactly one
                        // thread (this one) ever touches index x.
                        unsafe { out.combine_into(x, v) };
                    }
                }
            }
            // SAFETY: each tid writes only its own slot.
            unsafe { slots.write(t, priv_c) };
        });
    }
    // Merge phase: only the compact conflicting region.
    let privates = &privates;
    let conflict_elems = &conflicts.conflicting_elements;
    {
        let out = UnsafeSlice::new(&mut result);
        let out = &out;
        exec.spmd(threads, &|t| {
            for ci in block_range(nc, t, threads) {
                let e = conflict_elems[ci] as usize;
                let mut acc = T::neutral();
                for p in privates {
                    acc = T::combine(acc, p[ci]);
                }
                // SAFETY: each conflicting element has exactly one
                // compact slot, compact blocks are disjoint across
                // merge threads, and loop threads never wrote
                // conflicting elements directly.
                unsafe { out.combine_into(e, acc) };
            }
        });
    }
    result
}

/// `lw` on freshly spawned threads (see [`lw_on`]).
pub fn lw<T: RedElem>(
    pat: &AccessPattern,
    body: &(impl Fn(usize, usize) -> T + Sync),
    threads: usize,
    owners: &OwnerLists,
) -> Vec<T> {
    lw_on(pat, body, threads, owners, &SpawnExecutor)
}

/// `lw`: local write (owner computes).  Elements are block-partitioned;
/// every iteration is executed by each thread owning at least one of its
/// referenced elements (iteration replication), and each thread commits
/// only the updates into its own partition — no private arrays, no merge.
pub fn lw_on<T: RedElem>(
    pat: &AccessPattern,
    body: &(impl Fn(usize, usize) -> T + Sync),
    threads: usize,
    owners: &OwnerLists,
    exec: &(impl SpmdExecutor + ?Sized),
) -> Vec<T> {
    assert!(threads >= 1);
    assert_eq!(owners.threads, threads, "owner lists computed for wrong P");
    let n = pat.num_elements;
    let mut result = vec![T::neutral(); n];
    {
        let out = UnsafeSlice::new(&mut result);
        let out = &out;
        exec.spmd(threads, &|t| {
            let my = elem_block_range(n, t, threads);
            for &i in &owners.iters_of[t] {
                let i = i as usize;
                for r in pat.ref_range(i) {
                    let x = pat.indices[r] as usize;
                    if my.contains(&x) {
                        // SAFETY: x is owned by this thread's disjoint
                        // element block.
                        unsafe { out.combine_into(x, body(i, r)) };
                    }
                }
            }
        });
    }
    result
}

/// A minimal open-addressing accumulation table (linear probing, power-of-
/// two capacity) used by the `hash` scheme.
pub struct AccTable<T> {
    keys: Vec<u32>,
    vals: Vec<T>,
    mask: usize,
    len: usize,
}

/// Sentinel for an empty slot.
const EMPTY: u32 = u32::MAX;

impl<T: RedElem> AccTable<T> {
    /// Create a table with capacity for at least `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        let size = (cap.max(8) * 2).next_power_of_two();
        AccTable {
            keys: vec![EMPTY; size],
            vals: vec![T::neutral(); size],
            mask: size - 1,
            len: 0,
        }
    }

    #[inline]
    fn slot(&self, key: u32) -> usize {
        // Multiplicative hashing (Fibonacci): cheap and adequate for array
        // indices.
        ((key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as usize & self.mask
    }

    /// Accumulate `v` into `key`.
    #[inline]
    pub fn combine(&mut self, key: u32, v: T) {
        debug_assert_ne!(key, EMPTY);
        if self.len * 10 >= self.keys.len() * 7 {
            self.grow();
        }
        let mut s = self.slot(key);
        loop {
            let k = self.keys[s];
            if k == key {
                self.vals[s] = T::combine(self.vals[s], v);
                return;
            }
            if k == EMPTY {
                self.keys[s] = key;
                self.vals[s] = v;
                self.len += 1;
                return;
            }
            s = (s + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let mut bigger = AccTable::<T>::with_capacity(self.keys.len());
        for (k, v) in self.iter() {
            bigger.combine(k, v);
        }
        *self = bigger;
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate occupied `(key, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, T)> + '_ {
        self.keys
            .iter()
            .zip(self.vals.iter())
            .filter(|(k, _)| **k != EMPTY)
            .map(|(k, v)| (*k, *v))
    }
}

/// `hash` on freshly spawned threads (see [`hash_on`]).
pub fn hash<T: RedElem>(
    pat: &AccessPattern,
    body: &(impl Fn(usize, usize) -> T + Sync),
    threads: usize,
) -> Vec<T> {
    hash_on(pat, body, threads, &SpawnExecutor)
}

/// `hash`: per-thread hash-table accumulation, merged under stripe locks.
/// The table keeps the working set proportional to the *referenced*
/// elements, which is what makes it win on extremely sparse patterns like
/// SPICE ("the hash table reduces the allocated and processed space to
/// such an extent that ... the performance improves dramatically").
pub fn hash_on<T: RedElem>(
    pat: &AccessPattern,
    body: &(impl Fn(usize, usize) -> T + Sync),
    threads: usize,
    exec: &(impl SpmdExecutor + ?Sized),
) -> Vec<T> {
    assert!(threads >= 1);
    let n = pat.num_elements;
    let mut result = vec![T::neutral(); n];
    let stripes: Vec<Mutex<()>> = (0..MERGE_STRIPES).map(|_| Mutex::new(())).collect();
    {
        let out = UnsafeSlice::new(&mut result);
        let out = &out;
        let stripes = &stripes;
        exec.spmd(threads, &|t| {
            let mut table = AccTable::<T>::with_capacity(64);
            for i in block_range(pat.num_iterations(), t, threads) {
                for r in pat.ref_range(i) {
                    table.combine(pat.indices[r], body(i, r));
                }
            }
            for (k, v) in table.iter() {
                let e = k as usize;
                let _g = stripes[(e / LINK_LINE) % MERGE_STRIPES].lock();
                // SAFETY: serialized by the stripe lock.
                unsafe { out.combine_into(e, v) };
            }
        });
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inspect::Inspector;
    use smartapps_workloads::pattern::{contribution_i64, sequential_reduce_i64};
    use smartapps_workloads::{Distribution, PatternSpec};

    fn pattern(seed: u64) -> AccessPattern {
        PatternSpec {
            num_elements: 500,
            iterations: 800,
            refs_per_iter: 3,
            coverage: 0.6,
            dist: Distribution::Uniform,
            seed,
        }
        .generate()
    }

    fn body(_i: usize, r: usize) -> i64 {
        contribution_i64(r)
    }

    #[test]
    fn all_schemes_match_sequential_oracle() {
        let pat = pattern(42);
        let oracle = sequential_reduce_i64(&pat);
        assert_eq!(seq(&pat, &body), oracle, "seq");
        for threads in [1usize, 2, 4, 7] {
            assert_eq!(rep(&pat, &body, threads), oracle, "rep x{threads}");
            assert_eq!(ll(&pat, &body, threads), oracle, "ll x{threads}");
            assert_eq!(hash(&pat, &body, threads), oracle, "hash x{threads}");
            let insp = Inspector::analyze(&pat, threads);
            assert_eq!(
                sel(&pat, &body, threads, &insp.conflicts),
                oracle,
                "sel x{threads}"
            );
            assert_eq!(
                lw(&pat, &body, threads, &insp.owners),
                oracle,
                "lw x{threads}"
            );
        }
    }

    /// A pathological-but-legal executor that runs the SPMD tids one after
    /// another on the calling thread.  The algorithms may not rely on tids
    /// actually overlapping in time — only on the completion barrier.
    struct SerialExec;
    impl crate::spmd::SpmdExecutor for SerialExec {
        fn spmd(&self, threads: usize, body: &(dyn Fn(usize) + Sync)) {
            for t in 0..threads {
                body(t);
            }
        }
    }

    #[test]
    fn schemes_are_executor_agnostic() {
        let pat = pattern(11);
        let oracle = sequential_reduce_i64(&pat);
        let exec = SerialExec;
        let threads = 4;
        let insp = Inspector::analyze(&pat, threads);
        assert_eq!(rep_on(&pat, &body, threads, &exec), oracle, "rep serial");
        assert_eq!(ll_on(&pat, &body, threads, &exec), oracle, "ll serial");
        assert_eq!(hash_on(&pat, &body, threads, &exec), oracle, "hash serial");
        assert_eq!(
            sel_on(&pat, &body, threads, &insp.conflicts, &exec),
            oracle,
            "sel serial"
        );
        assert_eq!(
            lw_on(&pat, &body, threads, &insp.owners, &exec),
            oracle,
            "lw serial"
        );
    }

    #[test]
    fn empty_pattern_yields_neutral_array() {
        let pat = AccessPattern::from_iters(16, &[]);
        let oracle = vec![0i64; 16];
        assert_eq!(seq(&pat, &body), oracle);
        assert_eq!(rep(&pat, &body, 3), oracle);
        assert_eq!(ll(&pat, &body, 3), oracle);
        assert_eq!(hash(&pat, &body, 3), oracle);
        let insp = Inspector::analyze(&pat, 3);
        assert_eq!(sel(&pat, &body, 3, &insp.conflicts), oracle);
        assert_eq!(lw(&pat, &body, 3, &insp.owners), oracle);
    }

    #[test]
    fn single_hot_element_all_threads() {
        // Maximal contention: every reference hits element 0.
        let pat = AccessPattern::from_iters(4, &vec![vec![0u32, 0, 0]; 100]);
        let oracle = sequential_reduce_i64(&pat);
        for threads in [2usize, 4] {
            assert_eq!(rep(&pat, &body, threads), oracle);
            assert_eq!(ll(&pat, &body, threads), oracle);
            assert_eq!(hash(&pat, &body, threads), oracle);
            let insp = Inspector::analyze(&pat, threads);
            assert_eq!(sel(&pat, &body, threads, &insp.conflicts), oracle);
            assert_eq!(lw(&pat, &body, threads, &insp.owners), oracle);
        }
    }

    #[test]
    fn more_threads_than_iterations() {
        let pat = AccessPattern::from_iters(10, &[vec![1u32], vec![2, 2]]);
        let oracle = sequential_reduce_i64(&pat);
        for threads in [3usize, 8] {
            assert_eq!(rep(&pat, &body, threads), oracle);
            assert_eq!(ll(&pat, &body, threads), oracle);
            assert_eq!(hash(&pat, &body, threads), oracle);
            let insp = Inspector::analyze(&pat, threads);
            assert_eq!(sel(&pat, &body, threads, &insp.conflicts), oracle);
            assert_eq!(lw(&pat, &body, threads, &insp.owners), oracle);
        }
    }

    #[test]
    fn f64_schemes_agree_within_tolerance() {
        let pat = pattern(7);
        let fbody = |_i: usize, r: usize| smartapps_workloads::pattern::contribution(r);
        let oracle = seq(&pat, &fbody);
        for threads in [2usize, 4] {
            let insp = Inspector::analyze(&pat, threads);
            for (name, got) in [
                ("rep", rep(&pat, &fbody, threads)),
                ("ll", ll(&pat, &fbody, threads)),
                ("sel", sel(&pat, &fbody, threads, &insp.conflicts)),
                ("lw", lw(&pat, &fbody, threads, &insp.owners)),
                ("hash", hash(&pat, &fbody, threads)),
            ] {
                for (e, (a, b)) in oracle.iter().zip(got.iter()).enumerate() {
                    assert!(
                        (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                        "{name} x{threads} elem {e}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn acc_table_accumulates_and_grows() {
        let mut t = AccTable::<i64>::with_capacity(4);
        assert!(t.is_empty());
        for k in 0..1000u32 {
            t.combine(k, 1);
            t.combine(k, 2);
        }
        assert_eq!(t.len(), 1000);
        let mut pairs: Vec<(u32, i64)> = t.iter().collect();
        pairs.sort_unstable();
        assert!(pairs.iter().all(|&(_, v)| v == 3));
        assert_eq!(pairs.len(), 1000);
    }

    #[test]
    fn acc_table_handles_colliding_keys() {
        let mut t = AccTable::<i64>::with_capacity(8);
        // Keys engineered to collide under the multiplicative hash are hard
        // to construct portably; instead stress a tiny table.
        for k in [0u32, 16, 32, 48, 64, 80] {
            t.combine(k, k as i64);
        }
        for k in [0u32, 16, 32, 48, 64, 80] {
            t.combine(k, 1);
        }
        let got: std::collections::HashMap<u32, i64> = t.iter().collect();
        for k in [0u32, 16, 32, 48, 64, 80] {
            assert_eq!(got[&k], k as i64 + 1);
        }
    }
}
