//! The `simd` scheme: vectorized tree reduction for dense regimes.
//!
//! "A Fast and Generic GPU-Based Parallel Reduction Implementation"
//! reduces in a hierarchy — wide independent lanes per block, merged by a
//! horizontal tree reduce.  This module maps that shape onto CPU SIMD:
//!
//! * **Loop phase** — each SPMD thread owns a *lane-striped* private
//!   array of `N × SIMD_LANES` slots.  Successive references rotate
//!   through the lanes, so repeated updates to a hot element land in
//!   independent accumulator slots instead of one serial dependency
//!   chain (the scalar `rep` bottleneck on high-reuse floods).
//! * **Merge phase** — element blocks are walked in cache-sized tiles;
//!   within a tile the P private stripes are combined slot-wise (the
//!   contiguous, vectorizable inner loop — see [`SimdElem::accumulate`]),
//!   then each element's lanes collapse by a fixed horizontal tree
//!   reduce `(l0 ⊕ l1) ⊕ (l2 ⊕ l3)`.
//!
//! # Numerics policy
//!
//! The summation order is **fixed** by `(pattern, threads)`: every
//! contribution lands in a deterministic `(thread, lane)` slot in
//! iteration order, slots combine across threads in thread order, and
//! lanes collapse in tree order.  Integer results are bit-identical to
//! the sequential oracle (wrapping addition is associative); `f64`
//! results are bit-identical *run-to-run* and differ from the sequential
//! oracle only by reassociation — bounded in practice by
//! `|Σ|·ε·log₂(refs per element)` and verified within `1e-9` relative in
//! the property tests (see `docs/MODEL.md`).
//!
//! Like [`Scheme::Pclr`](crate::Scheme::Pclr), `Scheme::Simd` is not
//! dispatched through [`run_scheme`](crate::run_scheme); the runtime's
//! `SimdBackend` calls [`simd_reduce_on`] directly.

use crate::scheme::{RedElem, UnsafeSlice};
use crate::spmd::{SpawnExecutor, SpmdExecutor};
use smartapps_workloads::pattern::AccessPattern;
use smartapps_workloads::{block_range, elem_block_range, PatternChars};

/// Independent accumulator lanes per element (the "warp width" of the
/// tree reduction mapped onto CPU vector registers).
pub const SIMD_LANES: usize = 4;

/// Elements per merge tile: `SIMD_TILE × SIMD_LANES × 8 B = 32 KiB` of
/// lane accumulators — the cache block the tiled merge keeps resident
/// while it streams through all P private stripes.
pub const SIMD_TILE: usize = 1024;

/// Minimum sparsity (SP = distinct / dimension) for the lane-striped
/// kernel to be worth its `SIMD_LANES`-fold private footprint.  Below
/// this the pattern is in `hash`/`sel` territory and `simd` is masked
/// exactly like an infeasible `lw`.
pub const SIMD_MIN_SP: f64 = 0.25;

/// Whether the vectorized kernel is applicable to a measured pattern:
/// the dense/privatizing regime (SP at or above [`SIMD_MIN_SP`]) with at
/// least one reference.  Sparse and hash-regime patterns are infeasible —
/// lane striping multiplies the private footprint by [`SIMD_LANES`],
/// which only amortizes when the array is densely referenced.
pub fn simd_feasible(chars: &PatternChars) -> bool {
    chars.references > 0 && chars.sp >= SIMD_MIN_SP
}

/// An element type with a vectorizable slot-wise combine.
///
/// `accumulate` must be *observably identical* to the scalar loop
/// `acc[j] = combine(acc[j], src[j])` for every slot `j` in order — the
/// intrinsic paths below only batch independent per-slot combines, never
/// reassociate across slots, so portable and vectorized builds produce
/// bit-identical results.
pub trait SimdElem: RedElem {
    /// Slot-wise combine of `src` into `acc` (`acc[j] ⊕= src[j]`).
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    fn accumulate(acc: &mut [Self], src: &[Self]);
}

/// The portable slot-wise combine every [`SimdElem::accumulate`] must
/// agree with bit-for-bit.
#[inline]
fn accumulate_scalar<T: RedElem>(acc: &mut [T], src: &[T]) {
    assert_eq!(
        acc.len(),
        src.len(),
        "slot-wise combine needs equal lengths"
    );
    for (a, &s) in acc.iter_mut().zip(src.iter()) {
        *a = T::combine(*a, s);
    }
}

impl SimdElem for f64 {
    #[inline]
    fn accumulate(acc: &mut [f64], src: &[f64]) {
        assert_eq!(
            acc.len(),
            src.len(),
            "slot-wise combine needs equal lengths"
        );
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; loads/stores stay in
        // bounds (i + 2 <= len) and unaligned variants are used.
        unsafe {
            use std::arch::x86_64::*;
            let len = acc.len();
            let mut i = 0;
            while i + 2 <= len {
                let a = _mm_loadu_pd(acc.as_ptr().add(i));
                let b = _mm_loadu_pd(src.as_ptr().add(i));
                _mm_storeu_pd(acc.as_mut_ptr().add(i), _mm_add_pd(a, b));
                i += 2;
            }
            while i < len {
                acc[i] += src[i];
                i += 1;
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        accumulate_scalar(acc, src);
    }
}

impl SimdElem for i64 {
    #[inline]
    fn accumulate(acc: &mut [i64], src: &[i64]) {
        assert_eq!(
            acc.len(),
            src.len(),
            "slot-wise combine needs equal lengths"
        );
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is baseline on x86_64; loads/stores stay in
        // bounds (i + 2 <= len) and unaligned variants are used.
        // `_mm_add_epi64` is two's-complement addition == wrapping_add.
        unsafe {
            use std::arch::x86_64::*;
            let len = acc.len();
            let mut i = 0;
            while i + 2 <= len {
                let a = _mm_loadu_si128(acc.as_ptr().add(i) as *const __m128i);
                let b = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
                _mm_storeu_si128(acc.as_mut_ptr().add(i) as *mut __m128i, _mm_add_epi64(a, b));
                i += 2;
            }
            while i < len {
                acc[i] = acc[i].wrapping_add(src[i]);
                i += 1;
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        accumulate_scalar(acc, src);
    }
}

impl SimdElem for u64 {
    #[inline]
    fn accumulate(acc: &mut [u64], src: &[u64]) {
        // Same two's-complement lanes as i64; route through the scalar
        // shape to keep one intrinsic site per width.
        accumulate_scalar(acc, src);
    }
}

/// Collapse one element's [`SIMD_LANES`] slots by the fixed horizontal
/// tree: `(l0 ⊕ l1) ⊕ (l2 ⊕ l3)`.
#[inline]
fn tree_fold<T: RedElem>(lanes: &[T]) -> T {
    debug_assert_eq!(lanes.len(), SIMD_LANES);
    T::combine(
        T::combine(lanes[0], lanes[1]),
        T::combine(lanes[2], lanes[3]),
    )
}

/// `simd` on freshly spawned threads (see [`simd_reduce_on`]).
pub fn simd_reduce<T: SimdElem>(
    pat: &AccessPattern,
    body: &(impl Fn(usize, usize) -> T + Sync),
    threads: usize,
) -> Vec<T> {
    simd_reduce_on(pat, body, threads, &SpawnExecutor)
}

/// `simd`: lane-striped private accumulation with a tiled tree-reduce
/// merge — the vectorized counterpart of
/// [`rep_on`](crate::algorithms::rep_on), with identical SPMD structure
/// (any [`SpmdExecutor`] works) and the fixed summation order documented
/// at the [module level](self).
pub fn simd_reduce_on<T: SimdElem>(
    pat: &AccessPattern,
    body: &(impl Fn(usize, usize) -> T + Sync),
    threads: usize,
    exec: &(impl SpmdExecutor + ?Sized),
) -> Vec<T> {
    assert!(threads >= 1);
    let n = pat.num_elements;
    // Loop phase: each thread accumulates into a lane-striped private
    // array; references rotate through the lanes so repeated hits on one
    // element use independent accumulator slots.
    let mut privates: Vec<Vec<T>> = (0..threads).map(|_| Vec::new()).collect();
    {
        let slots = UnsafeSlice::new(&mut privates);
        let slots = &slots;
        exec.spmd(threads, &|t| {
            let mut w = vec![T::neutral(); n * SIMD_LANES];
            let mut lane = 0usize;
            for i in block_range(pat.num_iterations(), t, threads) {
                for r in pat.ref_range(i) {
                    let x = pat.indices[r] as usize;
                    let s = x * SIMD_LANES + lane;
                    w[s] = T::combine(w[s], body(i, r));
                    lane = (lane + 1) % SIMD_LANES;
                }
            }
            // SAFETY: each tid writes only its own slot.
            unsafe { slots.write(t, w) };
        });
    }
    // Merge phase: tiled slot-wise accumulation across the P stripes,
    // then a per-element horizontal tree fold.
    let mut result = vec![T::neutral(); n];
    let privates = &privates;
    {
        let out = UnsafeSlice::new(&mut result);
        let out = &out;
        exec.spmd(threads, &|t| {
            let my = elem_block_range(n, t, threads);
            let mut acc = [T::neutral(); SIMD_TILE * SIMD_LANES];
            let mut lo = my.start;
            while lo < my.end {
                let hi = (lo + SIMD_TILE).min(my.end);
                let slots = (hi - lo) * SIMD_LANES;
                acc[..slots].fill(T::neutral());
                for p in privates {
                    T::accumulate(&mut acc[..slots], &p[lo * SIMD_LANES..hi * SIMD_LANES]);
                }
                for e in lo..hi {
                    let base = (e - lo) * SIMD_LANES;
                    // SAFETY: element blocks are disjoint across threads.
                    unsafe { out.write(e, tree_fold(&acc[base..base + SIMD_LANES])) };
                }
                lo = hi;
            }
        });
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::seq;
    use smartapps_workloads::pattern::{contribution, contribution_i64, sequential_reduce_i64};
    use smartapps_workloads::{Distribution, PatternSpec};

    fn pattern(seed: u64) -> AccessPattern {
        PatternSpec {
            num_elements: 500,
            iterations: 800,
            refs_per_iter: 3,
            coverage: 0.6,
            dist: Distribution::Uniform,
            seed,
        }
        .generate()
    }

    fn body(_i: usize, r: usize) -> i64 {
        contribution_i64(r)
    }

    #[test]
    fn simd_matches_scalar_oracle_i64_bit_exact() {
        let pat = pattern(42);
        let oracle = sequential_reduce_i64(&pat);
        for threads in [1usize, 2, 4, 7] {
            assert_eq!(simd_reduce(&pat, &body, threads), oracle, "simd x{threads}");
        }
    }

    #[test]
    fn simd_f64_deterministic_and_bounded() {
        let pat = pattern(7);
        let fbody = |_i: usize, r: usize| contribution(r);
        let oracle = seq(&pat, &fbody);
        for threads in [1usize, 2, 4] {
            let a = simd_reduce(&pat, &fbody, threads);
            let b = simd_reduce(&pat, &fbody, threads);
            // Fixed blocked summation order: bit-identical run-to-run.
            for (e, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "x{threads} elem {e}");
            }
            // Reassociation vs the sequential order stays tiny.
            for (e, (x, o)) in a.iter().zip(oracle.iter()).enumerate() {
                assert!(
                    (x - o).abs() <= 1e-9 * o.abs().max(1.0),
                    "x{threads} elem {e}: {x} vs oracle {o}"
                );
            }
        }
    }

    /// Same pathological executor as the scalar algorithm tests: tids run
    /// one after another; only the completion barrier may be relied on.
    struct SerialExec;
    impl SpmdExecutor for SerialExec {
        fn spmd(&self, threads: usize, body: &(dyn Fn(usize) + Sync)) {
            for t in 0..threads {
                body(t);
            }
        }
    }

    #[test]
    fn simd_is_executor_agnostic() {
        let pat = pattern(11);
        let oracle = sequential_reduce_i64(&pat);
        assert_eq!(simd_reduce_on(&pat, &body, 4, &SerialExec), oracle);
        // And bit-identical to the spawned-thread run for f64.
        let fbody = |_i: usize, r: usize| contribution(r);
        let serial = simd_reduce_on(&pat, &fbody, 4, &SerialExec);
        let spawned = simd_reduce(&pat, &fbody, 4);
        for (a, b) in serial.iter().zip(spawned.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn simd_edge_patterns() {
        // Empty pattern.
        let empty = AccessPattern::from_iters(16, &[]);
        assert_eq!(simd_reduce(&empty, &body, 3), vec![0i64; 16]);
        // Maximal contention: every reference hits element 0 — the lane
        // rotation must still fold back to the exact total.
        let hot = AccessPattern::from_iters(4, &vec![vec![0u32, 0, 0]; 100]);
        let oracle = sequential_reduce_i64(&hot);
        for threads in [1usize, 2, 4] {
            assert_eq!(simd_reduce(&hot, &body, threads), oracle);
        }
        // More threads than iterations.
        let tiny = AccessPattern::from_iters(10, &[vec![1u32], vec![2, 2]]);
        let oracle = sequential_reduce_i64(&tiny);
        for threads in [3usize, 8] {
            assert_eq!(simd_reduce(&tiny, &body, threads), oracle);
        }
    }

    #[test]
    fn accumulate_matches_scalar_combine_bitwise() {
        // The intrinsic paths must agree with the portable slot loop
        // bit-for-bit, including odd (tail) lengths.
        for len in [0usize, 1, 2, 3, 7, 16, 33] {
            let mut fa: Vec<f64> = (0..len).map(|j| j as f64 * 0.3 - 1.7).collect();
            let fs: Vec<f64> = (0..len).map(|j| (j as f64).sin()).collect();
            let mut fa_ref = fa.clone();
            f64::accumulate(&mut fa, &fs);
            super::accumulate_scalar(&mut fa_ref, &fs);
            assert!(fa
                .iter()
                .zip(&fa_ref)
                .all(|(a, b)| a.to_bits() == b.to_bits()));

            let mut ia: Vec<i64> = (0..len).map(|j| i64::MAX - j as i64).collect();
            let is: Vec<i64> = (0..len).map(|j| j as i64 * 3 + 1).collect();
            let mut ia_ref = ia.clone();
            i64::accumulate(&mut ia, &is); // wraps — must match wrapping_add
            super::accumulate_scalar(&mut ia_ref, &is);
            assert_eq!(ia, ia_ref);

            let mut ua: Vec<u64> = (0..len as u64).map(|j| u64::MAX - j).collect();
            let us: Vec<u64> = (0..len as u64).collect();
            let mut ua_ref = ua.clone();
            u64::accumulate(&mut ua, &us);
            super::accumulate_scalar(&mut ua_ref, &us);
            assert_eq!(ua, ua_ref);
        }
    }

    #[test]
    fn feasibility_gates_on_density() {
        let dense = PatternChars::measure(&pattern(1));
        assert!(dense.sp >= SIMD_MIN_SP, "test pattern should be dense");
        assert!(simd_feasible(&dense));
        let sparse = PatternChars::measure(
            &PatternSpec {
                num_elements: 400_000,
                iterations: 1_000,
                refs_per_iter: 4,
                coverage: 0.004,
                dist: Distribution::Uniform,
                seed: 3,
            }
            .generate(),
        );
        assert!(!simd_feasible(&sparse), "sp {}", sparse.sp);
        // No references => nothing to vectorize.
        let empty = PatternChars::measure(&AccessPattern::from_iters(16, &[]));
        assert!(!simd_feasible(&empty));
    }
}
