//! Reduction simplification: recognize-and-rewrite *before* scheduling.
//!
//! Every scheme the decision model can pick still performs O(R) work for
//! R reduction references; the polyhedral simplification line (Maximal
//! Simplification of Polyhedral Reductions) shows that when the
//! references of successive iterations overlap, the overlap can be
//! *reused* instead of recomputed — cutting asymptotic work, which beats
//! any backend that merely executes the original work faster.
//!
//! This module is the software embodiment of that idea for the CSR
//! patterns this repo's runtime schedules:
//!
//! * a **recognizer** ([`recognize`]) that detects the unified
//!   contiguous-interval form — every iteration's references form one
//!   ascending run `lo_i ..= hi_i` — which subsumes prefix scans
//!   (`lo == 0`), suffix scans (`hi == N-1`) and overlapping sliding
//!   windows (constant width), plus a conservative [`CostGuard`] so
//!   unprofitable matches pass through untouched;
//! * a **rewriter** ([`run_scan`] / [`run_scan_group`]) that lowers a
//!   match to difference arrays: each iteration posts its per-iteration
//!   value at `diff[lo]` and its inverse at `diff[hi+1]`, and one prefix
//!   scan materializes every output — O(I + N) instead of O(R).  The
//!   group form hoists the shared structural traversal across K fused
//!   outputs (one row walk feeds K difference arrays);
//! * a **probe** ([`probe_uniform`]) that spot-checks the caller's
//!   "iteration-uniform body" declaration, the legality flag the rewrite
//!   rests on: the contribution must not depend on the reference slot
//!   within an iteration (and must be finite for floats).  A declaration
//!   the probe refutes disqualifies the rewrite — the job then executes
//!   on the unsimplified engine, so a lying caller loses the speedup,
//!   never the answer.
//!
//! The rewrite needs an *invertible* combine — difference arrays cancel
//! a window's value past its right edge — which [`ScanElem`] adds on top
//! of [`RedElem`]: exact for the wrapping integer monoids (a true group
//! structure, bit-identical to the direct sum in any order), and
//! tolerance-equal for `f64` where the executor's fixed sequential
//! evaluation order makes repeated runs bit-identical to *each other*.

use crate::fused::FusedBody;
use crate::scheme::RedElem;
use smartapps_workloads::pattern::AccessPattern;

/// Rows the uniformity probe samples (each checked exhaustively across
/// its reference slots).
pub const PROBE_ROWS: usize = 16;

/// A reduction element whose combine is invertible — the algebra the
/// difference-array rewrite needs.  Wrapping integer addition forms a
/// true group (`combine(v, negate(v))` is exactly neutral in any
/// evaluation order); `f64` negation cancels only approximately, so
/// float rewrites are tolerance-equal to the unsimplified engine and
/// [`admissible`](ScanElem::admissible) additionally refuses non-finite
/// contributions, whose cancellation error is unbounded.
pub trait ScanElem: RedElem {
    /// The inverse element: `combine(v, negate(v)) == neutral()` (exactly
    /// for integers, approximately for floats).
    fn negate(v: Self) -> Self;
    /// Whether a contribution value may enter a rewritten plan at all.
    fn admissible(v: Self) -> bool {
        let _ = v;
        true
    }
}

impl ScanElem for i64 {
    #[inline]
    fn negate(v: i64) -> i64 {
        v.wrapping_neg()
    }
}

impl ScanElem for u64 {
    #[inline]
    fn negate(v: u64) -> u64 {
        v.wrapping_neg()
    }
}

impl ScanElem for f64 {
    #[inline]
    fn negate(v: f64) -> f64 {
        -v
    }
    #[inline]
    fn admissible(v: f64) -> bool {
        v.is_finite()
    }
}

/// The structural family of a recognized pattern (diagnostic: the
/// rewrite is identical for all of them; the shape feeds telemetry
/// labels and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanShape {
    /// Every iteration reads `0 ..= hi_i`: a prefix scan.
    Prefix,
    /// Every iteration reads `lo_i ..= N-1`: a suffix scan.
    Suffix,
    /// Every (non-empty) iteration reads a constant-width interval: a
    /// sliding window of that width.
    Window(usize),
    /// Contiguous intervals of varying placement and width.
    Interval,
}

impl ScanShape {
    /// Telemetry label of the shape (`smartapps_simplify_ns{shape=...}`).
    pub fn label(&self) -> &'static str {
        match self {
            ScanShape::Prefix => "prefix",
            ScanShape::Suffix => "suffix",
            ScanShape::Window(_) => "window",
            ScanShape::Interval => "interval",
        }
    }
}

/// Why the recognizer declined a pattern.  Every variant is *structural*
/// — a property of the pattern alone, never of the body — so verdicts
/// are safe to persist per workload class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reject {
    /// No references at all: nothing to simplify.
    Empty,
    /// An iteration's references are not one ascending contiguous run
    /// (a gap, a repeat/aliased element, or a descending step) — the
    /// interval lowering does not apply.
    RaggedRow {
        /// First offending iteration.
        iter: usize,
    },
    /// Structure matched, but the rewritten work would not undercut the
    /// original by the guard's margin.
    Unprofitable {
        /// Original work: total reduction references.
        refs: usize,
        /// Rewritten work: iterations + elements (+1 for the scan).
        rewritten: usize,
    },
}

/// Conservative profitability gate: a match is rewritten only when the
/// original O(R) work exceeds the rewritten O(I + N) work by a real
/// margin, so borderline patterns keep their measured-and-calibrated
/// execution path instead of trading it for noise.
#[derive(Debug, Clone, Copy)]
pub struct CostGuard {
    /// Minimum total references before a rewrite is considered at all
    /// (tiny jobs finish before the bookkeeping pays off).
    pub min_refs: usize,
    /// Required ratio of original to rewritten work.
    pub min_gain: f64,
}

impl Default for CostGuard {
    fn default() -> Self {
        CostGuard {
            min_refs: 1024,
            min_gain: 2.0,
        }
    }
}

/// A recognized (and guard-approved) pattern: its shape and the work
/// accounting the cost guard compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanMatch {
    /// Structural family of the pattern.
    pub shape: ScanShape,
    /// Original work: total reduction references.
    pub refs: usize,
    /// Rewritten work: one difference-array post per iteration plus one
    /// prefix scan over the output (`iterations + elements + 1`).
    pub rewritten_ops: usize,
}

/// Structurally recognize `pat` as a contiguous-interval reduction and
/// apply `guard`.  Purely pattern-driven: the caller still owns the
/// body-side legality question (declaration + [`probe_uniform`]).
///
/// Empty iterations are permitted (they contribute nothing and the
/// rewriter skips them); they do not participate in shape
/// classification.
pub fn recognize(pat: &AccessPattern, guard: &CostGuard) -> Result<ScanMatch, Reject> {
    let refs = pat.num_references();
    if refs == 0 {
        return Err(Reject::Empty);
    }
    let n = pat.num_elements;
    let iters = pat.num_iterations();
    let mut all_prefix = true;
    let mut all_suffix = true;
    let mut width: Option<usize> = None;
    let mut constant_width = true;
    for i in 0..iters {
        let row = pat.refs(i);
        if row.is_empty() {
            continue;
        }
        let lo = row[0];
        // One ascending contiguous run: each reference is exactly its
        // predecessor plus one.  Gaps (off-by-one windows), repeats
        // (aliased outputs) and descending rows all fail here.
        for (j, &x) in row.iter().enumerate() {
            if x as usize != lo as usize + j {
                return Err(Reject::RaggedRow { iter: i });
            }
        }
        let hi = lo as usize + row.len() - 1;
        all_prefix &= lo == 0;
        all_suffix &= hi == n.saturating_sub(1);
        match width {
            None => width = Some(row.len()),
            Some(w) => constant_width &= w == row.len(),
        }
    }
    let rewritten = iters + n + 1;
    if refs < guard.min_refs || (refs as f64) < guard.min_gain * rewritten as f64 {
        return Err(Reject::Unprofitable { refs, rewritten });
    }
    let shape = if all_prefix {
        ScanShape::Prefix
    } else if all_suffix {
        ScanShape::Suffix
    } else if constant_width {
        ScanShape::Window(width.unwrap_or(0))
    } else {
        ScanShape::Interval
    };
    Ok(ScanMatch {
        shape,
        refs,
        rewritten_ops: rewritten,
    })
}

/// Spot-check a caller's iteration-uniform declaration: sample up to
/// [`PROBE_ROWS`] non-empty iterations spread across the pattern, plus
/// the first [`PROBE_ROWS`] iterations holding at least two references,
/// and evaluate the body at *every* reference slot of each — all values
/// must agree (and be [`admissible`](ScanElem::admissible)).  A `false`
/// means the declaration is refuted for *this body* — it says nothing
/// about the pattern, so probe verdicts must never be persisted per
/// class.
///
/// The second pass exists because strided sampling alone can alias with
/// the pattern's own periodicity: a growing-prefix family whose period
/// divides the stride presents only its width-1 rows to the sampler,
/// and slot dependence is unobservable on a single-slot row.  Probing
/// the earliest multi-reference rows directly closes that hole; if the
/// pattern has *no* multi-reference row at all, every row reads exactly
/// one slot and the declaration is vacuously true.
pub fn probe_uniform<T: ScanElem>(
    pat: &AccessPattern,
    body: &(dyn Fn(usize, usize) -> T + Sync),
) -> bool {
    let iters = pat.num_iterations();
    if iters == 0 {
        return true;
    }
    let probe_row = |i: usize| -> bool {
        let range = pat.ref_range(i);
        if range.is_empty() {
            return true;
        }
        let first = body(i, range.start);
        if !T::admissible(first) {
            return false;
        }
        for r in range.start + 1..range.end {
            if body(i, r) != first {
                return false;
            }
        }
        true
    };
    let step = iters.div_ceil(PROBE_ROWS);
    for i in (0..iters).step_by(step.max(1)) {
        if !probe_row(i) {
            return false;
        }
    }
    let mut wide = 0;
    for i in 0..iters {
        if wide >= PROBE_ROWS {
            break;
        }
        if pat.ref_range(i).len() < 2 {
            continue;
        }
        wide += 1;
        if !probe_row(i) {
            return false;
        }
    }
    true
}

/// Execute one recognized job via the difference-array rewrite: O(I + N)
/// work instead of O(R).  The caller guarantees the pattern passed
/// [`recognize`] (contiguous ascending rows) and the body is
/// iteration-uniform; each iteration's value is taken from its first
/// reference slot.
///
/// Evaluation order is fixed (iterations ascending, then one left-to-
/// right scan), so repeated runs are bit-identical even for `f64`.
pub fn run_scan<T: ScanElem>(
    pat: &AccessPattern,
    body: &(dyn Fn(usize, usize) -> T + Sync),
) -> Vec<T> {
    run_scan_group(pat, &[body]).pop().unwrap_or_default()
}

/// [`run_scan`] for a K-fused group sharing one pattern: the structural
/// row walk (interval bounds, difference-array addressing) is paid once
/// and feeds K difference arrays — the shared-partial hoisting that
/// makes simplified fused groups O(I + N + K·(I + N)) instead of
/// K·O(R).
pub fn run_scan_group<T: ScanElem>(
    pat: &AccessPattern,
    bodies: &[FusedBody<'_, T>],
) -> Vec<Vec<T>> {
    let k = bodies.len();
    if k == 0 {
        return Vec::new();
    }
    let n = pat.num_elements;
    let mut diffs: Vec<Vec<T>> = (0..k).map(|_| vec![T::neutral(); n + 1]).collect();
    for i in 0..pat.num_iterations() {
        let range = pat.ref_range(i);
        if range.is_empty() {
            continue;
        }
        let lo = pat.indices[range.start] as usize;
        let hi = lo + (range.end - range.start); // exclusive right edge
        for (body, diff) in bodies.iter().zip(diffs.iter_mut()) {
            let v = body(i, range.start);
            diff[lo] = T::combine(diff[lo], v);
            diff[hi] = T::combine(diff[hi], T::negate(v));
        }
    }
    diffs
        .into_iter()
        .map(|diff| {
            let mut acc = T::neutral();
            let mut out = vec![T::neutral(); n];
            for (e, slot) in out.iter_mut().enumerate() {
                acc = T::combine(acc, diff[e]);
                *slot = acc;
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartapps_workloads::pattern::contribution_i64;

    /// Direct O(R) oracle over the true (possibly slot-dependent) body.
    fn oracle_i64(pat: &AccessPattern, body: impl Fn(usize, usize) -> i64) -> Vec<i64> {
        let mut w = vec![0i64; pat.num_elements];
        for (i, r, x) in pat.iter_refs() {
            w[x as usize] = w[x as usize].wrapping_add(body(i, r));
        }
        w
    }

    fn oracle_f64(pat: &AccessPattern, body: impl Fn(usize, usize) -> f64) -> Vec<f64> {
        let mut w = vec![0.0f64; pat.num_elements];
        for (i, r, x) in pat.iter_refs() {
            w[x as usize] += body(i, r);
        }
        w
    }

    /// A sliding-window pattern: iteration `i` reads
    /// `start(i) ..= start(i)+width-1` with the given start stride.
    fn window_pattern(n: usize, iters: usize, width: usize, stride: usize) -> AccessPattern {
        let rows: Vec<Vec<u32>> = (0..iters)
            .map(|i| {
                let lo = (i * stride) % (n - width + 1);
                (lo as u32..(lo + width) as u32).collect()
            })
            .collect();
        AccessPattern::from_iters(n, &rows)
    }

    fn prefix_pattern(n: usize, iters: usize) -> AccessPattern {
        let rows: Vec<Vec<u32>> = (0..iters).map(|i| (0..=(i % n) as u32).collect()).collect();
        AccessPattern::from_iters(n, &rows)
    }

    fn suffix_pattern(n: usize, iters: usize) -> AccessPattern {
        let rows: Vec<Vec<u32>> = (0..iters)
            .map(|i| ((i % n) as u32..n as u32).collect())
            .collect();
        AccessPattern::from_iters(n, &rows)
    }

    const LOOSE: CostGuard = CostGuard {
        min_refs: 1,
        min_gain: 0.0,
    };

    #[test]
    fn recognizer_classifies_the_three_families() {
        let w = window_pattern(64, 512, 8, 1);
        assert_eq!(recognize(&w, &LOOSE).unwrap().shape, ScanShape::Window(8));
        let p = prefix_pattern(64, 512);
        assert_eq!(recognize(&p, &LOOSE).unwrap().shape, ScanShape::Prefix);
        let s = suffix_pattern(64, 512);
        assert_eq!(recognize(&s, &LOOSE).unwrap().shape, ScanShape::Suffix);
        // Mixed contiguous intervals of varying width.
        let m =
            AccessPattern::from_iters(16, &[vec![2, 3, 4], vec![5, 6], vec![], vec![0, 1, 2, 3]]);
        assert_eq!(recognize(&m, &LOOSE).unwrap().shape, ScanShape::Interval);
    }

    #[test]
    fn recognizer_rejects_near_misses() {
        // Off-by-one window: a gap inside the run.
        let gap = AccessPattern::from_iters(16, &[vec![3, 4, 6]]);
        assert_eq!(recognize(&gap, &LOOSE), Err(Reject::RaggedRow { iter: 0 }));
        // Aliased outputs: a repeated element.
        let alias = AccessPattern::from_iters(16, &[vec![5, 5, 6]]);
        assert_eq!(
            recognize(&alias, &LOOSE),
            Err(Reject::RaggedRow { iter: 0 })
        );
        // Descending run.
        let desc = AccessPattern::from_iters(16, &[vec![6, 5, 4]]);
        assert_eq!(recognize(&desc, &LOOSE), Err(Reject::RaggedRow { iter: 0 }));
        // A single bad row poisons an otherwise clean window pattern.
        let mut rows: Vec<Vec<u32>> = (0..64).map(|i| vec![i, i + 1, i + 2]).collect();
        rows[40] = vec![40, 42, 43];
        let poisoned = AccessPattern::from_iters(128, &rows);
        assert_eq!(
            recognize(&poisoned, &LOOSE),
            Err(Reject::RaggedRow { iter: 40 })
        );
        // Nothing to simplify.
        let empty = AccessPattern::from_iters(4, &[vec![], vec![]]);
        assert_eq!(recognize(&empty, &LOOSE), Err(Reject::Empty));
    }

    #[test]
    fn cost_guard_passes_through_unprofitable_matches() {
        let small = window_pattern(32, 16, 4, 1); // 64 refs, rewritten 49
        let strict = CostGuard::default();
        assert!(matches!(
            recognize(&small, &strict),
            Err(Reject::Unprofitable { .. })
        ));
        // A wide overlapping window clears the default guard easily.
        let big = window_pattern(256, 4096, 64, 1);
        let m = recognize(&big, &strict).unwrap();
        assert!(m.refs as f64 >= strict.min_gain * m.rewritten_ops as f64);
    }

    #[test]
    fn i64_scan_is_bit_exact_against_the_direct_oracle() {
        for (pat, name) in [
            (window_pattern(100, 700, 13, 3), "window"),
            (prefix_pattern(50, 300), "prefix"),
            (suffix_pattern(50, 300), "suffix"),
        ] {
            recognize(&pat, &LOOSE).unwrap();
            let body = |i: usize, _r: usize| contribution_i64(i).wrapping_mul(7);
            let got = run_scan(&pat, &body);
            assert_eq!(got, oracle_i64(&pat, body), "{name}");
        }
    }

    #[test]
    fn i64_scan_matches_under_wrapping_extremes() {
        // Values near the integer boundaries exercise the wrapping group
        // structure the rewrite relies on.
        let pat = window_pattern(64, 2000, 9, 1);
        let body = |i: usize, _r: usize| i64::MAX - (i as i64).wrapping_mul(0x1234_5678_9abc);
        assert_eq!(run_scan(&pat, &body), oracle_i64(&pat, body));
    }

    #[test]
    fn f64_scan_is_tolerance_equal_and_run_to_run_bit_identical() {
        let pat = window_pattern(128, 3000, 17, 2);
        let body = |i: usize, _r: usize| smartapps_workloads::pattern::contribution(i);
        let a = run_scan(&pat, &body);
        let oracle = oracle_f64(&pat, body);
        for (g, o) in a.iter().zip(&oracle) {
            assert!((g - o).abs() <= 1e-9 * o.abs().max(1.0), "{g} vs {o}");
        }
        for _ in 0..3 {
            let again = run_scan(&pat, &body);
            assert!(
                a.iter()
                    .zip(&again)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "f64 rewrite must be deterministic run to run"
            );
        }
    }

    #[test]
    fn group_scan_matches_k_independent_oracles() {
        let pat = window_pattern(90, 900, 11, 1);
        let bodies_owned: Vec<Box<dyn Fn(usize, usize) -> i64 + Sync>> = (0..5)
            .map(|j| {
                let j = j as i64;
                Box::new(move |i: usize, _r: usize| contribution_i64(i).wrapping_add(j))
                    as Box<dyn Fn(usize, usize) -> i64 + Sync>
            })
            .collect();
        let bodies: Vec<FusedBody<'_, i64>> = bodies_owned
            .iter()
            .map(|b| &**b as FusedBody<'_, i64>)
            .collect();
        let outs = run_scan_group(&pat, &bodies);
        assert_eq!(outs.len(), 5);
        for (j, out) in outs.iter().enumerate() {
            let j = j as i64;
            let oracle = oracle_i64(&pat, |i, _r| contribution_i64(i).wrapping_add(j));
            assert_eq!(out, &oracle, "fused output {j}");
        }
    }

    #[test]
    fn probe_accepts_uniform_and_refutes_liars() {
        let pat = window_pattern(64, 400, 8, 1);
        let uniform = |i: usize, _r: usize| contribution_i64(i);
        assert!(probe_uniform::<i64>(&pat, &uniform));
        // Slot-dependent ("non-associative" under the rewrite): refuted.
        let slotted = |_i: usize, r: usize| contribution_i64(r);
        assert!(!probe_uniform::<i64>(&pat, &slotted));
        // Non-finite floats are inadmissible even when uniform.
        let inf = |_i: usize, _r: usize| f64::INFINITY;
        assert!(!probe_uniform::<f64>(&pat, &inf));
        let nan = |_i: usize, _r: usize| f64::NAN;
        assert!(!probe_uniform::<f64>(&pat, &nan));
    }

    #[test]
    fn probe_is_not_fooled_by_stride_aliasing() {
        // 1024 iterations probed with stride 1024/16 = 64; the prefix
        // period 64 divides the stride, so every strided sample is the
        // width-1 row `[0]` and a slot-dependent body looks uniform to
        // the strided pass alone.  The wide-row pass must refute it.
        let pat = prefix_pattern(64, 1024);
        let slotted = |_i: usize, r: usize| contribution_i64(r);
        assert!(
            !probe_uniform::<i64>(&pat, &slotted),
            "pattern-periodic sampling must not hide slot dependence"
        );
        // Same period, genuinely uniform body: still accepted.
        let uniform = |i: usize, _r: usize| contribution_i64(i);
        assert!(probe_uniform::<i64>(&pat, &uniform));
        // A pattern whose rows all hold exactly one slot cannot observe
        // slot dependence — the declaration is vacuously true.
        let singles = AccessPattern::from_iters(
            32,
            &(0..200).map(|i| vec![(i % 32) as u32]).collect::<Vec<_>>(),
        );
        assert!(probe_uniform::<i64>(&singles, &slotted));
    }

    #[test]
    fn empty_rows_contribute_nothing() {
        let pat = AccessPattern::from_iters(
            2048,
            &(0..600)
                .map(|i| {
                    if i % 3 == 0 {
                        Vec::new()
                    } else {
                        (i as u32..(i + 4) as u32).collect()
                    }
                })
                .collect::<Vec<_>>(),
        );
        recognize(&pat, &LOOSE).unwrap();
        let body = |i: usize, _r: usize| contribution_i64(i);
        assert_eq!(run_scan(&pat, &body), oracle_i64(&pat, body));
    }
}
