//! SPMD fork-join execution: the seam between the reduction algorithms and
//! whoever supplies the worker threads.
//!
//! Every parallel scheme in [`crate::algorithms`] has the same shape: run
//! `body(tid)` for `tid in 0..threads`, wait for all of them, continue.
//! The paper's run-time library executes that shape on warm SPMD workers;
//! a one-shot library call executes it on freshly spawned threads.  The
//! [`SpmdExecutor`] trait captures exactly that contract so the same
//! algorithm code runs on either:
//!
//! * [`SpawnExecutor`] — the per-call thread-spawn path (no setup, full
//!   thread-creation cost on every invocation);
//! * `smartapps_runtime::WorkerPool` — persistent parked workers, zero
//!   thread-creation cost on the hot path.

/// A fork-join SPMD region runner.
///
/// Implementations must run `body(tid)` exactly once for every
/// `tid in 0..threads`, with all calls eligible to run concurrently, and
/// must not return until every call has completed.  `body` may rely on
/// that barrier for safety (disjoint-index writes into shared buffers).
pub trait SpmdExecutor: Send + Sync {
    /// Execute `body(0..threads)` to completion.
    fn spmd(&self, threads: usize, body: &(dyn Fn(usize) + Sync));
}

/// The per-call thread-spawn executor: forks `threads - 1` OS threads with
/// [`std::thread::scope`] and runs `tid == 0` on the calling thread.
///
/// This is the baseline the persistent worker pool is measured against —
/// correct and dependency-free, but it pays thread creation and teardown
/// on every single reduction invocation.
#[derive(Debug, Default, Clone, Copy)]
pub struct SpawnExecutor;

impl SpmdExecutor for SpawnExecutor {
    fn spmd(&self, threads: usize, body: &(dyn Fn(usize) + Sync)) {
        assert!(threads >= 1, "spmd needs at least one thread");
        if threads == 1 {
            body(0);
            return;
        }
        std::thread::scope(|s| {
            for t in 1..threads {
                s.spawn(move || body(t));
            }
            body(0);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_tid_exactly_once() {
        let exec = SpawnExecutor;
        for threads in [1usize, 2, 5, 8] {
            let counts: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
            exec.spmd(threads, &|t| {
                counts[t].fetch_add(1, Ordering::Relaxed);
            });
            for (t, c) in counts.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "tid {t}");
            }
        }
    }

    #[test]
    fn spmd_is_a_barrier() {
        // After spmd returns, all per-thread writes must be visible.
        let exec = SpawnExecutor;
        let mut out = vec![0usize; 6];
        {
            let slice = crate::scheme::UnsafeSlice::new(&mut out);
            let slice = &slice;
            exec.spmd(6, &|t| {
                // SAFETY: each tid writes a distinct index.
                unsafe { slice.write(t, t + 1) };
            });
        }
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn usable_as_trait_object() {
        let exec: &dyn SpmdExecutor = &SpawnExecutor;
        let hits = AtomicUsize::new(0);
        exec.spmd(3, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }
}
