//! Reduction scheme identifiers and the element/operator abstraction.
//!
//! A *reduction variable* is "a variable whose value is used in one
//! associative and commutative operation of the form `x = x ⊗ exp`, where
//! `⊗` is the operator and `x` does not occur in `exp` or anywhere else in
//! the loop" (Section 4, footnote).  The associativity/commutativity is
//! what lets every scheme here reorder and privatize the updates.

use serde::{Deserialize, Serialize};
use std::cell::UnsafeCell;

/// The parallel reduction algorithms of Section 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Sequential execution (baseline, not a parallelization).
    Seq,
    /// `rep` — private accumulation in fully replicated private arrays,
    /// followed by a global merge.
    Rep,
    /// `ll` — replicated buffer with links: private arrays plus a
    /// touched-line list so the merge visits only written lines.
    Ll,
    /// `sel` — selective privatization: only elements referenced by more
    /// than one processor are privatized; the rest are written in place.
    Sel,
    /// `lw` — local write (owner-computes with iteration replication,
    /// after Han & Tseng): each processor executes the iterations touching
    /// its partition and commits only the owned updates.
    Lw,
    /// `hash` — sparse reductions privatized in per-processor hash tables.
    Hash,
    /// `pclr` — the hardware scheme of Section 5: reduction accesses are
    /// marked (shadow-addressed) and combined by the directory
    /// controllers' combine units, with no private-array initialization
    /// and a cache-flush merge.  This scheme has **no software kernel**;
    /// it executes on a PCLR-capable execution backend (the simulated
    /// machine in `smartapps-sim`, routed by `smartapps-runtime`'s
    /// `PclrBackend`).  [`run_scheme`](crate::run_scheme) and
    /// [`run_fused`](crate::run_fused) panic when asked to run it.
    Pclr,
    /// `simd` — vectorized tree reduction: cache-block tiled private
    /// accumulation with multiple independent lanes per thread, merged by
    /// a horizontal tree reduce (the GPU block/warp shape mapped to CPU
    /// SIMD; see [`simd`](crate::simd)).  Like [`Pclr`](Scheme::Pclr) it
    /// is **not** dispatched through the scalar kernel front end:
    /// `smartapps-runtime`'s `SimdBackend` invokes the vector kernels
    /// directly, and [`run_scheme`](crate::run_scheme)/
    /// [`run_fused`](crate::run_fused) panic when asked to run it.
    Simd,
}

impl Scheme {
    /// The paper's abbreviation for the scheme.
    pub fn abbrev(self) -> &'static str {
        match self {
            Scheme::Seq => "seq",
            Scheme::Rep => "rep",
            Scheme::Ll => "ll",
            Scheme::Sel => "sel",
            Scheme::Lw => "lw",
            Scheme::Hash => "hash",
            Scheme::Pclr => "pclr",
            Scheme::Simd => "simd",
        }
    }

    /// Parse the paper's abbreviation.
    pub fn from_abbrev(s: &str) -> Option<Scheme> {
        Some(match s {
            "seq" => Scheme::Seq,
            "rep" => Scheme::Rep,
            "ll" => Scheme::Ll,
            "sel" => Scheme::Sel,
            "lw" => Scheme::Lw,
            "hash" => Scheme::Hash,
            "pclr" => Scheme::Pclr,
            "simd" => Scheme::Simd,
            _ => return None,
        })
    }

    /// All *software* parallel schemes (excludes `Seq` and the
    /// backend-gated `Pclr`/`Simd` schemes, which need a capable
    /// execution backend and enter rankings only when one is present).
    pub fn all_parallel() -> [Scheme; 5] {
        [
            Scheme::Rep,
            Scheme::Ll,
            Scheme::Sel,
            Scheme::Lw,
            Scheme::Hash,
        ]
    }

    /// True for schemes the scalar software library can execute directly
    /// (everything except the hardware [`Pclr`](Scheme::Pclr) scheme and
    /// the vectorized [`Simd`](Scheme::Simd) scheme, which route through
    /// their own execution backends).
    pub fn is_software(self) -> bool {
        !matches!(self, Scheme::Pclr | Scheme::Simd)
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// An element type usable in reductions: a commutative monoid.
pub trait RedElem: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static {
    /// The identity element.
    fn neutral() -> Self;
    /// The associative, commutative combine.
    fn combine(a: Self, b: Self) -> Self;
}

impl RedElem for f64 {
    #[inline]
    fn neutral() -> f64 {
        0.0
    }
    #[inline]
    fn combine(a: f64, b: f64) -> f64 {
        a + b
    }
}

impl RedElem for i64 {
    #[inline]
    fn neutral() -> i64 {
        0
    }
    #[inline]
    fn combine(a: i64, b: i64) -> i64 {
        a.wrapping_add(b)
    }
}

impl RedElem for u64 {
    #[inline]
    fn neutral() -> u64 {
        0
    }
    #[inline]
    fn combine(a: u64, b: u64) -> u64 {
        a.wrapping_add(b)
    }
}

/// A shared slice written concurrently at *provably disjoint* indices.
///
/// The `sel` and `lw` schemes let multiple threads write directly into the
/// shared result array; their inspectors guarantee that no element is
/// written by two threads.  This wrapper carries that guarantee past the
/// borrow checker.
pub struct UnsafeSlice<'a, T> {
    slice: &'a [UnsafeCell<T>],
}

unsafe impl<T: Send + Sync> Send for UnsafeSlice<'_, T> {}
unsafe impl<T: Send + Sync> Sync for UnsafeSlice<'_, T> {}

impl<'a, T> UnsafeSlice<'a, T> {
    /// Wrap a mutable slice for disjoint concurrent writes.
    pub fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: `&mut [T]` and `&[UnsafeCell<T>]` have identical layout;
        // exclusive access is handed to the cells.
        let ptr = slice as *mut [T] as *const [UnsafeCell<T>];
        UnsafeSlice {
            slice: unsafe { &*ptr },
        }
    }

    /// Write `v` to index `i`.
    ///
    /// # Safety
    /// No other thread may read or write index `i` concurrently.  Callers
    /// uphold this with a partition of the index space.
    #[inline]
    pub unsafe fn write(&self, i: usize, v: T) {
        *self.slice[i].get() = v;
    }

    /// Read index `i`.
    ///
    /// # Safety
    /// No other thread may write index `i` concurrently.
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        *self.slice[i].get()
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.slice.len()
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.slice.is_empty()
    }
}

impl<'a, T: RedElem> UnsafeSlice<'a, T> {
    /// Combine `v` into index `i`.
    ///
    /// # Safety
    /// No other thread may access index `i` concurrently.
    #[inline]
    pub unsafe fn combine_into(&self, i: usize, v: T) {
        let cell = self.slice[i].get();
        *cell = T::combine(*cell, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_abbrevs_roundtrip() {
        for s in [
            Scheme::Seq,
            Scheme::Rep,
            Scheme::Ll,
            Scheme::Sel,
            Scheme::Lw,
            Scheme::Hash,
            Scheme::Pclr,
            Scheme::Simd,
        ] {
            assert_eq!(Scheme::from_abbrev(s.abbrev()), Some(s));
            assert_eq!(format!("{s}"), s.abbrev());
        }
        assert_eq!(Scheme::from_abbrev("bogus"), None);
        assert_eq!(Scheme::all_parallel().len(), 5);
        assert!(Scheme::all_parallel().iter().all(|s| s.is_software()));
        assert!(!Scheme::Pclr.is_software());
        assert!(!Scheme::Simd.is_software());
        assert!(Scheme::Seq.is_software());
    }

    #[test]
    fn red_elem_monoid_laws() {
        // Identity.
        assert_eq!(f64::combine(f64::neutral(), 3.5), 3.5);
        assert_eq!(i64::combine(i64::neutral(), -7), -7);
        assert_eq!(u64::combine(u64::neutral(), 9), 9);
        // Commutativity on samples.
        assert_eq!(f64::combine(1.5, 2.25), f64::combine(2.25, 1.5));
        assert_eq!(i64::combine(5, -3), i64::combine(-3, 5));
        // Associativity on samples (exact for these operands).
        assert_eq!(
            f64::combine(f64::combine(0.5, 0.25), 0.125),
            f64::combine(0.5, f64::combine(0.25, 0.125))
        );
    }

    #[test]
    fn unsafe_slice_disjoint_writes() {
        let mut v = vec![0i64; 64];
        {
            let s = UnsafeSlice::new(&mut v);
            std::thread::scope(|scope| {
                for t in 0..4 {
                    let s = &s;
                    scope.spawn(move || {
                        for i in (t * 16)..((t + 1) * 16) {
                            // SAFETY: index ranges are disjoint per thread.
                            unsafe { s.write(i, i as i64) };
                        }
                    });
                }
            });
            assert_eq!(s.len(), 64);
            assert!(!s.is_empty());
        }
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as i64);
        }
    }

    #[test]
    fn unsafe_slice_combine_into() {
        let mut v = vec![10i64; 4];
        let s = UnsafeSlice::new(&mut v);
        unsafe {
            s.combine_into(2, 5);
            assert_eq!(s.read(2), 15);
        }
        let _ = s;
        assert_eq!(v, vec![10, 10, 15, 10]);
    }
}
