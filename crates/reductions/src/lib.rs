//! # smartapps-reductions — adaptive parallel reduction library
//!
//! The software half of the SmartApps paper (Section 4): a library of
//! parallel reduction algorithms, a run-time inspector that characterizes
//! a loop's memory reference pattern (CH, CHD, CHR, CON, MO, SP, DIM), and
//! a decision model that selects the algorithm matching the pattern —
//! reproducing the adaptive scheme validated by Figure 3.
//!
//! ## The library
//!
//! | scheme | idea |
//! |--------|------|
//! | [`Scheme::Rep`]  | replicated private arrays, O(N) init + merge |
//! | [`Scheme::Ll`]   | replicated buffers with touched-line links |
//! | [`Scheme::Sel`]  | selective privatization of conflicting elements |
//! | [`Scheme::Lw`]   | local write (owner computes, iteration replication) |
//! | [`Scheme::Hash`] | per-thread hash-table accumulation |
//!
//! All schemes produce bit-identical results for integer monoids and
//! tolerance-identical results for floating point, verified against the
//! sequential oracle by the test suite.
//!
//! ## Example
//!
//! ```
//! use smartapps_reductions::{DecisionModel, Inspector, ModelInput, run_scheme};
//! use smartapps_workloads::{PatternSpec, Distribution, contribution};
//!
//! let pat = PatternSpec {
//!     num_elements: 4096,
//!     iterations: 20_000,
//!     refs_per_iter: 2,
//!     coverage: 1.0,
//!     dist: Distribution::Uniform,
//!     seed: 7,
//! }
//! .generate();
//!
//! // Inspect, decide, execute.
//! let insp = Inspector::analyze(&pat, 4);
//! let model = DecisionModel::default();
//! let choice = model.decide(&ModelInput::from_inspection(&insp, false)).best();
//! let w = run_scheme(choice, &pat, &|_i, r| contribution(r), 4, Some(&insp));
//! assert_eq!(w.len(), 4096);
//! ```

#![warn(missing_docs)]

pub mod algorithms;
pub mod exec;
pub mod fused;
pub mod inspect;
pub mod model;
pub mod scheme;
pub mod simd;
pub mod simplify;
pub mod spmd;

pub use exec::{rank_schemes, run_scheme, run_scheme_on, time_scheme, Timing};
pub use fused::{run_fused, run_fused_on, FusedBody};
pub use inspect::{ConflictInfo, Inspection, Inspector, OwnerLists};
pub use model::{DecisionModel, ModelInput, ModelParams, Prediction};
pub use scheme::{RedElem, Scheme, UnsafeSlice};
pub use simd::{simd_feasible, simd_reduce, simd_reduce_on, SimdElem, SIMD_LANES};
pub use simplify::{
    probe_uniform, recognize, run_scan, run_scan_group, CostGuard, Reject, ScanElem, ScanMatch,
    ScanShape,
};
pub use spmd::{SpawnExecutor, SpmdExecutor};
